//! From the Massive Memory Machine to DataScalar: how asynchrony turns
//! lead changes into overlapped datathreads.
//!
//! Simulates the synchronous-ESP MMM (the paper's Figure 1 ancestor)
//! over reference strings with different locality, then runs the same
//! access structure on the cycle-level DataScalar machine to show that
//! out-of-order nodes hide what the lock-step machine serialises.
//!
//! ```sh
//! cargo run --release --example lead_changes
//! ```

use datascalar::core_model::mmm;
use datascalar::core_model::{DsConfig, DsSystem};
use datascalar::isa::{reg, Inst, Opcode};
use datascalar::ProgBuilder;

/// A program that chases a pointer chain whose hops land on pages with
/// exactly the given ownership pattern — the MMM reference string as a
/// real dependent-load sequence.
///
/// With two nodes and round-robin page distribution, a page's owner is
/// its index parity, so the chain picks the next unused even/odd page
/// as the pattern demands. Each visited word stores the address of the
/// next; hop k therefore cannot issue before hop k-1 completes, exactly
/// like the MMM's serial reference stream.
fn build_walk(owners: &[usize], page_bytes: u64) -> datascalar::Program {
    let mut b = ProgBuilder::new();
    // Choose distinct page indices matching the owner pattern.
    let mut next = [0usize, 1]; // next unused even / odd index
    let page_of: Vec<usize> = owners
        .iter()
        .map(|&o| {
            let idx = next[o];
            next[o] += 2;
            idx
        })
        .collect();
    let total_pages = *page_of.iter().max().unwrap_or(&0) + 1;
    // Lay the chain into the span: word at page p_i points at p_{i+1}.
    let words = (total_pages as u64 * page_bytes / 8) as usize;
    let mut span = vec![0u64; words];
    let base = ds_asm_data_base();
    for w in 0..page_of.len() {
        let this = page_of[w] as u64 * page_bytes / 8;
        let next_addr = if w + 1 < page_of.len() {
            base + page_of[w + 1] as u64 * page_bytes
        } else {
            0
        };
        span[this as usize] = next_addr;
    }
    let span_ref = b.dwords(&span);
    assert_eq!(b.addr_of(span_ref), base, "span must sit at the data base");

    b.li(reg::S4, 200); // repeat to amortise warmup
    let outer = b.here();
    b.li(reg::T1, base as i64);
    let chase = b.here();
    b.inst(Inst::load(Opcode::Ld, reg::T1, reg::T1, 0));
    b.bnez(reg::T1, chase);
    b.inst(Inst::rri(Opcode::Addi, reg::S4, reg::S4, -1));
    b.bnez(reg::S4, outer);
    b.halt();
    b.finish().expect("builds")
}

/// The default data base of [`ProgBuilder`] programs.
fn ds_asm_data_base() -> u64 {
    datascalar::asm::DEFAULT_DATA_BASE
}

fn main() {
    let strings: Vec<(&str, Vec<usize>)> = vec![
        ("figure 1 (runs of 4/3/2)", mmm::figure1_owners()),
        ("single long run", vec![0; 9]),
        ("alternating every word", vec![0, 1, 0, 1, 0, 1, 0, 1, 0]),
    ];
    println!("synchronous ESP (Massive Memory Machine), lead-change penalty 2:");
    for (name, owners) in &strings {
        let t = mmm::simulate(owners, 2);
        println!(
            "  {:26} lead changes={}  mean run={:.1}  cycles={}",
            name,
            t.lead_changes,
            t.mean_run(),
            t.total_cycles()
        );
    }
    println!();
    println!("{}", mmm::simulate(&strings[0].1, 2).render());

    // Same reference structures on the asynchronous machine: the chain
    // hops across pages whose owners follow each string exactly.
    println!("asynchronous ESP (DataScalar), same structures as dependent loads");
    println!("(200 traversals each; MMM column = lock-step prediction x 200):");
    let mut spread = Vec::new();
    for (name, owners) in &strings {
        let mmm_cycles = mmm::simulate(owners, 2).total_cycles() * 200;
        let config = DsConfig::with_nodes(2);
        let program = build_walk(owners, config.page_bytes);
        let mut sys = DsSystem::new(config, &program);
        let r = sys.run().expect("runs");
        spread.push((mmm_cycles, r.cycles));
        println!(
            "  {:26} MMM={:>5}  DataScalar={:>6} cycles  broadcasts={}",
            name, mmm_cycles, r.cycles, r.bus.broadcasts
        );
    }
    let mmm_ratio = spread.iter().map(|s| s.0).max().unwrap() as f64
        / spread.iter().map(|s| s.0).min().unwrap() as f64;
    let ds_ratio = spread.iter().map(|s| s.1).max().unwrap() as f64
        / spread.iter().map(|s| s.1).min().unwrap() as f64;
    println!();
    println!(
        "worst/best pattern spread: MMM {mmm_ratio:.2}x vs DataScalar {ds_ratio:.2}x —"
    );
    println!("the lock-step machine pays for every lead change; the out-of-order");
    println!("nodes overlap thread migrations with useful work, flattening the cost");
}
