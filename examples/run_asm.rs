//! Assemble and run a DS-1 assembly file on any of the simulated
//! systems.
//!
//! ```sh
//! cargo run --release --example run_asm -- program.s            # functional
//! cargo run --release --example run_asm -- program.s ds 4       # DataScalar x4
//! cargo run --release --example run_asm -- program.s trad 2     # traditional, 1/2 on-chip
//! cargo run --release --example run_asm -- program.s perfect    # perfect cache
//! ```
//!
//! Without a file argument, runs a built-in demo program.

use datascalar::core_model::{DsConfig, DsSystem, PerfectSystem, TraditionalConfig, TraditionalSystem};
use datascalar::cpu::FuncCore;
use datascalar::mem::MemImage;
use datascalar::{assemble, Program};

const DEMO: &str = r#"
    # Demo: sum the 100 first squares.
    .data
    out:    .word 0
    .text
    main:   li   t0, 100
            li   t1, 0
    loop:   mul  t2, t0, t0
            add  t1, t1, t2
            addi t0, t0, -1
            bnez t0, loop
            la   t3, out
            sd   t1, 0(t3)
            halt
"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.first() {
        Some(path) if path != "ds" && path != "trad" && path != "perfect" => {
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            })
        }
        _ => DEMO.to_string(),
    };
    let program = assemble(&source).unwrap_or_else(|e| {
        eprintln!("assembly failed: {e}");
        std::process::exit(1);
    });
    println!(
        "assembled {} instructions, {} data bytes, entry {:#x}",
        program.text.len(),
        program.data.len(),
        program.entry
    );

    // Mode and node count from the tail of argv.
    let mode = args.iter().find(|a| ["ds", "trad", "perfect"].contains(&a.as_str()));
    let nodes: usize = args
        .iter()
        .rev()
        .find_map(|a| a.parse().ok())
        .unwrap_or(2);

    match mode.map(String::as_str) {
        Some("ds") => {
            let mut sys = DsSystem::new(DsConfig::with_nodes(nodes), &program);
            let r = sys.run().expect("runs");
            println!(
                "DataScalar x{nodes}: {} instructions in {} cycles = {:.2} IPC",
                r.committed,
                r.cycles,
                r.ipc()
            );
            println!(
                "  broadcasts={}  late={}  found-in-BSHR={}",
                r.bus.broadcasts,
                r.nodes.iter().map(|n| n.late_broadcasts).sum::<u64>(),
                r.nodes.iter().map(|n| n.bshr.found_buffered).sum::<u64>()
            );
            dump_symbols(&program, sys.mem());
        }
        Some("trad") => {
            let config = TraditionalConfig::with_onchip_share(nodes);
            let mut sys = TraditionalSystem::new(&config, &program);
            let r = sys.run().expect("runs");
            println!(
                "traditional (1/{nodes} on-chip): {} instructions in {} cycles = {:.2} IPC",
                r.committed,
                r.cycles,
                r.ipc()
            );
            println!(
                "  requests={}  responses={}  writes={}",
                r.bus.requests, r.bus.responses, r.bus.writes
            );
        }
        Some("perfect") => {
            let mut sys = PerfectSystem::new(&DsConfig::with_nodes(1), &program);
            let r = sys.run().expect("runs");
            println!(
                "perfect cache: {} instructions in {} cycles = {:.2} IPC",
                r.committed,
                r.cycles,
                r.ipc()
            );
        }
        _ => {
            let mut mem = MemImage::new();
            program.load(&mut mem);
            let mut cpu = FuncCore::with_stack(program.entry, program.stack_top);
            cpu.run(&mut mem, 100_000_000).expect("executes");
            println!(
                "functional: {} instructions, halted = {}",
                cpu.icount(),
                cpu.halted()
            );
            dump_symbols(&program, &mem);
        }
    }
}

/// Prints every data symbol's final 64-bit value.
fn dump_symbols(program: &Program, mem: &MemImage) {
    for (name, &addr) in &program.symbols {
        if addr >= program.data_base {
            println!("  {name} @ {addr:#x} = {}", mem.read_u64(addr));
        }
    }
}
