//! Traffic audit for any registered workload: the Table 1 trace
//! measurement side by side with the measured timing-simulation bus
//! traffic of the DataScalar and traditional systems.
//!
//! ```sh
//! cargo run --release --example traffic_audit           # compress
//! cargo run --release --example traffic_audit -- swim   # any kernel
//! ```

use datascalar::core_model::{DsConfig, DsSystem, TraditionalConfig, TraditionalSystem};
use datascalar::stats::percent;
use datascalar::trace::{measure_traffic, TrafficConfig};
use datascalar::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "compress".to_string());
    let Some(workload) = by_name(&name) else {
        eprintln!("unknown workload `{name}`; known:");
        for w in datascalar::workloads::all() {
            eprintln!("  {:10} ({})", w.name, w.description);
        }
        std::process::exit(1);
    };
    println!("workload: {} (analog of {})", workload.name, workload.analog);
    println!("  {}", workload.description);
    println!();

    // Trace view (Table 1 methodology).
    let prog = (workload.build)(Scale::Small);
    let trace = measure_traffic(&prog, &TrafficConfig { max_insts: 2_000_000, ..Default::default() });
    println!("trace analysis (64 KiB 2-way write-allocate L1, functional):");
    println!("  fills={}  writebacks={}", trace.fills, trace.writebacks);
    println!(
        "  ESP eliminates {} of bytes, {} of transactions",
        percent(trace.bytes_eliminated()),
        percent(trace.transactions_eliminated())
    );
    println!();

    // Timing view: what actually crossed the bus.
    let mut config = DsConfig::with_nodes(2);
    config.max_insts = Some(200_000);
    let mut ds = DsSystem::new(config.clone(), &prog);
    let ds_r = ds.run().expect("runs");
    let mut trad = TraditionalSystem::new(&TraditionalConfig { base: config }, &prog);
    let trad_r = trad.run().expect("runs");

    println!("timing simulation (16 KiB direct-mapped L1, 200k instructions):");
    println!(
        "  DataScalar x2 : {:>8} bytes in {:>6} transactions ({} broadcasts), {:.2} IPC",
        ds_r.bus.bytes, ds_r.bus.transactions, ds_r.bus.broadcasts, ds_r.ipc()
    );
    println!(
        "  traditional   : {:>8} bytes in {:>6} transactions ({} req / {} resp / {} writes), {:.2} IPC",
        trad_r.bus.bytes,
        trad_r.bus.transactions,
        trad_r.bus.requests,
        trad_r.bus.responses,
        trad_r.bus.writes,
        trad_r.ipc()
    );
    let mean_q_ds = ds_r.bus.mean_queue_delay();
    let mean_q_tr = trad_r.bus.mean_queue_delay();
    println!("  mean bus queue delay: DataScalar {mean_q_ds:.1} cycles, traditional {mean_q_tr:.1} cycles");
}
