//! Compile a DSC program (the workspace's small C-like language) and
//! run it on the DataScalar machine.
//!
//! ```sh
//! cargo run --release --example compile_and_run              # built-in demo
//! cargo run --release --example compile_and_run -- prog.dsc  # your program
//! ```

use datascalar::core_model::{DsConfig, DsSystem, TraditionalConfig, TraditionalSystem};
use datascalar::compile;

/// A histogram-equalisation-flavoured demo: bucket counts over
/// pseudo-random data, then a prefix sum — array-heavy, branchy, and
/// entirely written in DSC.
const DEMO: &str = r#"
    int data[4096];
    int hist[64];

    int lcg(int seed) {
        return (seed * 1103515245 + 12345) & 1073741823;
    }

    int main() {
        // Generate input.
        int s; s = 42;
        for (int i = 0; i < 4096; i = i + 1) {
            s = lcg(s);
            data[i] = s % 64;
        }
        // Histogram.
        for (int i = 0; i < 4096; i = i + 1) {
            hist[data[i]] = hist[data[i]] + 1;
        }
        // Prefix sum; return the median bucket's cumulative count.
        int acc; int median;
        for (int b = 0; b < 64; b = b + 1) {
            acc = acc + hist[b];
            if (acc >= 2048 && median == 0) { median = b; }
        }
        return median * 100000 + acc;
    }
"#;

fn main() {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => DEMO.to_string(),
    };
    let program = compile(&source).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(1);
    });
    println!(
        "compiled to {} DS-1 instructions, {} data bytes",
        program.text.len(),
        program.data.len()
    );

    let mut ds = DsSystem::new(DsConfig::with_nodes(2), &program);
    let ds_r = ds.run().expect("runs");
    let result = ds.mem().read_u64(program.symbol("result").expect("result"));
    println!("main() returned    : {result}");
    println!(
        "DataScalar x2      : {:.2} IPC, {} cycles, {} broadcasts",
        ds_r.ipc(),
        ds_r.cycles,
        ds_r.bus.broadcasts
    );

    let config = TraditionalConfig::with_onchip_share(2);
    let mut trad = TraditionalSystem::new(&config, &program);
    let trad_r = trad.run().expect("runs");
    println!(
        "traditional (1/2)  : {:.2} IPC, {} cycles",
        trad_r.ipc(),
        trad_r.cycles
    );
    println!("speedup            : {:.2}x", ds_r.ipc() / trad_r.ipc());
}
