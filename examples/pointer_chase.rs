//! Datathreading demo: a pointer chase across distributed memory.
//!
//! Builds a linked list whose nodes are spread across the nodes'
//! memories and chases it — the serial dependent-address chain of the
//! paper's Figure 3. A DataScalar owner can fetch a whole run of
//! locally-resident cells and pipeline their broadcasts; the
//! traditional system pays a request/response round trip per remote
//! cell. The example reports both the analytic crossing counts and the
//! measured cycle-level results.
//!
//! ```sh
//! cargo run --release --example pointer_chase
//! ```

use datascalar::core_model::datathread;
use datascalar::core_model::{DsConfig, DsSystem, TraditionalConfig, TraditionalSystem};
use datascalar::isa::{reg, Inst, Opcode};
use datascalar::ProgBuilder;

fn build_chase(cells: usize, traversals: i64) -> datascalar::Program {
    let mut b = ProgBuilder::new();
    // Cells 512 bytes apart so every hop misses the L1 line.
    let pool = b.space(cells as u64 * 512);
    let base = b.addr_of(pool);
    b.li(reg::S4, traversals);
    let outer = b.here();
    // Build (or rebuild) the chain: cell i -> cell i+1.
    b.li(reg::T0, (cells - 1) as i64);
    b.li(reg::T1, base as i64);
    let build = b.here();
    b.inst(Inst::rri(Opcode::Addi, reg::T2, reg::T1, 512));
    b.inst(Inst::store(Opcode::Sd, reg::T2, reg::T1, 0));
    b.mv(reg::T1, reg::T2);
    b.inst(Inst::rri(Opcode::Addi, reg::T0, reg::T0, -1));
    b.bnez(reg::T0, build);
    b.inst(Inst::store(Opcode::Sd, reg::ZERO, reg::T1, 0));
    // Chase it.
    b.li(reg::T1, base as i64);
    let chase = b.here();
    b.inst(Inst::load(Opcode::Ld, reg::T1, reg::T1, 0));
    b.bnez(reg::T1, chase);
    b.inst(Inst::rri(Opcode::Addi, reg::S4, reg::S4, -1));
    b.bnez(reg::S4, outer);
    b.halt();
    b.finish().expect("builds")
}

fn main() {
    // Analytic Figure 3 view: 256 dependent operands distributed
    // round-robin across 4 nodes in 4 KiB pages (8 cells per page).
    let owners: Vec<usize> = (0..256).map(|i| (i * 512 / 4096) % 4).collect();
    let cmp = datathread::compare_chain(&owners, usize::MAX);
    println!("analytic, 256-cell chain, 4 nodes, 4 KiB pages:");
    println!("  DataScalar serialized off-chip delays : {}", cmp.datascalar);
    println!("  traditional serialized off-chip delays: {}", cmp.traditional);
    println!(
        "  mean datathread length                : {:.1} cells",
        datathread::mean_thread_length(&owners)
    );
    println!();

    // Measured: cycle-level simulation of the same structure.
    let program = build_chase(256, 40);
    for nodes in [2usize, 4] {
        let mut ds = DsSystem::new(DsConfig::with_nodes(nodes), &program);
        let ds_r = ds.run().expect("runs");
        let trad_cfg = TraditionalConfig::with_onchip_share(nodes);
        let mut trad = TraditionalSystem::new(&trad_cfg, &program);
        let trad_r = trad.run().expect("runs");
        let found: u64 = ds_r.nodes.iter().map(|n| n.bshr.found_buffered).sum();
        let remote: u64 = ds_r.nodes.iter().map(|n| n.remote_accesses).sum();
        println!(
            "measured, {nodes} nodes: DataScalar {:.3} IPC vs traditional {:.3} IPC ({:.2}x)",
            ds_r.ipc(),
            trad_r.ipc(),
            ds_r.ipc() / trad_r.ipc()
        );
        println!(
            "  remote loads={remote}  found waiting in BSHR={found}  broadcasts={}",
            ds_r.bus.broadcasts
        );
    }
    println!();
    println!("every hop depends on the previous one, so the win comes from the");
    println!("one-way broadcast pipeline: the owner of a run fetches it locally");
    println!("and streams it out, while the traditional system pays a full");
    println!("request/response round trip per remote cell");
}
