//! Quickstart: assemble a program, run it on a 2-node DataScalar
//! machine, and compare against the traditional memory organisation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use datascalar::asm::assemble;
use datascalar::core_model::{DsConfig, DsSystem, TraditionalConfig, TraditionalSystem};

fn main() {
    // Read-modify-write sweeps over a 64 KiB array — four times the
    // L1, so the memory system matters, and store-heavy, which is
    // exactly where ESP shines: created values never cross the
    // interconnect (the paper's compress observation).
    let source = r#"
        .data
        arr:    .space 65536
        total:  .word 0
        .text
        main:   li   s0, 3             # store passes
        pass:   li   t0, 8192          # elements
                la   t1, arr
                mv   t3, s0
        fill:   sd   t3, 0(t1)
                addi t3, t3, 7
                addi t1, t1, 8
                addi t0, t0, -1
                bnez t0, fill
                addi s0, s0, -1
                bnez s0, pass
                # final reduction
                li   t0, 8192
                la   t1, arr
                li   t2, 0
        sum:    ld   t3, 0(t1)
                add  t2, t2, t3
                addi t1, t1, 8
                addi t0, t0, -1
                bnez t0, sum
                la   t4, total
                sd   t2, 0(t4)
                halt
    "#;
    let program = assemble(source).expect("assembles");

    // DataScalar: two processor/memory nodes, each owning half the
    // pages, broadcasting owned operands under ESP.
    let mut ds = DsSystem::new(DsConfig::with_nodes(2), &program);
    let ds_result = ds.run().expect("runs");

    // Traditional: one processor with half the memory on-chip and the
    // other half behind the same bus with request/response.
    let trad_config = TraditionalConfig::with_onchip_share(2);
    let mut trad = TraditionalSystem::new(&trad_config, &program);
    let trad_result = trad.run().expect("runs");

    let total_addr = program.symbol("total").expect("symbol exists");
    println!("program result     : {}", ds.mem().read_u64(total_addr));
    println!("expected           : {}", 234860544u64);
    println!();
    println!("DataScalar x2      : {:.2} IPC in {} cycles", ds_result.ipc(), ds_result.cycles);
    println!(
        "  broadcasts={}  requests={}  write traffic={}",
        ds_result.bus.broadcasts, ds_result.bus.requests, ds_result.bus.writes
    );
    println!(
        "traditional (1/2)  : {:.2} IPC in {} cycles",
        trad_result.ipc(),
        trad_result.cycles
    );
    println!(
        "  broadcasts={}  requests={}  write traffic={}",
        trad_result.bus.broadcasts, trad_result.bus.requests, trad_result.bus.writes
    );
    println!();
    println!(
        "speedup            : {:.2}x  (ESP removes every request and write transaction)",
        ds_result.ipc() / trad_result.ipc()
    );
}
