//! # datascalar
//!
//! A from-scratch Rust reproduction of **DataScalar Architectures**
//! (Burger, Kaxiras & Goodman, ISCA 1997): redundant Single-Program,
//! Single-Data execution across processor/memory nodes, with ESP
//! broadcasts, broadcast status holding registers, commit update
//! buffers, and the cache-correspondence protocol — plus the
//! traditional and perfect-cache comparison systems and the trace
//! experiments of the paper's evaluation.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `ds-isa` | the DS-1 instruction set |
//! | [`asm`] | `ds-asm` | assembler, program images, program builder |
//! | [`cpu`] | `ds-cpu` | functional core, trace source, OOO core |
//! | [`mem`] | `ds-mem` | memory images, caches, page tables, DRAM timing |
//! | [`net`] | `ds-net` | the global broadcast bus |
//! | [`core_model`] | `ds-core` | DataScalar / traditional / perfect systems |
//! | [`trace`] | `ds-trace` | Table 1/2 trace experiments |
//! | [`lang`] | `ds-lang` | DSC, a small C-like language compiling to DS-1 |
//! | [`workloads`] | `ds-workloads` | fifteen SPEC95-analog kernels |
//! | [`stats`] | `ds-stats` | means, histograms, table rendering |
//! | [`obs`] | `ds-obs` | event probes, derived metrics, Perfetto export |
//!
//! # Quickstart
//!
//! ```
//! use datascalar::{assemble, DsConfig, DsSystem};
//!
//! let program = assemble(
//!     ".data\nxs: .word 1, 2, 3, 4\n.text\n
//!      main: la t0, xs\n ld t1, 8(t0)\n halt\n",
//! ).unwrap();
//! let mut system = DsSystem::new(DsConfig::with_nodes(2), &program);
//! let result = system.run().unwrap();
//! assert!(result.committed > 0);
//! ```

pub use ds_asm as asm;
pub use ds_core as core_model;
pub use ds_cpu as cpu;
pub use ds_isa as isa;
pub use ds_lang as lang;
pub use ds_mem as mem;
pub use ds_net as net;
pub use ds_obs as obs;
pub use ds_stats as stats;
pub use ds_trace as trace;
pub use ds_workloads as workloads;

// The types almost every user needs, at the crate root.
pub use ds_asm::{assemble, ProgBuilder, Program};
pub use ds_lang::compile;
pub use ds_core::{
    DsConfig, DsSystem, PerfectSystem, RunResult, TraditionalConfig, TraditionalSystem,
};
pub use ds_workloads::{by_name, Scale, Workload};
