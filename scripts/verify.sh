#!/usr/bin/env bash
# Full verification: build, tests, lints, and the throughput benchmark.
#
# Usage: scripts/verify.sh [--no-bench]
#
# The benchmark step rewrites BENCH_throughput.json in place; pass
# --no-bench to skip it (e.g. on a loaded machine where the numbers
# would be noise).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== cargo clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

if [[ "${1:-}" != "--no-bench" ]]; then
    echo "== throughput benchmark (writes BENCH_throughput.json)"
    cargo run --release -p ds-bench --bin bench_throughput
fi

echo "verify: OK"
