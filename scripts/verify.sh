#!/usr/bin/env bash
# Full verification: build, tests, invariant lint, interprocedural
# analysis, audit, clippy, and the throughput benchmark gated against
# the committed baseline.
#
# Usage: scripts/verify.sh [--fast | --no-bench]
#
#   --fast      invariant lint + unit tests only (quick iteration)
#   --no-bench  everything except the benchmark (it rewrites
#               BENCH_throughput.json in place; skip it on a loaded
#               machine where the numbers would be noise)
#
# The benchmark step is a regression gate: a fresh measurement is
# diffed against the committed BENCH_throughput.json by ds-report and
# the script fails when throughput drops or stall buckets shift beyond
# tolerance. Override the drop threshold with DS_REPORT_MAX_DROP
# (fraction, default 0.12) — e.g. a known-slower machine. The default
# is wider than ds-report's own 0.08 because single-vCPU containers
# show ±10% whole-process run-to-run variance even with the bench's
# internal best-of-3; BENCH_history.jsonl exists to catch slow drift
# that a single-run gate this wide would miss.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fast" ]]; then
    echo "== ds-lint (workspace invariants)"
    cargo run -q -p ds-lint -- .

    echo "== cargo test (unit tests only)"
    cargo test --workspace --lib -q

    echo "verify (fast): OK"
    exit 0
fi

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== ds-lint (workspace invariants)"
cargo run -q --release -p ds-lint -- .

echo "== ds-analyze (interprocedural invariants: call-graph passes + self-check)"
# Skipped under --fast: the transitive passes subsume what matters for
# quick iteration and the full gate belongs to CI-grade runs. The
# wall-clock budget keeps the analyzer honest about staying cheap
# enough to run on every verify (<5s; it measures in milliseconds).
cargo run -q --release -p ds-analyze -- --self-check
analyze_start=$(date +%s%N)
cargo run -q --release -p ds-analyze -- .
analyze_ms=$(( ($(date +%s%N) - analyze_start) / 1000000 ))
echo "   ds-analyze wall clock: ${analyze_ms}ms"
if (( analyze_ms > 5000 )); then
    echo "verify: ds-analyze exceeded its 5s budget (${analyze_ms}ms)" >&2
    exit 1
fi

echo "== cargo test -p ds-core --features audit (correspondence auditor)"
cargo test -p ds-core --features audit -q

echo "== cargo test --features obs (instrumented build: goldens must stay byte-identical)"
cargo test --features obs -q
cargo test -p ds-core --features obs -q

echo "== obs smoke: figure7_ipc --json/--trace-out, validated by obs_validate"
cargo build -q --release -p ds-bench --features obs --bin figure7_ipc
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
target/release/figure7_ipc --quick \
    --json "$obs_tmp/fig7.json" --trace-out "$obs_tmp/trace.json" > /dev/null
# obs_validate checks schema members, trace flow-id pairing, and the
# critpath section (class shares in range, summing to ~1 per system).
cargo run -q --release -p ds-obs --bin obs_validate -- \
    "$obs_tmp/fig7.json" "$obs_tmp/trace.json" BENCH_throughput.json
# An instrumented figure7 run must actually attribute a critical path:
# an empty critpath member means the edge hooks silently stopped firing.
grep -q '"critpath":{"' "$obs_tmp/fig7.json" || {
    echo "verify: figure7_ipc --json carries no critpath entries" >&2
    exit 1
}
# ...and record a timeline (same silent-death guard for the sampler).
grep -q '"timeline":{"' "$obs_tmp/fig7.json" || {
    echo "verify: figure7_ipc --json carries no timeline entries" >&2
    exit 1
}

echo "== ds-dash smoke: render the dashboard, re-validate its embedded payload"
cargo build -q --release -p ds-obs --bin ds-dash
target/release/ds-dash --json "$obs_tmp/fig7.json" \
    --history BENCH_history.jsonl --out "$obs_tmp/dash.html" 2> /dev/null
# obs_validate extracts the ds-dash-data payload and re-checks every
# embedded document (timeline interval sums included).
cargo run -q --release -p ds-obs --bin obs_validate -- "$obs_tmp/dash.html"

echo "== chaos gate: ds_chaos fault matrix, validated by obs_validate"
# The quick grid: every fault plan must recover to the fault-free
# architectural state with the watchdog silent. The binary exits
# non-zero on any diverged/deadlocked run; obs_validate re-checks the
# emitted ds-chaos-result/v1 document independently.
cargo build -q --release -p ds-bench --bin ds_chaos
target/release/ds_chaos --quick --parallel --json "$obs_tmp/chaos.json" > /dev/null
cargo run -q --release -p ds-obs --bin obs_validate -- "$obs_tmp/chaos.json"

echo "== cargo clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

if [[ "${1:-}" != "--no-bench" ]]; then
    echo "== throughput benchmark + ds-report regression gate"
    # Built with obs so the committed summary carries stall-bucket
    # shares (the committed baseline is an obs-on measurement; gating
    # an obs-off run against it would compare different builds).
    cargo build -q --release -p ds-bench --features obs \
        --bin bench_throughput --bin ds-report
    target/release/bench_throughput --out "$obs_tmp/bench.json" \
        --history BENCH_history.jsonl
    target/release/ds-report BENCH_throughput.json "$obs_tmp/bench.json" \
        --max-drop "${DS_REPORT_MAX_DROP:-0.12}"
    mv "$obs_tmp/bench.json" BENCH_throughput.json
    # Every history row must stay machine-readable (v:1 schema with
    # throughput counters and optional stall-bucket shares).
    cargo run -q --release -p ds-obs --bin obs_validate -- BENCH_history.jsonl
fi

echo "verify: OK"
