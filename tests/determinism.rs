//! Determinism regression: running the same system twice in-process
//! must reproduce the *entire* `RunResult` — every counter of every
//! node, not just the golden-pinned aggregates. This is the invariant
//! the d1/d2 lint rules protect at the source level; any hash-order or
//! ambient-state leak into simulated state shows up here as a
//! first-run/second-run diff.

use ds_bench::{run_datascalar, run_perfect, run_traditional, Budget};
use datascalar::workloads::by_name;

#[test]
fn figure7_systems_are_run_to_run_deterministic_on_compress() {
    let w = by_name("compress").expect("compress registered");
    let budget = Budget::quick();

    let perfect = (run_perfect(&w, budget), run_perfect(&w, budget));
    assert_eq!(perfect.0, perfect.1, "perfect system diverged across runs");

    for nodes in [2, 4] {
        let ds = (run_datascalar(&w, nodes, budget), run_datascalar(&w, nodes, budget));
        assert_eq!(ds.0, ds.1, "ds{nodes} diverged across runs");

        let trad = (run_traditional(&w, nodes, budget), run_traditional(&w, nodes, budget));
        assert_eq!(trad.0, trad.1, "trad{nodes} diverged across runs");
    }
}
