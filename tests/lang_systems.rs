//! Compiled DSC programs run identically on every simulated system —
//! the full toolchain (compiler → assembler image → simulators) in one
//! loop.

use datascalar::compile;
use datascalar::core_model::{
    DsConfig, DsSystem, PerfectSystem, TraditionalConfig, TraditionalSystem,
};

/// Matrix-multiply-flavoured kernel in DSC: nested loops, arrays, and
/// enough working set to exercise the caches.
const MATMUL: &str = r#"
    int a[256];
    int b[256];
    int c[256];
    int main() {
        for (int i = 0; i < 16; i = i + 1) {
            for (int j = 0; j < 16; j = j + 1) {
                a[i * 16 + j] = i + j;
                b[i * 16 + j] = i - j;
            }
        }
        for (int i = 0; i < 16; i = i + 1) {
            for (int j = 0; j < 16; j = j + 1) {
                int s;
                for (int k = 0; k < 16; k = k + 1) {
                    s = s + a[i * 16 + k] * b[k * 16 + j];
                }
                c[i * 16 + j] = s;
            }
        }
        int check;
        for (int i = 0; i < 256; i = i + 1) { check = check + c[i] * (i + 1); }
        return check;
    }
"#;

fn expected() -> i64 {
    let mut a = [0i64; 256];
    let mut b = [0i64; 256];
    let mut c = [0i64; 256];
    for i in 0..16i64 {
        for j in 0..16i64 {
            a[(i * 16 + j) as usize] = i + j;
            b[(i * 16 + j) as usize] = i - j;
        }
    }
    for i in 0..16usize {
        for j in 0..16usize {
            let mut s = 0i64;
            for k in 0..16usize {
                s += a[i * 16 + k] * b[k * 16 + j];
            }
            c[i * 16 + j] = s;
        }
    }
    c.iter().enumerate().map(|(i, &v)| v * (i as i64 + 1)).sum()
}

#[test]
fn compiled_matmul_agrees_on_every_system() {
    let program = compile(MATMUL).expect("compiles");
    let want = expected();
    let result_addr = program.symbol("result").unwrap();

    for nodes in [1usize, 2, 4] {
        let mut sys = DsSystem::new(DsConfig::with_nodes(nodes), &program);
        let r = sys.run().unwrap();
        assert!(r.committed > 10_000, "{nodes}-node run too short");
        assert_eq!(
            sys.mem().read_u64(result_addr) as i64,
            want,
            "wrong matmul result on DataScalar x{nodes}"
        );
        assert!(sys.correspondence_holds());
    }

    let config = TraditionalConfig::with_onchip_share(2);
    let mut trad = TraditionalSystem::new(&config, &program);
    let tr = trad.run().unwrap();
    assert!(tr.committed > 10_000);

    let mut perfect = PerfectSystem::new(&DsConfig::with_nodes(1), &program);
    let pr = perfect.run().unwrap();
    assert_eq!(pr.committed, tr.committed, "same instruction stream everywhere");
}

#[test]
fn compiled_float_kernel_runs_on_datascalar() {
    let src = r#"
        float xs[512];
        int main() {
            for (int i = 0; i < 512; i = i + 1) { xs[i] = float(i) * 0.25; }
            float s;
            for (int i = 0; i < 512; i = i + 1) { s = s + xs[i]; }
            return int(s);
        }
    "#;
    let program = compile(src).expect("compiles");
    let mut sys = DsSystem::new(DsConfig::with_nodes(2), &program);
    sys.run().unwrap();
    let got = sys.mem().read_u64(program.symbol("result").unwrap()) as i64;
    let want: f64 = (0..512).map(|i| i as f64 * 0.25).sum();
    assert_eq!(got, want as i64);
}

#[test]
fn recursion_depth_survives_the_timing_stack() {
    let src = r#"
        int depth(int n) { if (n == 0) { return 0; } return 1 + depth(n - 1); }
        int main() { return depth(300); }
    "#;
    let program = compile(src).expect("compiles");
    let mut sys = DsSystem::new(DsConfig::with_nodes(2), &program);
    sys.run().unwrap();
    assert_eq!(sys.mem().read_u64(program.symbol("result").unwrap()), 300);
}
