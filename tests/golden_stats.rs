//! Golden simulation statistics: exact pinned results for two small
//! workloads, covering Figure 7 (timing IPC across all five systems)
//! and Table 1 (ESP traffic reduction).
//!
//! These exist so performance work on the simulation engine can be
//! proven behavior-preserving: every hot-path optimization must leave
//! each fingerprint below byte-identical. The counters are exact
//! integers — any drift in cycle accounting, broadcast ordering, cache
//! behavior, or interconnect arbitration shows up here immediately.
//!
//! After an *intentional* model change, regenerate with
//! `cargo test --test golden_stats -- --ignored --nocapture`.

use datascalar::core_model::RunResult;
use datascalar::trace::{measure_traffic, TrafficConfig};
use datascalar::workloads::{by_name, Workload};
use ds_bench::{run_datascalar, run_perfect, run_traditional, Budget};

/// Every counter that a hot-path change could plausibly disturb,
/// rendered as one canonical line.
fn fingerprint(r: &RunResult) -> String {
    let mut s = format!(
        "cycles={} committed={} bus[txn={} bytes={} busy={} qdelay={} bcast={} req={} resp={} wr={}]",
        r.cycles,
        r.committed,
        r.bus.transactions,
        r.bus.bytes,
        r.bus.busy_cycles,
        r.bus.queue_delay_cycles,
        r.bus.broadcasts,
        r.bus.requests,
        r.bus.responses,
        r.bus.writes,
    );
    for (i, n) in r.nodes.iter().enumerate() {
        s.push_str(&format!(
            " n{i}[ld={} hit={} lmiss={} rem={} bc={} late={} fh={} fm={} st={} wt={} wb={} drop={}]",
            n.loads_issued,
            n.issue_hits,
            n.local_misses,
            n.remote_accesses,
            n.broadcasts_sent,
            n.late_broadcasts,
            n.false_hits,
            n.false_misses,
            n.stores_committed,
            n.writethroughs_local,
            n.writebacks_local,
            n.writes_dropped,
        ));
    }
    s
}

fn traffic_line(w: &Workload) -> String {
    let prog = (w.build)(Budget::quick().scale);
    let r = measure_traffic(&prog, &TrafficConfig::default());
    format!(
        "fills={} writebacks={} insts={} refs={} trad_bytes={} esp_bytes={} trad_txn={} esp_txn={}",
        r.fills,
        r.writebacks,
        r.instructions,
        r.data_refs,
        r.traditional_bytes(),
        r.esp_bytes(),
        r.traditional_transactions(),
        r.esp_transactions(),
    )
}

/// (system label, produce-fingerprint) pairs for one workload.
fn figure7_fingerprints(w: &Workload) -> Vec<(&'static str, String)> {
    let b = Budget::quick();
    vec![
        ("perfect", fingerprint(&run_perfect(w, b))),
        ("ds2", fingerprint(&run_datascalar(w, 2, b))),
        ("ds4", fingerprint(&run_datascalar(w, 4, b))),
        ("trad2", fingerprint(&run_traditional(w, 2, b))),
        ("trad4", fingerprint(&run_traditional(w, 4, b))),
    ]
}

const GOLDEN_COMPRESS: &[(&str, &str)] = &[
    ("perfect", "cycles=6872 committed=40003 bus[txn=0 bytes=0 busy=0 qdelay=0 bcast=0 req=0 resp=0 wr=0] n0[ld=3392 hit=3392 lmiss=0 rem=0 bc=0 late=0 fh=0 fm=0 st=5978 wt=0 wb=0 drop=0]"),
    ("ds2", "cycles=16530 committed=40005 bus[txn=292 bytes=11680 busy=14600 qdelay=18867 bcast=292 req=0 resp=0 wr=0] n0[ld=3060 hit=2221 lmiss=173 rem=106 bc=179 late=6 fh=13 fm=553 st=5978 wt=1297 wb=5 drop=1367] n1[ld=3029 hit=1855 lmiss=107 rem=173 bc=114 late=7 fh=13 fm=894 st=6039 wt=1392 wb=0 drop=1302]"),
    ("ds4", "cycles=17320 committed=40005 bus[txn=291 bytes=11640 busy=14550 qdelay=15617 bcast=291 req=0 resp=0 wr=0] n0[ld=3052 hit=2152 lmiss=111 rem=168 bc=113 late=2 fh=13 fm=614 st=5978 wt=1175 wb=5 drop=1489] n1[ld=2981 hit=1760 lmiss=54 rem=224 bc=57 late=3 fh=13 fm=929 st=5990 wt=1277 wb=0 drop=1396] n2[ld=2969 hit=1756 lmiss=62 rem=216 bc=66 late=4 fh=13 fm=928 st=5978 wt=122 wb=0 drop=2547] n3[ld=2990 hit=1798 lmiss=51 rem=227 bc=55 late=4 fh=13 fm=907 st=5978 wt=94 wb=0 drop=2575]"),
    ("trad2", "cycles=35949 committed=40005 bus[txn=1585 bytes=19020 busy=33960 qdelay=827352 bcast=0 req=113 resp=113 wr=1359] n0[ld=3026 hit=2142 lmiss=173 rem=106 bc=0 late=0 fh=13 fm=598 st=5978 wt=1297 wb=5 drop=0]"),
    ("trad4", "cycles=41199 committed=40005 bus[txn=1828 bytes=24011 busy=40120 qdelay=794090 bcast=0 req=178 resp=178 wr=1472] n0[ld=3036 hit=2113 lmiss=111 rem=168 bc=0 late=0 fh=13 fm=637 st=5978 wt=1175 wb=5 drop=0]"),
];

const GOLDEN_GO: &[(&str, &str)] = &[
    ("perfect", "cycles=15068 committed=40005 bus[txn=0 bytes=0 busy=0 qdelay=0 bcast=0 req=0 resp=0 wr=0] n0[ld=6930 hit=6930 lmiss=0 rem=0 bc=0 late=0 fh=0 fm=0 st=1240 wt=0 wb=0 drop=0]"),
    ("ds2", "cycles=15865 committed=40005 bus[txn=146 bytes=5840 busy=7300 qdelay=16218 bcast=146 req=0 resp=0 wr=0] n0[ld=6952 hit=6222 lmiss=59 rem=87 bc=59 late=0 fh=0 fm=584 st=1243 wt=0 wb=0 drop=0] n1[ld=6930 hit=6185 lmiss=87 rem=59 bc=87 late=0 fh=0 fm=599 st=1240 wt=0 wb=0 drop=0]"),
    ("ds4", "cycles=15865 committed=40005 bus[txn=146 bytes=5840 busy=7300 qdelay=16218 bcast=146 req=0 resp=0 wr=0] n0[ld=6952 hit=6222 lmiss=59 rem=87 bc=59 late=0 fh=0 fm=584 st=1243 wt=0 wb=0 drop=0] n1[ld=6930 hit=6185 lmiss=87 rem=59 bc=87 late=0 fh=0 fm=599 st=1240 wt=0 wb=0 drop=0] n2[ld=6930 hit=6175 lmiss=0 rem=146 bc=0 late=0 fh=0 fm=609 st=1240 wt=0 wb=0 drop=0] n3[ld=6930 hit=6175 lmiss=0 rem=146 bc=0 late=0 fh=0 fm=609 st=1240 wt=0 wb=0 drop=0]"),
    ("trad2", "cycles=16366 committed=40005 bus[txn=174 bytes=4176 busy=5220 qdelay=5528 bcast=0 req=87 resp=87 wr=0] n0[ld=6930 hit=6199 lmiss=59 rem=87 bc=0 late=0 fh=0 fm=585 st=1240 wt=0 wb=0 drop=0]"),
    ("trad4", "cycles=16366 committed=40005 bus[txn=174 bytes=4176 busy=5220 qdelay=5528 bcast=0 req=87 resp=87 wr=0] n0[ld=6930 hit=6199 lmiss=59 rem=87 bc=0 late=0 fh=0 fm=585 st=1240 wt=0 wb=0 drop=0]"),
];

const GOLDEN_TRAFFIC_COMPRESS: &str =
    "fills=474 writebacks=0 insts=52985 refs=14488 trad_bytes=22752 esp_bytes=18960 trad_txn=948 esp_txn=474";
const GOLDEN_TRAFFIC_GO: &str =
    "fills=212 writebacks=0 insts=737639 refs=153387 trad_bytes=10176 esp_bytes=8480 trad_txn=424 esp_txn=212";

fn check(name: &str, golden: &[(&str, &str)]) {
    let w = by_name(name).expect("registered workload");
    for ((label, got), (glabel, want)) in figure7_fingerprints(&w).iter().zip(golden) {
        assert_eq!(label, glabel);
        assert_eq!(
            got, want,
            "{name}/{label}: simulation statistics changed — hot-path \
             optimizations must be behavior-preserving; if the model \
             itself changed intentionally, regenerate the goldens"
        );
    }
}

#[test]
fn figure7_stats_pinned_for_compress() {
    check("compress", GOLDEN_COMPRESS);
}

#[test]
fn figure7_stats_pinned_for_go() {
    check("go", GOLDEN_GO);
}

#[test]
fn trace_window_high_water_is_tracked_and_bounded() {
    let w = by_name("compress").expect("registered workload");
    let r = run_datascalar(&w, 2, Budget::quick());
    assert!(r.trace_window_high_water > 0, "high-water mark never recorded");
    // The window is bounded by worst-case node skew plus the in-flight
    // OoO window; for these budgets that stays far below the full
    // committed stream (which would indicate trimming stopped working).
    assert!(
        r.trace_window_high_water < r.committed as usize,
        "trace window grew to the whole stream ({} of {} insts) — trim is broken",
        r.trace_window_high_water,
        r.committed
    );
}

#[test]
fn table1_traffic_pinned() {
    for (name, want) in [("compress", GOLDEN_TRAFFIC_COMPRESS), ("go", GOLDEN_TRAFFIC_GO)] {
        let w = by_name(name).expect("registered workload");
        assert_eq!(traffic_line(&w), want, "{name}: Table 1 traffic changed");
    }
}

/// Prints a fresh golden block; paste over the constants above after an
/// intentional model change.
#[test]
#[ignore]
fn print_golden_stats() {
    for name in ["compress", "go"] {
        let w = by_name(name).unwrap();
        println!("== {name} ==");
        for (label, fp) in figure7_fingerprints(&w) {
            println!("    (\"{label}\", \"{fp}\"),");
        }
        println!("    traffic: \"{}\"", traffic_line(&w));
    }
}
