//! The event-horizon engine's behavior-invariance contract: skipping
//! quiescent cycle ranges (and stepping nodes on worker threads) must
//! produce *exactly* the `RunResult` of the naive cycle-by-cycle loop —
//! cycles, every node counter, bus statistics, trace high-water mark,
//! and (under `--features obs`) the derived metrics report with its
//! per-node cycle ledgers and critical-path attribution (`RunResult`
//! equality covers `CritPathReport` field-by-field: identical edge
//! timestamps, class/kind cycles, window drop counts and top-PC
//! residency — skipped quiescent ranges retire nothing, so they add no
//! graph edges on either engine; window wraparound itself is pinned by
//! `crates/obs/src/critpath.rs` unit tests).
//!
//! The grid covers both tiny workloads across the Figure 7 node counts,
//! both interconnect topologies, and both accelerated engines (serial
//! horizon skipping, parallel stepping + skipping), each compared
//! against the retained `no_skip` reference path. A second pass narrows
//! the machine (tiny RUU/LSQ, a real D-TLB) so the window-full and
//! translation stall classes appear in the skipped ranges too.

use datascalar::core_model::{DsConfig, DsSystem, RunResult};
use datascalar::workloads::by_name;
use ds_bench::Budget;

/// Runs one workload under `config` and returns its full result.
fn run_with(config: DsConfig, workload: &str, budget: Budget) -> RunResult {
    let w = by_name(workload).expect("known workload");
    let prog = (w.build)(budget.scale);
    let mut sys = DsSystem::new(config, &prog);
    sys.run().expect("workload executes")
}

/// Asserts the three engines agree exactly on `base`.
fn assert_engines_agree(base: DsConfig, workload: &str, budget: Budget, label: &str) {
    let mut reference = base.clone();
    reference.no_skip = true;
    reference.parallel_step = false;
    let naive = run_with(reference, workload, budget);

    let mut skipping = base.clone();
    skipping.no_skip = false;
    skipping.parallel_step = false;
    let skipped = run_with(skipping, workload, budget);
    assert_eq!(skipped, naive, "horizon skipping diverged from the naive loop on {label}");

    let mut parallel = base;
    parallel.no_skip = false;
    parallel.parallel_step = true;
    let threaded = run_with(parallel, workload, budget);
    assert_eq!(threaded, naive, "parallel stepping diverged from the naive loop on {label}");
}

#[test]
fn engines_agree_across_the_figure7_grid() {
    let budget = Budget::quick();
    for workload in ["compress", "go"] {
        for nodes in [1usize, 2, 4] {
            for fabric in [ds_net::FabricKind::Bus, ds_net::FabricKind::Ring] {
                let mut config = DsConfig::with_nodes(nodes);
                config.max_insts = Some(budget.max_insts);
                config.interconnect = fabric;
                let label = format!("{workload}/{nodes} nodes/{fabric:?}");
                assert_engines_agree(config, workload, budget, &label);
            }
        }
    }
}

#[test]
fn engines_agree_on_a_narrow_machine() {
    // A tiny window and a real D-TLB push the run through the stall
    // classes the wide default machine rarely shows (RUU/LSQ full,
    // translation walks), so the batch charge path sees them too.
    let budget = Budget::quick();
    for workload in ["compress", "go"] {
        for fabric in [ds_net::FabricKind::Bus, ds_net::FabricKind::Ring] {
            let mut config = DsConfig::with_nodes(2);
            config.max_insts = Some(budget.max_insts);
            config.interconnect = fabric;
            config.core.fetch_width = 2;
            config.core.issue_width = 2;
            config.core.commit_width = 2;
            config.core.ruu_entries = 16;
            config.core.lsq_entries = 8;
            config.tlb = Some(ds_mem::TlbConfig { entries: 8, assoc: 2, page_bytes: 4096 });
            let label = format!("narrow {workload}/{fabric:?}");
            assert_engines_agree(config, workload, budget, &label);
        }
    }
}

#[test]
fn skipping_actually_skips() {
    // Guard against the engine silently degenerating into the naive
    // loop: on a remote-wait-heavy run a substantial share of the
    // cycles must be covered by horizon jumps, and the reference path
    // must report none.
    let budget = Budget::quick();
    let w = by_name("compress").expect("known workload");
    let prog = (w.build)(budget.scale);
    let mut config = DsConfig::with_nodes(4);
    config.max_insts = Some(budget.max_insts);

    let mut sys = DsSystem::new(config.clone(), &prog);
    let r = sys.run().expect("workload executes");
    assert!(
        sys.cycles_skipped() > r.cycles / 10,
        "expected a material share of {} cycles skipped, got {}",
        r.cycles,
        sys.cycles_skipped()
    );

    config.no_skip = true;
    let mut reference = DsSystem::new(config, &prog);
    reference.run().expect("workload executes");
    assert_eq!(reference.cycles_skipped(), 0, "the reference path must never skip");
}
