//! ds-chaos end-to-end invariants: deterministic fault injection,
//! hardened-protocol recovery, and the forward-progress watchdog.
//!
//! Three contracts pin the chaos subsystem:
//!
//! * **Fault determinism** — the same `FaultPlan` produces the same
//!   `RunResult` (including any `DeadlockReport`) on repeat runs and
//!   across all three engines (naive loop, horizon skipping, parallel
//!   stepping). Faults are schedule data, not ambient randomness.
//! * **Architectural transparency** — ESP broadcasts carry no values,
//!   so a hardened run under any fault plan must commit the identical
//!   instruction stream and end with the identical canonical D-cache
//!   contents as the fault-free run.
//! * **Watchdog** — an unrecoverable plan (all broadcasts dropped, no
//!   BSHR timeouts) must *terminate* with a populated structured
//!   report instead of hanging.

use datascalar::core_model::{DsConfig, DsSystem, RunResult};
use datascalar::workloads::{by_name, Scale};
use ds_net::{FaultKind, FaultPlan, FaultRule};
use proptest::prelude::*;

/// A 2-node hardened config (BSHR timeouts armed) running `plan`.
fn hardened_config(nodes: usize, plan: FaultPlan, max_insts: Option<u64>) -> DsConfig {
    let mut c = DsConfig::with_nodes(nodes);
    c.max_insts = max_insts;
    c.fault_plan = plan;
    c.bshr_timeout_cycles = Some(2_000);
    c.bshr_retry_budget = 3;
    c.watchdog_cycles = 500_000;
    c
}

fn run_compress(config: DsConfig) -> (RunResult, Vec<Vec<(u64, bool)>>) {
    let w = by_name("compress").expect("compress registered");
    let prog = (w.build)(Scale::Tiny);
    let mut sys = DsSystem::new(config, &prog);
    let r = sys.run().expect("workload executes");
    let lines = sys.nodes().iter().map(|n| n.canonical_cache_lines()).collect();
    (r, lines)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seeded plan, same everything: repeat runs and all three
    /// engines agree on the full `RunResult`, and the watchdog never
    /// fires under a budget-bounded plan with timeouts armed.
    #[test]
    fn seeded_plans_are_deterministic_across_engines(seed in any::<u64>()) {
        let plan = FaultPlan::seeded(seed, 2, 4);
        let base = hardened_config(2, plan, Some(20_000));

        let mut reference = base.clone();
        reference.no_skip = true;
        let (naive, _) = run_compress(reference.clone());
        let (again, _) = run_compress(reference);
        prop_assert_eq!(&again, &naive, "repeat run diverged (seed {})", seed);

        let (skipped, _) = run_compress(base.clone());
        prop_assert_eq!(&skipped, &naive, "horizon skipping diverged (seed {})", seed);

        let mut parallel = base;
        parallel.parallel_step = true;
        let (threaded, _) = run_compress(parallel);
        prop_assert_eq!(&threaded, &naive, "parallel stepping diverged (seed {})", seed);

        prop_assert!(naive.deadlock.is_none(),
            "bounded seeded plan must recover (seed {})", seed);
    }
}

#[test]
fn hardened_runs_converge_to_the_fault_free_architectural_state() {
    // Natural completion (no instruction cap): a capped run stops once
    // the slowest node crosses the cap, leaving the leaders' overshoot
    // fault-timing-dependent; whole-program runs make equality exact.
    let (base_r, base_lines) = run_compress(hardened_config(2, FaultPlan::default(), None));
    assert!(base_r.deadlock.is_none());

    let plans: Vec<(&str, FaultPlan)> = vec![
        (
            "drop-every-5",
            FaultPlan {
                rules: vec![FaultRule::broadcasts(FaultKind::Drop, 5, u64::MAX)],
                stalls: Vec::new(),
            },
        ),
        ("seeded-7", FaultPlan::seeded(7, 2, 6)),
    ];
    for (name, plan) in plans {
        let (r, lines) = run_compress(hardened_config(2, plan, None));
        assert!(r.deadlock.is_none(), "{name}: hardening must recover");
        assert_eq!(r.committed, base_r.committed, "{name}: same committed stream");
        assert_eq!(lines, base_lines, "{name}: canonical caches must match fault-free run");
    }
}

#[test]
fn unrecoverable_plan_terminates_with_a_populated_deadlock_report() {
    // Drop *every* broadcast with no BSHR timeout to fall back on: the
    // first remote load wedges its node forever. The run must end via
    // the watchdog with a structured report, not hang or panic.
    let mut config = DsConfig::with_nodes(2);
    config.max_insts = Some(40_000);
    config.fault_plan.rules.push(FaultRule::broadcasts(FaultKind::Drop, 1, u64::MAX));
    config.bshr_timeout_cycles = None;
    config.watchdog_cycles = 20_000;

    let (r, _) = run_compress(config.clone());
    let report = r.deadlock.as_ref().expect("watchdog must fire");
    assert_eq!(report.cycle, r.cycles, "report pinned to the aborting cycle");
    assert_eq!(report.nodes.len(), 2, "one entry per node");
    assert!(
        report.nodes.iter().any(|n| !n.bshr_waits.is_empty()),
        "some node must be wedged on a BSHR wait: {report}"
    );
    assert!(
        format!("{report}").contains("deadlock at cycle"),
        "display form must be self-describing"
    );

    // The deadlock itself is deterministic: repeat runs and the naive
    // engine reproduce the identical report.
    let (again, _) = run_compress(config.clone());
    assert_eq!(again, r, "deadlock report diverged across repeat runs");
    let mut naive = config;
    naive.no_skip = true;
    let (reference, _) = run_compress(naive);
    assert_eq!(reference, r, "deadlock report diverged across engines");
}
