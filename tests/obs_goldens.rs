//! Observability acceptance tests (built with `--features obs` only).
//!
//! The contract of the `obs` feature is *observation without
//! perturbation*: `tests/golden_stats.rs` already re-asserts the exact
//! pinned counters under this feature (it is not feature-gated, so
//! `cargo test --features obs` runs it against the instrumented build).
//! This file checks the other half — that the instrumented build
//! actually *observes*: metrics are populated for DataScalar runs,
//! deterministic across runs, and the Perfetto export is well-formed.

#![cfg(feature = "obs")]

use datascalar::core_model::DsSystem;
use datascalar::obs::json::{self, Value};
use datascalar::workloads::by_name;
use ds_bench::{baseline_config, run_datascalar, run_perfect, run_traditional, Budget};

/// Every node of every system: the ten stall buckets partition the run
/// exactly — no cycle uncounted, none double-counted.
fn assert_accounts_cover(label: &str, r: &datascalar::core_model::RunResult, nodes: usize) {
    let m = r.metrics.as_ref().unwrap_or_else(|| panic!("{label}: metrics missing"));
    assert_eq!(m.node_accounts.len(), nodes, "{label}: one account per node");
    for (i, acct) in m.node_accounts.iter().enumerate() {
        assert_eq!(
            acct.total(),
            r.cycles,
            "{label} node {i}: stall buckets must sum to total cycles"
        );
    }
}

#[test]
fn metrics_populated_for_all_five_figure7_systems() {
    let b = Budget::quick();
    let w = by_name("compress").expect("registered workload");

    // DataScalar runs observe broadcast traffic and commits.
    for nodes in [2, 4] {
        let r = run_datascalar(&w, nodes, b);
        let m = r.metrics.as_ref().unwrap_or_else(|| panic!("ds{nodes}: metrics missing"));
        assert!(m.events_recorded > 0, "ds{nodes}: no events recorded");
        assert!(
            m.broadcast_latency.total() > 0,
            "ds{nodes}: no broadcast arrivals observed"
        );
        assert!(m.bshr_occupancy.total() > 0, "ds{nodes}: no BSHR transitions observed");
        assert!(m.commit_burst.total() > 0, "ds{nodes}: no commits observed");
        assert!(
            m.datathread_run_cycles.total() > 0,
            "ds{nodes}: no lead segments observed"
        );
        assert_accounts_cover(&format!("ds{nodes}"), &r, nodes);
        assert!(!m.hot_pcs.is_empty(), "ds{nodes}: no hot PCs attributed");
    }

    // The single-core comparison systems carry no event stream beyond
    // commits, but they do carry the cycle account (one core each).
    assert_accounts_cover("perfect", &run_perfect(&w, b), 1);
    for nodes in [2, 4] {
        assert_accounts_cover(&format!("trad{nodes}"), &run_traditional(&w, nodes, b), 1);
    }
}

#[test]
fn stall_buckets_partition_cycles_across_configs() {
    // Property over the config grid: for every workload × node count,
    // every node's buckets sum exactly to the run's cycle count, and
    // the machine-wide merge does too. The in-loop assertion checks the
    // same identity under debug_assertions; this keeps it pinned in
    // release test runs as well.
    let b = Budget::quick();
    for name in ["compress", "go"] {
        let w = by_name(name).expect("registered workload");
        for nodes in [1, 2, 4] {
            let r = run_datascalar(&w, nodes, b);
            assert_accounts_cover(&format!("{name} ds{nodes}"), &r, nodes);
            let total = r.stall_totals().expect("accounts present");
            assert_eq!(
                total.total(),
                r.cycles * nodes as u64,
                "{name} ds{nodes}: merged ledger covers cycles x nodes"
            );
        }
    }
}

#[test]
fn hot_pc_tables_are_deterministic_and_consistent() {
    let b = Budget::quick();
    for name in ["compress", "go"] {
        let w = by_name(name).expect("registered workload");
        let a = run_datascalar(&w, 2, b);
        let c = run_datascalar(&w, 2, b);
        let (ma, mc) = (a.metrics.as_ref().unwrap(), c.metrics.as_ref().unwrap());
        assert_eq!(ma.hot_pcs, mc.hot_pcs, "{name}: hot-PC table diverged across runs");
        assert!(!ma.hot_pcs.is_empty(), "{name}: memory-bound workload must surface hot PCs");
        // Sorted by total stall, descending; PC tiebreak ascending.
        for pair in ma.hot_pcs.windows(2) {
            assert!(
                pair[0].total() > pair[1].total()
                    || (pair[0].total() == pair[1].total() && pair[0].pc < pair[1].pc),
                "{name}: hot-PC table out of order"
            );
        }
        // Per-PC attribution never exceeds what the buckets charged.
        let totals = a.stall_totals().unwrap();
        let attributed: u64 = ma.hot_pcs.iter().map(|h| h.total()).sum();
        let pc_buckets = totals.get(datascalar::obs::StallBucket::BshrWaitRemote)
            + totals.get(datascalar::obs::StallBucket::LocalMemWait);
        assert!(
            attributed <= pc_buckets,
            "{name}: hot-PC cycles {attributed} exceed PC-attributed buckets {pc_buckets}"
        );
    }
}

#[test]
fn folded_stacks_sum_to_cycles_per_node() {
    let b = Budget::quick();
    let w = by_name("compress").expect("registered workload");
    let prog = (w.build)(b.scale);
    let mut sys = DsSystem::new(baseline_config(2, b.max_insts), &prog);
    let r = sys.run().expect("workload executes");
    let folded = sys.folded_stacks();

    let mut per_node = [0u64; 2];
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` line");
        let count: u64 = count.parse().expect("count is integer");
        assert!(count > 0, "folded stacks must omit zero-weight frames: {line}");
        let node: usize = stack
            .strip_prefix("node")
            .and_then(|s| s.split(';').next())
            .and_then(|s| s.parse().ok())
            .expect("node-rooted stack");
        per_node[node] += count;
    }
    for (i, sum) in per_node.iter().enumerate() {
        assert_eq!(*sum, r.cycles, "node {i}: folded stacks must sum to total cycles");
    }

    // Determinism: a fresh identical run folds identically.
    let mut sys2 = DsSystem::new(baseline_config(2, b.max_insts), &prog);
    sys2.run().expect("workload executes");
    assert_eq!(folded, sys2.folded_stacks(), "folded stacks diverged across runs");
}

#[test]
fn metrics_deterministic_across_runs() {
    let b = Budget::quick();
    for name in ["compress", "go"] {
        let w = by_name(name).expect("registered workload");
        let a = run_datascalar(&w, 2, b);
        let c = run_datascalar(&w, 2, b);
        // Full RunResult equality includes the MetricsReport — the
        // event stream and the critical-path report must both replay
        // identically.
        assert_eq!(a, c, "{name}: instrumented runs diverged");
    }
}

/// Every Figure 7 system attributes a critical path, and the
/// attribution telescopes: each node's per-class cycles and per-kind
/// cycles both sum exactly to the attributed span, so the class shares
/// sum to 1.0. This file runs in debug and — via `scripts/verify.sh`'s
/// obs smoke (`figure7_ipc --json` + `obs_validate`) — the same
/// identity is checked on release-built output.
#[test]
fn critpath_attribution_telescopes_for_all_figure7_systems() {
    use datascalar::obs::EdgeClass;
    let b = Budget::quick();
    let w = by_name("compress").expect("registered workload");
    let systems = [
        ("ds2", run_datascalar(&w, 2, b), 2),
        ("ds4", run_datascalar(&w, 4, b), 4),
        ("trad2", run_traditional(&w, 2, b), 1),
        ("perfect", run_perfect(&w, b), 1),
    ];
    for (label, r, nodes) in &systems {
        let cp = &r.metrics.as_ref().expect("obs metrics").critpath;
        assert_eq!(cp.nodes.len(), *nodes, "{label}: one critpath report per node");
        for (i, n) in cp.nodes.iter().enumerate() {
            assert!(n.attributed_cycles > 0, "{label} node {i}: nothing attributed");
            let class_sum: u64 = n.class_cycles.iter().sum();
            let kind_sum: u64 = n.kind_cycles.iter().sum();
            assert_eq!(class_sum, n.attributed_cycles, "{label} node {i}: class leak");
            assert_eq!(kind_sum, n.attributed_cycles, "{label} node {i}: kind leak");
            let share_sum: f64 = EdgeClass::ALL.iter().map(|c| n.class_share(*c)).sum();
            assert!(
                (share_sum - 1.0).abs() < 1e-12,
                "{label} node {i}: shares sum to {share_sum}"
            );
        }
    }
}

/// The paper's claim, measured: on `compress` the traditional system's
/// request round-trips sit on its critical path, while the DataScalar
/// broadcast largely hides under compute — so the traditional
/// communication share must visibly dominate DataScalar's, bounded
/// above by the perfect cache at exactly zero.
#[test]
fn traditional_communication_share_dominates_datascalar_on_compress() {
    let b = Budget::quick();
    let w = by_name("compress").expect("registered workload");
    let comm = |r: &datascalar::core_model::RunResult| {
        r.metrics.as_ref().expect("obs metrics").critpath.communication_share()
    };
    let ds = comm(&run_datascalar(&w, 2, b));
    let trad = comm(&run_traditional(&w, 2, b));
    let perfect = comm(&run_perfect(&w, b));
    assert_eq!(perfect, 0.0, "a perfect cache has no communication edges");
    assert!(ds > 0.0, "DataScalar's broadcasts never reached a critical path?");
    assert!(
        trad > ds * 2.0,
        "traditional comm share ({trad:.4}) must dominate DataScalar's ({ds:.4})"
    );
    // End-to-end measurement actually saw remote edges on both systems.
    for (label, r) in [("ds2", run_datascalar(&w, 2, b)), ("trad2", run_traditional(&w, 2, b))] {
        let cp = &r.metrics.as_ref().unwrap().critpath;
        let edges: u64 = cp.nodes.iter().map(|n| n.comm_edges).sum();
        assert!(edges > 0, "{label}: no remote fills retained in the window");
    }
}

/// `critpath_folded` renders one `crit;node<i>;...` frame per edge
/// kind (weights summing to the attributed span) plus top-PC residency
/// leaves, and folds identically on an identical rerun.
#[test]
fn critpath_folded_stacks_sum_to_attributed_cycles() {
    let b = Budget::quick();
    let w = by_name("compress").expect("registered workload");
    let prog = (w.build)(b.scale);
    let mut sys = DsSystem::new(baseline_config(2, b.max_insts), &prog);
    let r = sys.run().expect("workload executes");
    let folded = sys.critpath_folded();

    let cp = &r.metrics.as_ref().unwrap().critpath;
    let mut kind_sums = [0u64; 2];
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` line");
        let count: u64 = count.parse().expect("count is integer");
        assert!(count > 0, "zero-weight frames must be omitted: {line}");
        let mut parts = stack.split(';');
        assert_eq!(parts.next(), Some("crit"), "crit-rooted stack: {line}");
        let node: usize = parts
            .next()
            .and_then(|s| s.strip_prefix("node"))
            .and_then(|s| s.parse().ok())
            .expect("node frame");
        // Two leaf families: `<class>;<kind>` and `pc;0x<pc>`.
        if parts.next() != Some("pc") {
            kind_sums[node] += count;
        }
    }
    for (i, sum) in kind_sums.iter().enumerate() {
        assert_eq!(
            *sum, cp.nodes[i].attributed_cycles,
            "node {i}: folded kind frames must sum to the attributed span"
        );
    }

    let mut sys2 = DsSystem::new(baseline_config(2, b.max_insts), &prog);
    sys2.run().expect("workload executes");
    assert_eq!(folded, sys2.critpath_folded(), "critpath folding diverged across runs");
}

#[test]
fn perfetto_trace_is_valid_json_with_monotonic_tracks() {
    let b = Budget::quick();
    let w = by_name("compress").expect("registered workload");
    let prog = (w.build)(b.scale);
    let mut sys = DsSystem::new(baseline_config(4, b.max_insts), &prog);
    sys.run().expect("workload executes");
    let text = sys.perfetto_trace();

    let v = json::parse(&text).expect("trace parses as JSON");
    let events = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    assert!(events.len() > 100, "trace suspiciously small: {} events", events.len());

    // Per-node broadcast, BSHR, commit and stall-counter tracks must
    // exist (the acceptance criterion for `figure7_ipc --trace-out`).
    for track in ["broadcast", "bshr", "commit", "stalls"] {
        assert!(
            text.contains(&format!("\"name\":\"{track}\"")),
            "missing {track} track metadata"
        );
    }

    // Every ring reports its drop count; a quick-budget run fits the
    // ring, so completeness is also pinned.
    let dropped: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("ds_dropped_events"))
        .collect();
    assert!(!dropped.is_empty(), "missing ds_dropped_events metadata");
    for e in &dropped {
        let d = e.get("args").and_then(|a| a.get("dropped")).and_then(Value::as_f64);
        assert_eq!(d, Some(0.0), "quick run must not overflow the ring: {e:?}");
    }

    // The stall counter samples carry every bucket label.
    assert!(
        text.contains("\"name\":\"stall cycles\""),
        "missing stall cycles counter events"
    );
    for pid in 0..4 {
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(Value::as_str) != Some("M")
                    && e.get("pid").and_then(Value::as_f64) == Some(pid as f64)
            }),
            "node {pid} contributed no events"
        );
    }

    // ts monotonically non-decreasing per (pid, tid) track.
    let mut last: Vec<((u64, u64), f64)> = Vec::new();
    for e in events {
        if e.get("ph").and_then(Value::as_str) == Some("M") {
            continue;
        }
        let pid = e.get("pid").and_then(Value::as_f64).expect("pid") as u64;
        let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
        match last.iter_mut().find(|(k, _)| *k == (pid, tid)) {
            Some((_, prev)) => {
                assert!(*prev <= ts, "track ({pid},{tid}) ts went backwards: {prev} > {ts}");
                *prev = ts;
            }
            None => last.push(((pid, tid), ts)),
        }
    }

    // Broadcast flow arrows: a 4-node DataScalar run must link sends to
    // arrivals and consuming commits, and every step/end must name an
    // emitted start id (the emitter suppresses orphans).
    let flow = |ph: &str| -> Vec<f64> {
        events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Value::as_str) == Some("broadcast-flow")
                    && e.get("ph").and_then(Value::as_str) == Some(ph)
            })
            .map(|e| e.get("id").and_then(Value::as_f64).expect("flow id"))
            .collect()
    };
    let (starts, steps, ends) = (flow("s"), flow("t"), flow("f"));
    assert!(!starts.is_empty(), "no broadcast-flow starts in a DataScalar trace");
    assert!(!steps.is_empty(), "no broadcast arrivals linked by flow arrows");
    assert!(!ends.is_empty(), "no consuming commits linked by flow arrows");
    for id in steps.iter().chain(&ends) {
        assert!(starts.contains(id), "dangling flow id {id}");
    }
}
