//! Observability acceptance tests (built with `--features obs` only).
//!
//! The contract of the `obs` feature is *observation without
//! perturbation*: `tests/golden_stats.rs` already re-asserts the exact
//! pinned counters under this feature (it is not feature-gated, so
//! `cargo test --features obs` runs it against the instrumented build).
//! This file checks the other half — that the instrumented build
//! actually *observes*: metrics are populated for DataScalar runs,
//! deterministic across runs, and the Perfetto export is well-formed.

#![cfg(feature = "obs")]

use datascalar::core_model::DsSystem;
use datascalar::obs::json::{self, Value};
use datascalar::workloads::by_name;
use ds_bench::{baseline_config, run_datascalar, run_perfect, run_traditional, Budget};

#[test]
fn metrics_populated_for_all_five_figure7_systems() {
    let b = Budget::quick();
    let w = by_name("compress").expect("registered workload");

    // DataScalar runs observe broadcast traffic and commits.
    for nodes in [2, 4] {
        let r = run_datascalar(&w, nodes, b);
        let m = r.metrics.as_ref().unwrap_or_else(|| panic!("ds{nodes}: metrics missing"));
        assert!(m.events_recorded > 0, "ds{nodes}: no events recorded");
        assert!(
            m.broadcast_latency.total() > 0,
            "ds{nodes}: no broadcast arrivals observed"
        );
        assert!(m.bshr_occupancy.total() > 0, "ds{nodes}: no BSHR transitions observed");
        assert!(m.commit_burst.total() > 0, "ds{nodes}: no commits observed");
        assert!(
            m.datathread_run_cycles.total() > 0,
            "ds{nodes}: no lead segments observed"
        );
    }

    // The single-node comparison systems carry no event stream.
    assert!(run_perfect(&w, b).metrics.is_none(), "perfect must not report metrics");
    for nodes in [2, 4] {
        assert!(
            run_traditional(&w, nodes, b).metrics.is_none(),
            "trad{nodes} must not report metrics"
        );
    }
}

#[test]
fn metrics_deterministic_across_runs() {
    let b = Budget::quick();
    for name in ["compress", "go"] {
        let w = by_name(name).expect("registered workload");
        let a = run_datascalar(&w, 2, b);
        let c = run_datascalar(&w, 2, b);
        // Full RunResult equality includes the MetricsReport: the event
        // stream itself must replay identically.
        assert_eq!(a, c, "{name}: instrumented runs diverged");
    }
}

#[test]
fn perfetto_trace_is_valid_json_with_monotonic_tracks() {
    let b = Budget::quick();
    let w = by_name("compress").expect("registered workload");
    let prog = (w.build)(b.scale);
    let mut sys = DsSystem::new(baseline_config(4, b.max_insts), &prog);
    sys.run().expect("workload executes");
    let text = sys.perfetto_trace();

    let v = json::parse(&text).expect("trace parses as JSON");
    let events = v.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    assert!(events.len() > 100, "trace suspiciously small: {} events", events.len());

    // Per-node broadcast, BSHR and commit tracks must exist (the
    // acceptance criterion for `figure7_ipc --trace-out`).
    for track in ["broadcast", "bshr", "commit"] {
        assert!(
            text.contains(&format!("\"name\":\"{track}\"")),
            "missing {track} track metadata"
        );
    }
    for pid in 0..4 {
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(Value::as_str) != Some("M")
                    && e.get("pid").and_then(Value::as_f64) == Some(pid as f64)
            }),
            "node {pid} contributed no events"
        );
    }

    // ts monotonically non-decreasing per (pid, tid) track.
    let mut last: Vec<((u64, u64), f64)> = Vec::new();
    for e in events {
        if e.get("ph").and_then(Value::as_str) == Some("M") {
            continue;
        }
        let pid = e.get("pid").and_then(Value::as_f64).expect("pid") as u64;
        let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
        match last.iter_mut().find(|(k, _)| *k == (pid, tid)) {
            Some((_, prev)) => {
                assert!(*prev <= ts, "track ({pid},{tid}) ts went backwards: {prev} > {ts}");
                *prev = ts;
            }
            None => last.push(((pid, tid), ts)),
        }
    }
}
