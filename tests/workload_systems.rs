//! Every registered workload runs on every system model.
//!
//! This is the repo's broadest integration sweep: all fifteen
//! SPEC95-analog kernels × {DataScalar ×2, DataScalar ×4, traditional,
//! perfect}, with the ESP invariants checked on every DataScalar run.

use datascalar::core_model::{
    DsConfig, DsSystem, PerfectSystem, TraditionalConfig, TraditionalSystem,
};
use datascalar::workloads::{all, Scale};

const CAP: u64 = 25_000;

fn capped(nodes: usize) -> DsConfig {
    let mut c = DsConfig::with_nodes(nodes);
    c.max_insts = Some(CAP);
    c
}

#[test]
fn every_workload_on_datascalar_two_nodes() {
    for w in all() {
        let prog = (w.build)(Scale::Tiny);
        let mut sys = DsSystem::new(capped(2), &prog);
        let r = sys.run().unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert!(r.committed >= CAP.min(10_000), "{} committed {}", w.name, r.committed);
        assert_eq!(r.bus.requests, 0, "{}: ESP sent a request", w.name);
        assert_eq!(r.bus.writes, 0, "{}: ESP sent write traffic", w.name);
        assert!(r.ipc() > 0.01, "{}: IPC collapsed ({:.3})", w.name, r.ipc());
    }
}

#[test]
fn every_workload_on_datascalar_four_nodes() {
    for w in all() {
        let prog = (w.build)(Scale::Tiny);
        let mut sys = DsSystem::new(capped(4), &prog);
        let r = sys.run().unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert!(r.committed > 0, "{} did not commit", w.name);
        assert_eq!(r.nodes.len(), 4);
    }
}

#[test]
fn every_workload_on_the_traditional_system() {
    for w in all() {
        let prog = (w.build)(Scale::Tiny);
        let config = TraditionalConfig { base: capped(2) };
        let mut sys = TraditionalSystem::new(&config, &prog);
        let r = sys.run().unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert!(r.committed > 0, "{} did not commit", w.name);
        assert_eq!(r.bus.broadcasts, 0, "{}: traditional broadcast", w.name);
    }
}

#[test]
fn every_workload_on_the_perfect_cache() {
    for w in all() {
        let prog = (w.build)(Scale::Tiny);
        let mut sys = PerfectSystem::new(&capped(1), &prog);
        let r = sys.run().unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert!(r.committed > 0, "{} did not commit", w.name);
    }
}

#[test]
fn perfect_cache_bounds_datascalar() {
    for w in all() {
        let prog = (w.build)(Scale::Tiny);
        let mut perfect = PerfectSystem::new(&capped(1), &prog);
        let p = perfect.run().unwrap().ipc();
        let mut ds = DsSystem::new(capped(2), &prog);
        let d = ds.run().unwrap().ipc();
        assert!(
            p >= d * 0.98,
            "{}: perfect ({p:.2}) must bound DataScalar ({d:.2})",
            w.name
        );
    }
}

#[test]
fn correspondence_holds_on_full_tiny_runs() {
    // Run three representative kernels to completion (no cap), so the
    // invariant is checked at the natural end point.
    for name in ["compress", "li", "go"] {
        let w = datascalar::by_name(name).unwrap();
        let prog = (w.build)(Scale::Tiny);
        let mut sys = DsSystem::new(DsConfig::with_nodes(2), &prog);
        sys.run().unwrap();
        assert!(sys.correspondence_holds(), "{name}: caches diverged");
        let commits: Vec<u64> = sys.nodes().iter().map(|n| n.committed()).collect();
        assert_eq!(commits[0], commits[1], "{name}: commit counts diverged");
    }
}
