//! Smoke tests over the paper-experiment pipelines: each table/figure
//! harness must run end to end and satisfy the structural properties
//! the paper states about its own results.

use datascalar::core_model::{datathread, mmm};
use datascalar::mem::{PageTableBuilder, Segment};
use datascalar::trace::{
    measure_datathreads, measure_traffic, select_hot_pages, DatathreadConfig, PageProfile,
    TrafficConfig,
};
use datascalar::workloads::{by_name, Scale};

#[test]
fn table1_transactions_never_below_half() {
    // "Because no requests are sent, the transaction reduction will
    // always be at least 50%" (§3.1).
    for name in ["compress", "li", "mgrid", "gcc"] {
        let w = by_name(name).unwrap();
        let prog = (w.build)(Scale::Tiny);
        let r = measure_traffic(&prog, &TrafficConfig::default());
        assert!(
            r.transactions_eliminated() >= 0.5 - 1e-9,
            "{name}: {:.3}",
            r.transactions_eliminated()
        );
        assert!(r.bytes_eliminated() > 0.0, "{name} eliminated nothing");
        assert!(r.bytes_eliminated() < 1.0);
    }
}

#[test]
fn table1_esp_bytes_never_exceed_traditional() {
    for name in ["swim", "vortex"] {
        let w = by_name(name).unwrap();
        let prog = (w.build)(Scale::Tiny);
        let r = measure_traffic(&prog, &TrafficConfig::default());
        assert!(r.esp_bytes() <= r.traditional_bytes());
        assert!(r.esp_transactions() <= r.traditional_transactions());
    }
}

#[test]
fn table2_pipeline_produces_finite_threads() {
    let w = by_name("compress").unwrap();
    let prog = (w.build)(Scale::Tiny);
    let profile = PageProfile::collect(&prog, 4096, 500_000);
    let hot = select_hot_pages(&profile, 16, 4.0);
    let mut ptb = PageTableBuilder::new(4096, 4);
    for (s, e, seg) in prog.regions() {
        ptb.add_region(s, e, seg);
    }
    ptb.replicate_segment(Segment::Text);
    for &vpn in &hot {
        ptb.replicate_page_of(vpn * 4096);
    }
    ptb.distribute_round_robin(1);
    let pt = ptb.build();
    let r = measure_datathreads(&prog, &pt, &DatathreadConfig::default());
    assert!(r.misses > 0);
    assert!(r.all.is_finite() && r.all >= 1.0 || r.all_runs == 0);
    assert!(r.data >= 1.0 || r.data_runs == 0);
}

#[test]
fn figure1_mmm_matches_paper_structure() {
    let t = mmm::simulate(&mmm::figure1_owners(), 2);
    // Three datathreads (w1-4, w5-7, w8-9), two lead changes.
    assert_eq!(t.runs, vec![4, 3, 2]);
    assert_eq!(t.lead_changes, 2);
    // The render shows all nine words.
    let render = t.render();
    assert!(render.contains("w9"));
}

#[test]
fn figure3_exact_paper_numbers() {
    let c = datathread::compare_chain(&[0, 0, 0, 1], usize::MAX);
    assert_eq!(c.datascalar, 2, "paper: two serialized off-chip delays");
    assert_eq!(c.traditional, 8, "paper: eight serialized off-chip delays");
}

#[test]
fn figure7_quick_rows_have_sane_shape() {
    use ds_bench::{figure7_row, Budget};
    for name in ["compress", "go"] {
        let w = by_name(name).unwrap();
        let row = figure7_row(&w, Budget::quick());
        assert!(row.perfect > 0.0 && row.ds2 > 0.0 && row.trad_half > 0.0);
        assert!(row.perfect >= row.ds2 * 0.95, "{name}: perfect must bound DS");
        assert!(row.perfect >= row.trad_half * 0.95, "{name}: perfect must bound trad");
        assert!(
            row.trad_quarter <= row.trad_half * 1.05,
            "{name}: less on-chip memory cannot help the traditional system"
        );
    }
}

#[test]
fn table3_statistics_are_fractions() {
    use ds_bench::{run_datascalar, Budget};
    let w = by_name("compress").unwrap();
    let r = run_datascalar(&w, 2, Budget::quick());
    for n in &r.nodes {
        for frac in [n.late_broadcast_frac(), n.squash_frac(), n.found_in_bshr_frac()] {
            assert!((0.0..=1.0).contains(&frac), "fraction out of range: {frac}");
        }
    }
    assert!(r.nodes.iter().any(|n| n.broadcasts_sent > 0));
}

#[test]
fn figure8_knobs_move_performance_in_the_right_direction() {
    use ds_bench::sweep::{sweep_point, Knob};
    use ds_bench::Budget;
    let w = by_name("compress").unwrap();
    let b = Budget::quick();
    let fast_bus = sweep_point(&w, Knob::BusClock(2), b);
    let slow_bus = sweep_point(&w, Knob::BusClock(40), b);
    // A slower global bus hurts both distributed systems...
    assert!(slow_bus.ds2 < fast_bus.ds2);
    assert!(slow_bus.trad_half < fast_bus.trad_half);
    // ...but never the perfect cache.
    assert!((slow_bus.perfect - fast_bus.perfect).abs() < 0.05);
}
