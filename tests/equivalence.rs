//! Cross-simulator equivalence: every timing model must preserve the
//! architecture.
//!
//! Property-based tests generate random (but guaranteed-halting) DS-1
//! programs and check that the functional core, the perfect-cache
//! system, the traditional system, and DataScalar machines of 1/2/4
//! nodes all agree on the final memory contents — and that the
//! DataScalar runs uphold the ESP invariants (no requests, no write
//! traffic, cache correspondence).

use datascalar::asm::ProgBuilder;
use datascalar::core_model::{
    DsConfig, DsSystem, PerfectSystem, TraditionalConfig, TraditionalSystem,
};
use datascalar::cpu::FuncCore;
use datascalar::isa::{reg, Inst, Opcode};
use datascalar::mem::MemImage;
use datascalar::Program;
use proptest::prelude::*;

/// A randomly generated, guaranteed-halting program description.
#[derive(Debug, Clone)]
struct RandomProgram {
    blocks: Vec<Block>,
}

#[derive(Debug, Clone)]
struct Block {
    iterations: u8,
    body: Vec<Op>,
}

/// Instruction templates safe for random composition (registers are
/// drawn from r4..r27, keeping zero/ra/sp/gp and the k-registers for
/// the harness).
#[derive(Debug, Clone)]
enum Op {
    Alu(Opcode, u8, u8, u8),
    AluImm(Opcode, u8, u8, i32),
    Load(Opcode, u8, u32),
    Store(Opcode, u8, u32),
    Fpu(Opcode, u8, u8, u8),
}

const DATA_WORDS: u32 = 512;

fn reg_strategy() -> impl Strategy<Value = u8> {
    4u8..28
}

fn freg_strategy() -> impl Strategy<Value = u8> {
    0u8..30
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            prop_oneof![
                Just(Opcode::Add),
                Just(Opcode::Sub),
                Just(Opcode::Mul),
                Just(Opcode::And),
                Just(Opcode::Or),
                Just(Opcode::Xor),
                Just(Opcode::Slt),
                Just(Opcode::Sltu),
                Just(Opcode::Div),
                Just(Opcode::Rem),
            ],
            reg_strategy(),
            reg_strategy(),
            reg_strategy()
        )
            .prop_map(|(op, a, b, c)| Op::Alu(op, a, b, c)),
        (
            prop_oneof![
                Just(Opcode::Addi),
                Just(Opcode::Andi),
                Just(Opcode::Ori),
                Just(Opcode::Xori),
                Just(Opcode::Slli),
                Just(Opcode::Srli),
            ],
            reg_strategy(),
            reg_strategy(),
            -1000i32..1000
        )
            .prop_map(|(op, a, b, i)| Op::AluImm(op, a, b, i)),
        (
            prop_oneof![Just(Opcode::Ld), Just(Opcode::Lw), Just(Opcode::Lbu)],
            reg_strategy(),
            0u32..DATA_WORDS
        )
            .prop_map(|(op, r, w)| Op::Load(op, r, w)),
        (
            prop_oneof![Just(Opcode::Sd), Just(Opcode::Sw), Just(Opcode::Sb)],
            reg_strategy(),
            0u32..DATA_WORDS
        )
            .prop_map(|(op, r, w)| Op::Store(op, r, w)),
        (
            prop_oneof![Just(Opcode::Fadd), Just(Opcode::Fsub), Just(Opcode::Fmul)],
            freg_strategy(),
            freg_strategy(),
            freg_strategy()
        )
            .prop_map(|(op, a, b, c)| Op::Fpu(op, a, b, c)),
    ]
}

fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    prop::collection::vec(
        (1u8..6, prop::collection::vec(op_strategy(), 1..12))
            .prop_map(|(iterations, body)| Block { iterations, body }),
        1..6,
    )
    .prop_map(|blocks| RandomProgram { blocks })
}

/// Materialises the description into a real program.
fn build(rp: &RandomProgram) -> Program {
    let mut b = ProgBuilder::new();
    let data = b.space(u64::from(DATA_WORDS) * 8 + 8);
    let base = b.addr_of(data);
    // Seed some registers so arithmetic has varied inputs.
    for r in 4..28u8 {
        b.li(r, (r as i64).wrapping_mul(0x9e37_79b9) & 0xffff);
    }
    for block in &rp.blocks {
        b.li(reg::K3, i64::from(block.iterations));
        let top = b.here();
        for op in &block.body {
            match *op {
                Op::Alu(o, a, x, y) => {
                    b.inst(Inst::rrr(o, a, x, y));
                }
                Op::AluImm(o, a, x, i) => {
                    b.inst(Inst::rri(o, a, x, i));
                }
                Op::Load(o, r, w) => {
                    b.li(reg::K2, (base + u64::from(w) * 8) as i64);
                    b.inst(Inst::load(o, r, reg::K2, 0));
                }
                Op::Store(o, r, w) => {
                    b.li(reg::K2, (base + u64::from(w) * 8) as i64);
                    b.inst(Inst::store(o, r, reg::K2, 0));
                }
                Op::Fpu(o, a, x, y) => {
                    b.inst(Inst::rrr(o, a, x, y));
                }
            }
        }
        b.inst(Inst::rri(Opcode::Addi, reg::K3, reg::K3, -1));
        b.bnez(reg::K3, top);
    }
    b.halt();
    b.finish().expect("random program assembles")
}

/// Checksum of the data window plus the committed-instruction count.
fn functional_outcome(prog: &Program) -> (u64, u64) {
    let mut mem = MemImage::new();
    prog.load(&mut mem);
    let mut cpu = FuncCore::with_stack(prog.entry, prog.stack_top);
    cpu.run(&mut mem, 10_000_000).expect("executes");
    assert!(cpu.halted());
    (window_checksum(&mem, prog), cpu.icount())
}

fn window_checksum(mem: &MemImage, prog: &Program) -> u64 {
    let base = prog.data_base;
    (0..u64::from(DATA_WORDS))
        .map(|w| mem.read_u64(base + w * 8).wrapping_mul(w + 1))
        .fold(0u64, |a, x| a.wrapping_add(x))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_systems_agree_with_functional_execution(rp in program_strategy()) {
        let prog = build(&rp);
        let (want_sum, want_insts) = functional_outcome(&prog);

        for nodes in [1usize, 2, 4] {
            let mut sys = DsSystem::new(DsConfig::with_nodes(nodes), &prog);
            let r = sys.run().expect("DataScalar runs");
            prop_assert_eq!(r.committed, want_insts, "DS x{} commit count", nodes);
            prop_assert_eq!(
                window_checksum(sys.mem(), &prog), want_sum,
                "DS x{} memory state", nodes
            );
            prop_assert!(sys.correspondence_holds(), "DS x{} correspondence", nodes);
            prop_assert_eq!(r.bus.requests, 0u64);
            prop_assert_eq!(r.bus.writes, 0u64);
        }

        let tc = TraditionalConfig::with_onchip_share(2);
        let mut trad = TraditionalSystem::new(&tc, &prog);
        let tr = trad.run().expect("traditional runs");
        prop_assert_eq!(tr.committed, want_insts);

        let mut perfect = PerfectSystem::new(&DsConfig::with_nodes(1), &prog);
        let pr = perfect.run().expect("perfect runs");
        prop_assert_eq!(pr.committed, want_insts);
    }

    #[test]
    fn datascalar_timing_is_deterministic(rp in program_strategy()) {
        let prog = build(&rp);
        let run = |nodes: usize| {
            let mut sys = DsSystem::new(DsConfig::with_nodes(nodes), &prog);
            let r = sys.run().expect("runs");
            (r.cycles, r.committed, r.bus.broadcasts)
        };
        prop_assert_eq!(run(2), run(2), "2-node run must be reproducible");
        prop_assert_eq!(run(4), run(4), "4-node run must be reproducible");
    }

    #[test]
    fn esp_broadcast_balance(rp in program_strategy()) {
        let prog = build(&rp);
        let mut sys = DsSystem::new(DsConfig::with_nodes(2), &prog);
        sys.run().expect("runs");
        let stats: Vec<_> = sys.nodes().iter().map(|n| n.stats()).collect();
        for (i, s) in stats.iter().enumerate() {
            let others: u64 = stats
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, o)| o.broadcasts_sent)
                .sum();
            prop_assert_eq!(
                s.bshr.arrivals, others,
                "node {} must consume exactly its peers' broadcasts", i
            );
        }
    }
}
