//! The timeline sampler's reconciliation contract: the per-interval
//! counter deltas are a *partition* of the whole-run ledgers, not an
//! approximation of them. Every interval bucket delta sums exactly to
//! the node's whole-run `CycleAccount`, interval lengths tile the run
//! with no gap or overlap, committed deltas sum to the run's committed
//! count (so length-weighted interval IPC equals run IPC by
//! construction), and the segmented phases partition the intervals the
//! same way. Cross-engine equality of the full `TimelineReport`
//! (naive vs. horizon-skipping vs. parallel) is pinned separately by
//! `tests/skip_equivalence.rs` through `RunResult` equality.

#![cfg(feature = "obs")]

use datascalar::core_model::{DsConfig, DsSystem, RunResult};
use datascalar::workloads::by_name;
use ds_bench::Budget;
use ds_obs::{StallBucket, SAMPLE_INTERVAL};

fn run(nodes: usize, workload: &str) -> RunResult {
    let budget = Budget::quick();
    let w = by_name(workload).expect("known workload");
    let prog = (w.build)(budget.scale);
    let mut config = DsConfig::with_nodes(nodes);
    config.max_insts = Some(budget.max_insts);
    let mut sys = DsSystem::new(config, &prog);
    sys.run().expect("workload executes")
}

#[test]
fn interval_deltas_sum_exactly_to_the_whole_run_ledgers() {
    let r = run(2, "compress");
    let m = r.metrics.as_ref().expect("obs builds carry metrics");
    let t = &m.timeline;
    assert_eq!(t.interval_cycles, SAMPLE_INTERVAL);
    assert_eq!(t.nodes.len(), m.node_accounts.len(), "one timeline per node");
    for (ni, node) in t.nodes.iter().enumerate() {
        assert_eq!(node.dropped, 0, "the quick budget must fit the default ring");
        assert!(!node.intervals.is_empty());

        // Intervals tile the run: contiguous from cycle 0 to the end.
        let mut expected_start = 0;
        for s in &node.intervals {
            assert_eq!(s.start, expected_start, "node {ni}: gap or overlap in intervals");
            assert!(s.len > 0, "node {ni}: zero-length interval recorded");
            expected_start = s.start + s.len;
        }
        assert_eq!(expected_start, r.cycles, "node {ni}: intervals must cover the run");

        // Committed deltas sum to the node's own run total —
        // equivalently, interval IPC weighted by interval length is the
        // node's run IPC, exactly, in integers. (Nodes commit the same
        // stream but the run ends when the first core hits the budget,
        // so the others can trail by a few instructions.)
        let committed: u64 = node.intervals.iter().map(|s| s.committed).sum();
        assert_eq!(
            committed, r.nodes[ni].core.committed,
            "node {ni}: committed deltas must sum to the node's run total"
        );

        // Each stall bucket's deltas sum to the node's whole-run ledger.
        let account = &m.node_accounts[ni];
        for b in StallBucket::ALL {
            let from_intervals: u64 =
                node.intervals.iter().map(|s| s.buckets[b as usize]).sum();
            assert_eq!(
                from_intervals,
                account.get(b),
                "node {ni}: interval deltas for `{}` must sum to the CycleAccount",
                b.label()
            );
        }
        // And per interval, the buckets fill the interval exactly.
        for s in &node.intervals {
            assert_eq!(s.buckets.iter().sum::<u64>(), s.len);
        }
    }
}

#[test]
fn phases_partition_the_intervals() {
    let r = run(4, "go");
    let t = &r.metrics.as_ref().expect("obs builds carry metrics").timeline;
    for (ni, node) in t.nodes.iter().enumerate() {
        let phases = &node.phases;
        assert!(!phases.is_empty(), "node {ni}: a non-empty run must have phases");
        let covered: u64 = phases.iter().map(|p| u64::from(p.intervals)).sum();
        assert_eq!(covered, node.intervals.len() as u64, "node {ni}");
        let phase_cycles: u64 = phases.iter().map(|p| p.cycles).sum();
        let interval_cycles: u64 = node.intervals.iter().map(|s| s.len).sum();
        assert_eq!(phase_cycles, interval_cycles, "node {ni}");
        let phase_committed: u64 = phases.iter().map(|p| p.committed).sum();
        assert_eq!(phase_committed, r.nodes[ni].core.committed, "node {ni}");
        // Phases are contiguous and start where the intervals start.
        let mut expected = node.intervals[0].start;
        for p in phases {
            assert_eq!(p.start, expected, "node {ni}: phases must be contiguous");
            expected = p.start + p.cycles;
        }
    }
}

#[test]
fn merged_timeline_aggregates_all_nodes() {
    let r = run(2, "compress");
    let t = &r.metrics.as_ref().expect("obs builds carry metrics").timeline;
    let merged = t.merged();
    // Every node records the same interval grid (all charge every
    // cycle), so the merged view keeps the grid and sums the counters
    // across nodes.
    assert_eq!(merged.intervals.len(), t.nodes[0].intervals.len());
    let merged_committed: u64 = merged.intervals.iter().map(|s| s.committed).sum();
    let per_node_committed: u64 = r.nodes.iter().map(|n| n.core.committed).sum();
    assert_eq!(merged_committed, per_node_committed);
    let machine_cycles: u64 = merged.intervals.iter().map(|s| s.buckets.iter().sum::<u64>()).sum();
    assert_eq!(machine_cycles, 2 * r.cycles);
}

#[test]
fn timeline_is_deterministic_across_identical_runs() {
    let a = run(2, "go");
    let b = run(2, "go");
    let ta = &a.metrics.as_ref().expect("metrics").timeline;
    let tb = &b.metrics.as_ref().expect("metrics").timeline;
    assert_eq!(ta, tb, "identical configs must produce identical timelines");
}
