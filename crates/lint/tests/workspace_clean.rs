//! The acceptance gate: the real workspace must lint clean. Any rule
//! violation introduced by a future PR fails `cargo test` here with the
//! same file:line diagnostics `scripts/verify.sh` prints.

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_lints_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_ds-lint"))
        .arg(workspace_root())
        .output()
        .expect("run ds-lint");
    assert!(
        out.status.success(),
        "ds-lint found violations:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn hot_modules_exist_where_the_linter_expects_them() {
    // If these paths move, ds-lint would silently stop policing them —
    // fail loudly instead so the path list gets updated.
    for rel in [
        "crates/core/src/system.rs",
        "crates/core/src/node.rs",
        "crates/core/src/pending.rs",
        "crates/cpu/src/ooo.rs",
        "crates/net/src/fabric.rs",
        "crates/obs/src/ring.rs",
        "crates/isa/src/opcode.rs",
        "crates/cpu/src/exec.rs",
        "docs/isa.md",
    ] {
        assert!(
            workspace_root().join(rel).is_file(),
            "{rel} is gone: update HOT_MODULES / X1 paths in crates/lint"
        );
    }
}

#[test]
fn seeded_violations_fail_via_the_binary() {
    // End-to-end: a doctored tree with one violation must exit non-zero.
    let dir = std::env::temp_dir().join(format!("ds-lint-fixture-{}", std::process::id()));
    let src = dir.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("mkdir fixture");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src.join("bad.rs"),
        "use std::collections::HashMap;\npub fn f() { let t = std::time::Instant::now(); }\n",
    )
    .expect("write fixture");

    let out = Command::new(env!("CARGO_BIN_EXE_ds-lint"))
        .arg(&dir)
        .output()
        .expect("run ds-lint");
    std::fs::remove_dir_all(&dir).ok();

    assert!(!out.status.success(), "seeded violations must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/core/src/bad.rs:1: [d1]"), "{stdout}");
    assert!(stdout.contains("crates/core/src/bad.rs:2: [d2]"), "{stdout}");
}

#[test]
fn seeded_probe_allocation_fails_a1() {
    // The observability ring is a hot module: an allocation smuggled
    // into a `record*` function (the per-event probe path) must be
    // caught by a1, and hash containers in the trace crate by d1.
    let dir = std::env::temp_dir().join(format!("ds-lint-obs-fixture-{}", std::process::id()));
    let obs_src = dir.join("crates/obs/src");
    let trace_src = dir.join("crates/trace/src");
    std::fs::create_dir_all(&obs_src).expect("mkdir obs fixture");
    std::fs::create_dir_all(&trace_src).expect("mkdir trace fixture");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        obs_src.join("ring.rs"),
        "pub fn record_event(&mut self) { self.scratch = Vec::new(); }\n",
    )
    .expect("write obs fixture");
    std::fs::write(
        trace_src.join("profile.rs"),
        "use std::collections::HashMap;\n",
    )
    .expect("write trace fixture");

    let out = Command::new(env!("CARGO_BIN_EXE_ds-lint"))
        .arg(&dir)
        .output()
        .expect("run ds-lint");
    std::fs::remove_dir_all(&dir).ok();

    assert!(!out.status.success(), "seeded violations must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/obs/src/ring.rs:1: [a1]"), "{stdout}");
    assert!(stdout.contains("crates/trace/src/profile.rs:1: [d1]"), "{stdout}");
}
