//! Search and region helpers for the linter: token search, brace-
//! matched region discovery, and `#[cfg(test)]` exemption regions.
//!
//! The lexical groundwork (comment/string stripping, line mapping and
//! the flat token stream) lives in [`crate::tokens`], shared with the
//! `ds-analyze` call-graph analyzer; this module re-exports the pieces
//! the rule checks use so existing imports keep working. The linter is
//! deliberately dependency-free (the build environment is offline, and
//! `syn` would be a heavyweight answer anyway): rules are expressed
//! over a *cleaned* view of the source in which comments and
//! string/char literals are blanked out with spaces. Blanking preserves
//! byte offsets and newlines, so every position in the cleaned text
//! maps 1:1 onto the original file for diagnostics.

pub use crate::tokens::{is_ident, strip, strip_comments, LineIndex};

/// Byte offsets of every occurrence of `word` in `text` delimited by
/// non-identifier characters on both sides.
pub fn word_occurrences(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let b = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let end = at + word.len();
        let after_ok = end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len().max(1);
    }
    out
}

/// Byte offsets of `.name(` method calls (whitespace allowed between
/// the name and the parenthesis; `.name_suffix(` does not match).
pub fn method_calls(text: &str, name: &str) -> Vec<usize> {
    let needle = format!(".{name}");
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(&needle) {
        let at = from + pos;
        let mut j = at + needle.len();
        let boundary = j >= b.len() || !is_ident(b[j]);
        if boundary {
            while j < b.len() && (b[j] as char).is_whitespace() {
                j += 1;
            }
            if j < b.len() && (b[j] == b'(' || (b[j] == b':' && j + 1 < b.len() && b[j + 1] == b':'))
            {
                out.push(at);
            }
        }
        from = at + needle.len();
    }
    out
}

/// Finds the byte range `(open, close]` of the brace block starting at
/// the first `{` at or after `from`, or `None` if unbalanced. Stops (and
/// returns `None`) if a `;` appears at depth zero first — a bodyless
/// declaration.
pub fn brace_block(text: &str, from: usize) -> Option<(usize, usize)> {
    let b = text.as_bytes();
    let mut i = from;
    while i < b.len() && b[i] != b'{' {
        if b[i] == b';' {
            return None;
        }
        i += 1;
    }
    if i >= b.len() {
        return None;
    }
    let open = i;
    let mut depth = 0usize;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Byte ranges of `#[cfg(test)]`-gated item bodies (test modules and
/// test-only items): tokens inside them are exempt from every rule.
pub fn test_regions(cleaned: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for at in occurrences(cleaned, "#[cfg(test)]") {
        if let Some((open, close)) = brace_block(cleaned, at) {
            out.push((open, close));
        }
    }
    out
}

/// Byte ranges of the bodies of functions whose name satisfies `pred`.
pub fn fn_bodies(cleaned: &str, pred: impl Fn(&str) -> bool) -> Vec<(usize, usize)> {
    let b = cleaned.as_bytes();
    let mut out = Vec::new();
    for at in word_occurrences(cleaned, "fn") {
        let mut i = at + 2;
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < b.len() && is_ident(b[i]) {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = &cleaned[name_start..i];
        if !pred(name) {
            continue;
        }
        if let Some(range) = brace_block(cleaned, i) {
            out.push(range);
        }
    }
    out
}

/// Plain substring occurrences (no boundary requirement).
pub fn occurrences(text: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(needle) {
        out.push(from + pos);
        from = from + pos + needle.len().max(1);
    }
    out
}

/// True if `offset` lies inside any of `regions`.
pub fn in_regions(regions: &[(usize, usize)], offset: usize) -> bool {
    regions.iter().any(|&(s, e)| offset >= s && offset <= e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap\n/* HashMap */ let y = 1;";
        let c = strip(src);
        assert_eq!(c.len(), src.len());
        assert!(!c.contains("HashMap"));
        assert!(c.contains("let y = 1;"));
    }

    #[test]
    fn strip_handles_raw_strings_chars_and_lifetimes() {
        let src = "let s = r#\"panic!\"#; let c = 'p'; fn f<'a>(x: &'a str) {}";
        let c = strip(src);
        assert!(!c.contains("panic!"));
        assert!(c.contains("fn f<'a>(x: &'a str) {}"));
        let esc = strip("let c = '\\n'; let d = \"a\\\"b\";");
        assert!(!esc.contains('n'), "escaped char blanked: {esc}");
    }

    #[test]
    fn strip_preserves_line_structure() {
        let src = "a\n/* x\ny */\nb";
        let c = strip(src);
        assert_eq!(c.matches('\n').count(), src.matches('\n').count());
        let idx = LineIndex::new(&c);
        assert_eq!(idx.line_of(c.find('b').unwrap()), 4);
    }

    #[test]
    fn word_occurrences_respect_boundaries() {
        let text = "HashMap HashMapX XHashMap x.HashMap<u64>";
        let hits = word_occurrences(text, "HashMap");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn method_calls_skip_suffixed_names() {
        let text = "a.unwrap() b.unwrap_or(0) c.unwrap () d.collect::<Vec<_>>()";
        assert_eq!(method_calls(text, "unwrap").len(), 2);
        assert_eq!(method_calls(text, "collect").len(), 1);
    }

    #[test]
    fn fn_bodies_find_named_functions() {
        let src = "fn step(&mut self) { let a = 1; }\nfn other() { }\nfn step_into(x: u8);";
        let bodies = fn_bodies(src, |n| n.starts_with("step"));
        assert_eq!(bodies.len(), 1, "bodyless decls skipped");
        let (s, e) = bodies[0];
        assert!(src[s..e].contains("let a = 1"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}";
        let regions = test_regions(src);
        assert_eq!(regions.len(), 1);
        let unwrap_at = src.find(".unwrap").unwrap();
        assert!(in_regions(&regions, unwrap_at));
        assert!(!in_regions(&regions, src.find("fn c").unwrap()));
    }
}
