//! The shared lexical layer: comment/string stripping, offset → line
//! mapping, and a flat token stream.
//!
//! Extracted from `scan.rs` so that `ds-analyze` (the interprocedural
//! call-graph analyzer in `crates/analyze`) and `ds-lint` lex source
//! text identically. Everything here operates on a *cleaned* view of
//! the source in which comments and string/char literals are blanked
//! out with spaces. Blanking preserves byte offsets and newlines, so
//! every position in the cleaned text maps 1:1 onto the original file
//! for diagnostics.
//!
//! The token stream is deliberately coarse: identifiers, single-byte
//! punctuation, (blanked) string literals and lifetimes. Multi-byte
//! operators (`::`, `=>`, `+=`) are left to the consumer, which sees
//! adjacent punctuation tokens and can join them — the DataScalar
//! analyses only ever need one lookahead/lookbehind for that.

/// Returns `source` with comments and string/char literals replaced by
/// spaces (newlines preserved), so token scans cannot match inside
/// either.
pub fn strip(source: &str) -> String {
    strip_impl(source, true)
}

/// Like [`strip`], but keeps string literal contents (comments are still
/// blanked). Used to parse the `opcodes!` table, whose mnemonics live in
/// string literals.
pub fn strip_comments(source: &str) -> String {
    strip_impl(source, false)
}

fn strip_impl(source: &str, blank_strings: bool) -> String {
    let b = source.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' if i + 1 < b.len() => {
                            if blank_strings {
                                out.push(b' ');
                                out.push(b' ');
                            } else {
                                out.push(b[i]);
                                out.push(b[i + 1]);
                            }
                            i += 2;
                        }
                        b'"' => {
                            out.push(b'"');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            i += 1;
                        }
                        _ => {
                            out.push(if blank_strings { b' ' } else { b[i] });
                            i += 1;
                        }
                    }
                }
            }
            b'r' if starts_raw_string(b, i) => {
                // r"..." or r#"..."# (any number of #): blank to the
                // matching close quote.
                let hash_start = i + 1;
                let mut hashes = 0;
                while hash_start + hashes < b.len() && b[hash_start + hashes] == b'#' {
                    hashes += 1;
                }
                out.push(b' ');
                for _ in 0..hashes {
                    out.push(b' ');
                }
                out.push(b'"');
                i = hash_start + hashes + 1;
                'raw: while i < b.len() {
                    if b[i] == b'"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if i + 1 + k >= b.len() || b[i + 1 + k] != b'#' {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            out.push(b'"');
                            for _ in 0..hashes {
                                out.push(b' ');
                            }
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    if b[i] == b'\n' {
                        out.push(b'\n');
                    } else {
                        out.push(if blank_strings { b' ' } else { b[i] });
                    }
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime. A char literal is 'x' or an
                // escape; anything else (e.g. 'a in generics) is a
                // lifetime and only the quote is consumed.
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    // Escaped char: blank to the closing quote.
                    out.push(b' ');
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        out.push(b' ');
                        i += 1;
                    }
                    if i < b.len() {
                        out.push(b' ');
                        i += 1;
                    }
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.extend_from_slice(b"   ");
                    i += 3;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn starts_raw_string(b: &[u8], i: usize) -> bool {
    // `r` must not be part of a longer identifier (e.g. `var"` is not
    // possible, but `for"` would need the boundary check anyway).
    if i > 0 && is_ident(b[i - 1]) {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// True for bytes that can appear in a Rust identifier.
pub fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offsets of the start of every line, for offset → line mapping.
#[derive(Debug)]
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for `source`.
    pub fn new(source: &str) -> Self {
        let mut starts = vec![0];
        for (i, c) in source.bytes().enumerate() {
            if c == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// One punctuation byte (`(`, `{`, `:`, `=`, ...).
    Punct(u8),
    /// A (blanked) string literal, quotes included.
    Str,
    /// A lifetime (`'a`), quote included.
    Lifetime,
}

/// One token of cleaned source: kind plus the byte range it spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// What the token is.
    pub kind: TokenKind,
}

impl Token {
    /// The token's text within the cleaned source it was lexed from.
    pub fn text<'a>(&self, cleaned: &'a str) -> &'a str {
        &cleaned[self.start..self.end]
    }

    /// True if this is the identifier `word`.
    pub fn is_word(&self, cleaned: &str, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(cleaned) == word
    }

    /// True if this is the punctuation byte `p`.
    pub fn is_punct(&self, p: u8) -> bool {
        self.kind == TokenKind::Punct(p)
    }
}

/// Lexes *cleaned* source (from [`strip`]) into a flat token stream.
/// Whitespace separates tokens and is not represented. Numbers lex as
/// `Ident` (they never matter to the analyses; identifier rules already
/// exclude a leading digit where it counts).
pub fn tokenize(cleaned: &str) -> Vec<Token> {
    let b = cleaned.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if is_ident(c) {
            let start = i;
            while i < b.len() && is_ident(b[i]) {
                i += 1;
            }
            out.push(Token { start, end: i, kind: TokenKind::Ident });
        } else if c == b'"' {
            // Strings in cleaned text are blanked but keep their
            // quotes, so the close quote is the next `"`.
            let start = i;
            i += 1;
            while i < b.len() && b[i] != b'"' {
                i += 1;
            }
            i = (i + 1).min(b.len());
            out.push(Token { start, end: i, kind: TokenKind::Str });
        } else if c == b'\'' {
            // Only lifetimes survive stripping with their quote.
            let start = i;
            i += 1;
            while i < b.len() && is_ident(b[i]) {
                i += 1;
            }
            out.push(Token { start, end: i, kind: TokenKind::Lifetime });
        } else {
            out.push(Token { start: i, end: i + 1, kind: TokenKind::Punct(c) });
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_idents_puncts_and_strings() {
        let cleaned = strip("fn step(x: u8) { v.push(\"HashMap\"); }");
        let toks = tokenize(&cleaned);
        let words: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(&cleaned))
            .collect();
        assert_eq!(words, vec!["fn", "step", "x", "u8", "v", "push"]);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
        assert!(toks.iter().any(|t| t.is_punct(b'{')));
    }

    #[test]
    fn tokenize_lifetimes_and_offsets_round_trip() {
        let cleaned = strip("impl<'a> Foo<'a> { fn f(&'a self) {} }");
        let toks = tokenize(&cleaned);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text(&cleaned) == "'a"));
        for t in &toks {
            assert!(t.start < t.end && t.end <= cleaned.len());
        }
    }

    #[test]
    fn tokenize_double_colon_is_adjacent_puncts() {
        let cleaned = strip("Vec::new()");
        let toks = tokenize(&cleaned);
        assert!(toks[1].is_punct(b':') && toks[2].is_punct(b':'));
        assert_eq!(toks[1].end, toks[2].start, "adjacency is detectable");
    }
}
