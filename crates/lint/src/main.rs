//! `ds-lint` — walk the workspace and enforce the DataScalar invariants
//! described in the library docs. Exit code 0 when clean, 1 when any
//! finding survives its allow-filtering.
//!
//! Usage: `ds-lint [workspace-root]` (default: current directory).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let root = match args.next() {
        Some(flag) if flag == "-h" || flag == "--help" => {
            eprintln!("usage: ds-lint [workspace-root]");
            return ExitCode::SUCCESS;
        }
        Some(path) => PathBuf::from(path),
        None => PathBuf::from("."),
    };
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "ds-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let diags = ds_lint::lint_workspace(&root);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("ds-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        let counts = ds_lint::rule_counts(&diags);
        let breakdown = counts
            .iter()
            .map(|(rule, n)| format!("{rule}:{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        eprintln!("ds-lint: {} finding(s) [{breakdown}]", diags.len());
        ExitCode::FAILURE
    }
}
