//! `ds-lint`: static invariants for the DataScalar workspace.
//!
//! DataScalar correctness hinges on properties the Rust compiler cannot
//! check: every node must make *identical, deterministic* decisions in
//! commit order, or broadcasts and BSHR waits stop pairing up and the
//! machine deadlocks (see `docs/protocol.md`). These rules encode those
//! properties as source-level checks:
//!
//! - **d1** — no `HashMap`/`HashSet` in the simulation crates
//!   (`ds-core`, `ds-cpu`, `ds-mem`, `ds-net`, `ds-trace`, `ds-obs`),
//!   and no iteration over hash-based containers. Hash iteration order
//!   is seeded per-process; any order that reaches simulated state (or
//!   replication selection, or recorded event streams) breaks node
//!   lockstep or run-to-run reproducibility.
//! - **d2** — no wall-clock (`Instant`, `SystemTime`) or ambient
//!   randomness (`thread_rng`, `from_entropy`, `RandomState`) in the
//!   simulation crates. Runs must be pure functions of their inputs.
//! - **p1** — no `unwrap`/`expect`/`panic!`/`unsafe` in the cycle-loop
//!   hot modules without an annotated reason. A panic mid-cycle leaves
//!   sibling nodes with unconsumed broadcasts; every unwind point must
//!   be a deliberate, documented invariant.
//! - **a1** — no allocation (`Vec::new`, `vec![`, `.collect()`, ...)
//!   inside `step`/`tick`/`record`/`charge`/`next_event`/`advance_to`/
//!   `edge`-named functions in the hot modules. Guards PR 1's
//!   allocation-free cycle loop, PR 3's per-event observability ring
//!   writes, PR 4's per-cycle stall accounting, the event-horizon
//!   engine's per-cycle horizon scan and batch advance, and the
//!   critical-path analyzer's per-retirement edge recording.
//! - **x1** — cross-file drift: every `Opcode` variant must have an
//!   exec arm in `crates/cpu/src/exec.rs` and a row in `docs/isa.md`.
//!
//! Findings are suppressed with `// ds-lint: allow(<rule>) <reason>` on
//! the offending line, or on a comment line immediately above it; for
//! generated or compat code a whole block can be bracketed with
//! `// ds-lint: allow-start(<rule>) <reason>` ... `// ds-lint:
//! allow-end(<rule>)`. The reason is mandatory; a bare allow, an
//! unclosed `allow-start`, or an unmatched `allow-end` is itself a
//! finding. The `ds-analyze` call-graph analyzer (`crates/analyze`)
//! shares this directive grammar via [`parse_directives`].

pub mod scan;
pub mod tokens;

use scan::{
    brace_block, fn_bodies, in_regions, method_calls, occurrences, strip, strip_comments,
    test_regions, word_occurrences, LineIndex,
};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The rule a finding belongs to (printed lowercase, matching the
/// `allow(<rule>)` directive spelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-based containers / iteration in simulation crates.
    D1,
    /// Wall-clock or ambient randomness in simulation crates.
    D2,
    /// Unannotated panic paths (`unwrap`/`expect`/`panic!`/`unsafe`) in
    /// hot modules.
    P1,
    /// Allocation inside `step`/`tick`/`record`/`charge`/`next_event`/
    /// `advance_to`/`edge` functions in hot modules.
    A1,
    /// ISA drift between `Opcode`, the exec unit, and `docs/isa.md`.
    X1,
    /// A malformed `ds-lint:` directive (unknown rule, missing reason).
    /// Cannot itself be allowed.
    Directive,
}

impl Rule {
    /// The directive spelling (`allow(d1)` etc.).
    pub fn code(self) -> &'static str {
        match self {
            Rule::D1 => "d1",
            Rule::D2 => "d2",
            Rule::P1 => "p1",
            Rule::A1 => "a1",
            Rule::X1 => "x1",
            Rule::Directive => "directive",
        }
    }

}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding, addressed `file:line` so editors and CI can jump to it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// What kind of file is being linted — decides which rules apply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Part of a simulation crate (`ds-core`/`ds-cpu`/`ds-mem`/`ds-net`):
    /// d1 and d2 apply.
    pub sim_crate: bool,
    /// One of the cycle-loop hot modules: p1 and a1 apply.
    pub hot_module: bool,
}

/// A parsed suppression set: line-level `allow` directives plus
/// block-scope `allow-start`/`allow-end` regions. Rule codes are kept
/// as strings so `ds-analyze` can reuse the parser with its own rule
/// catalog (`ta1`, `pa2`, ...).
#[derive(Debug, Default)]
pub struct AllowSet {
    /// `(target line, rule code)` pairs from line-level allows.
    line: Vec<(usize, String)>,
    /// `(first line, last line, rule code)` inclusive block regions.
    regions: Vec<(usize, usize, String)>,
}

impl AllowSet {
    /// True if a finding of `code` on `line` is suppressed.
    pub fn allows(&self, line: usize, code: &str) -> bool {
        self.line.iter().any(|(l, c)| *l == line && c == code)
            || self
                .regions
                .iter()
                .any(|(s, e, c)| line >= *s && line <= *e && c == code)
    }

    /// Folds `other` into this set (used to honor both `ds-lint:` and
    /// `ds-analyze:` directives on the same file).
    pub fn merge(&mut self, other: AllowSet) {
        self.line.extend(other.line);
        self.regions.extend(other.regions);
    }
}

/// A malformed directive, reported as `(line, message)` so each
/// consumer can wrap it in its own diagnostic type.
#[derive(Debug)]
pub struct DirectiveError {
    /// 1-based line of the malformed directive.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

const DIRECTIVE: &str = "ds-lint:";

/// Extracts allow directives written with `prefix` (e.g. `ds-lint:`)
/// from the raw source, validating rule codes against `known`.
///
/// Three forms are recognized:
///
/// - `<prefix> allow(<rule>) <reason>` — suppresses findings on the
///   directive's own line, or (when the directive sits on a
///   comment-only line) on the next non-blank code line.
/// - `<prefix> allow-start(<rule>) <reason>` — opens a block; findings
///   of `<rule>` are suppressed until the matching `allow-end`. For
///   generated or compat code where per-line annotations would drown
///   the file.
/// - `<prefix> allow-end(<rule>)` — closes the innermost open block of
///   that rule. No reason (the start carries it).
///
/// The reason is mandatory on `allow` and `allow-start`; an unmatched
/// `allow-start` (unclosed at end of file) or `allow-end` (no open
/// block) is an error, so a stray directive cannot silently widen or
/// narrow a suppression.
pub fn parse_directives(
    prefix: &str,
    known: &[&str],
    raw: &str,
    cleaned: &str,
) -> (AllowSet, Vec<DirectiveError>) {
    let mut set = AllowSet::default();
    let mut errors = Vec::new();
    // Open allow-start blocks: (start line, rule code).
    let mut open: Vec<(usize, String)> = Vec::new();
    let raw_lines: Vec<&str> = raw.lines().collect();
    let clean_lines: Vec<&str> = cleaned.lines().collect();
    for (idx, line) in raw_lines.iter().enumerate() {
        let lineno = idx + 1;
        let Some(at) = line.find(prefix) else {
            continue;
        };
        let rest = line[at + prefix.len()..].trim_start();
        let bad = |msg: String| DirectiveError { line: lineno, message: msg };
        let (kind, args) = if let Some(a) = rest.strip_prefix("allow-start(") {
            ("allow-start", a)
        } else if let Some(a) = rest.strip_prefix("allow-end(") {
            ("allow-end", a)
        } else if let Some(a) = rest.strip_prefix("allow(") {
            ("allow", a)
        } else {
            errors.push(bad(format!(
                "malformed {prefix} directive (expected `{prefix} allow(<rule>) <reason>`, \
                 `allow-start(<rule>) <reason>` or `allow-end(<rule>)`): `{}`",
                line.trim()
            )));
            continue;
        };
        let Some(close) = args.find(')') else {
            errors.push(bad(format!("unterminated `{kind}(` directive")));
            continue;
        };
        let code = args[..close].trim();
        if !known.contains(&code) {
            errors.push(bad(format!(
                "unknown lint rule `{code}` (known: {})",
                known.join(" ")
            )));
            continue;
        }
        let reason = args[close + 1..].trim();
        match kind {
            "allow-end" => {
                let Some(pos) = open.iter().rposition(|(_, c)| c == code) else {
                    errors.push(bad(format!(
                        "allow-end({code}) without a matching allow-start({code})"
                    )));
                    continue;
                };
                let (start, code) = open.remove(pos);
                set.regions.push((start, lineno, code));
            }
            _ if reason.is_empty() => {
                errors.push(bad(format!(
                    "{kind}({code}) requires a reason: `{prefix} {kind}({code}) <why this is safe>`"
                )));
            }
            "allow-start" => {
                open.push((lineno, code.to_string()));
            }
            _ => {
                // Comment-only line (nothing survives stripping) → the
                // allow applies to the next line with code on it.
                let own_code = clean_lines
                    .get(idx)
                    .map(|l| !l.trim().is_empty())
                    .unwrap_or(false);
                let target_line = if own_code {
                    lineno
                } else {
                    let mut t = lineno + 1;
                    while t <= clean_lines.len() && clean_lines[t - 1].trim().is_empty() {
                        t += 1;
                    }
                    t
                };
                set.line.push((target_line, code.to_string()));
            }
        }
    }
    for (start, code) in open {
        errors.push(DirectiveError {
            line: start,
            message: format!(
                "allow-start({code}) is never closed: add `{prefix} allow-end({code})`"
            ),
        });
    }
    (set, errors)
}

/// The `ds-lint` rule codes, for [`parse_directives`].
pub const RULE_CODES: [&str; 5] = ["d1", "d2", "p1", "a1", "x1"];

/// A candidate finding before allow-filtering: byte offset in the
/// cleaned text plus rule and message.
struct Candidate {
    offset: usize,
    rule: Rule,
    message: String,
}

/// Lints one file's source text. `file` is the label used in
/// diagnostics (workspace-relative path).
pub fn lint_source(file: &str, raw: &str, class: FileClass) -> Vec<Diagnostic> {
    let cleaned = strip(raw);
    let index = LineIndex::new(&cleaned);
    let tests = test_regions(&cleaned);
    let (allows, errors) = parse_directives(DIRECTIVE, &RULE_CODES, raw, &cleaned);
    let mut diags: Vec<Diagnostic> = errors
        .into_iter()
        .map(|e| Diagnostic {
            file: file.to_string(),
            line: e.line,
            rule: Rule::Directive,
            message: e.message,
        })
        .collect();

    let mut candidates: Vec<Candidate> = Vec::new();
    if class.sim_crate {
        check_d1(&cleaned, &mut candidates);
        check_d2(&cleaned, &mut candidates);
    }
    if class.hot_module {
        check_p1(&cleaned, &mut candidates);
        check_a1(&cleaned, &mut candidates);
    }

    for c in candidates {
        if in_regions(&tests, c.offset) {
            continue;
        }
        let line = index.line_of(c.offset);
        if allows.allows(line, c.rule.code()) {
            continue;
        }
        diags.push(Diagnostic {
            file: file.to_string(),
            line,
            rule: c.rule,
            message: c.message,
        });
    }
    diags.sort();
    diags.dedup();
    diags
}

/// d1: hash-based containers anywhere in a simulation crate, plus
/// iteration calls on bindings declared with a hash-based type (catches
/// iteration even when the declaration itself carries an allow).
fn check_d1(cleaned: &str, out: &mut Vec<Candidate>) {
    let mut tracked: Vec<String> = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for at in word_occurrences(cleaned, ty) {
            out.push(Candidate {
                offset: at,
                rule: Rule::D1,
                message: format!(
                    "`{ty}` in a simulation crate: hash iteration order is \
                     per-process and breaks node lockstep; use `LineMap`, \
                     `BTreeMap` or a sorted `Vec` (docs/protocol.md §3)"
                ),
            });
            if let Some(name) = binding_before(cleaned, at) {
                if !tracked.contains(&name) {
                    tracked.push(name);
                }
            }
        }
    }
    for name in &tracked {
        for method in [
            "iter",
            "iter_mut",
            "into_iter",
            "keys",
            "values",
            "values_mut",
            "drain",
            "retain",
        ] {
            for at in method_calls(cleaned, method) {
                if receiver_before(cleaned, at).as_deref() == Some(name) {
                    out.push(Candidate {
                        offset: at,
                        rule: Rule::D1,
                        message: format!(
                            "iteration over hash-based container `{name}` \
                             (`.{method}`): visit order is nondeterministic"
                        ),
                    });
                }
            }
        }
        // `for x in name` / `for x in &name` / `for x in &mut name`.
        for at in word_occurrences(cleaned, name) {
            let before = cleaned[..at].trim_end();
            let before = before
                .strip_suffix("&mut")
                .or_else(|| before.strip_suffix('&'))
                .unwrap_or(before)
                .trim_end();
            let seg_start = before
                .rfind(|c| c == ';' || c == '{' || c == '}')
                .map(|p| p + 1)
                .unwrap_or(0);
            if before.ends_with(" in") && !word_occurrences(&before[seg_start..], "for").is_empty()
            {
                out.push(Candidate {
                    offset: at,
                    rule: Rule::D1,
                    message: format!(
                        "`for .. in {name}` iterates a hash-based container: \
                         visit order is nondeterministic"
                    ),
                });
            }
        }
    }
}

/// The field/binding name a type annotation belongs to: for an offset
/// pointing at `HashMap` in `seq: std::collections::HashMap<..>` this
/// walks back over the path to the `:` and returns `seq`. Also handles
/// `let seq = HashMap::new()`.
fn binding_before(cleaned: &str, ty_at: usize) -> Option<String> {
    let b = cleaned.as_bytes();
    let mut i = ty_at;
    // Walk back over a leading path (std::collections::) and whitespace.
    while i > 0 {
        let c = b[i - 1];
        if c.is_ascii_alphanumeric() || c == b'_' || c == b':' {
            i -= 1;
        } else {
            break;
        }
    }
    let before = cleaned[..i].trim_end();
    if let Some(stripped) = before.strip_suffix(':') {
        return last_ident(stripped);
    }
    if let Some(stripped) = before.strip_suffix('=') {
        let lhs = stripped.trim_end();
        let lhs = lhs.strip_suffix("mut").unwrap_or(lhs).trim_end();
        return last_ident(lhs);
    }
    None
}

fn last_ident(text: &str) -> Option<String> {
    let trimmed = text.trim_end();
    let start = trimmed
        .rfind(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .map(|p| p + 1)
        .unwrap_or(0);
    let ident = &trimmed[start..];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident.to_string())
    }
}

/// The identifier immediately left of a `.method` occurrence
/// (`self.seq.iter()` → `seq`).
fn receiver_before(cleaned: &str, dot_at: usize) -> Option<String> {
    last_ident(&cleaned[..dot_at])
}

/// d2: wall-clock and ambient-randomness tokens.
fn check_d2(cleaned: &str, out: &mut Vec<Candidate>) {
    let tokens: [(&str, &str); 5] = [
        ("Instant", "wall-clock time in a simulation crate: cycle counts must not depend on host timing"),
        ("SystemTime", "wall-clock time in a simulation crate: cycle counts must not depend on host timing"),
        ("thread_rng", "ambient randomness in a simulation crate: seed explicitly so runs are reproducible"),
        ("from_entropy", "ambient randomness in a simulation crate: seed explicitly so runs are reproducible"),
        ("RandomState", "per-process hasher state in a simulation crate: breaks cross-run determinism"),
    ];
    for (tok, msg) in tokens {
        for at in word_occurrences(cleaned, tok) {
            out.push(Candidate {
                offset: at,
                rule: Rule::D2,
                message: format!("`{tok}`: {msg}"),
            });
        }
    }
    for at in occurrences(cleaned, "rand::random") {
        out.push(Candidate {
            offset: at,
            rule: Rule::D2,
            message: "`rand::random`: ambient randomness in a simulation crate".to_string(),
        });
    }
}

/// p1: panic paths in hot modules.
fn check_p1(cleaned: &str, out: &mut Vec<Candidate>) {
    for at in method_calls(cleaned, "unwrap") {
        out.push(Candidate {
            offset: at,
            rule: Rule::P1,
            message: "`.unwrap()` in a cycle-loop hot module: annotate the invariant that \
                      makes this infallible (`// ds-lint: allow(p1) <reason>`) or handle the None/Err"
                .to_string(),
        });
    }
    for at in method_calls(cleaned, "expect") {
        out.push(Candidate {
            offset: at,
            rule: Rule::P1,
            message: "`.expect(..)` in a cycle-loop hot module: annotate the invariant that \
                      makes this infallible or handle the None/Err"
                .to_string(),
        });
    }
    for at in occurrences(cleaned, "panic!") {
        let boundary = at == 0 || {
            let c = cleaned.as_bytes()[at - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if boundary {
            out.push(Candidate {
                offset: at,
                rule: Rule::P1,
                message: "`panic!` in a cycle-loop hot module: a mid-cycle unwind strands \
                          sibling nodes; annotate why this abort is the right response"
                    .to_string(),
            });
        }
    }
    for at in word_occurrences(cleaned, "unsafe") {
        out.push(Candidate {
            offset: at,
            rule: Rule::P1,
            message: "`unsafe` in a cycle-loop hot module: annotate the soundness argument"
                .to_string(),
        });
    }
}

/// a1: allocation inside `step`/`tick`/`record`/`charge`/`next_event`/
/// `advance_to`/`edge`/`sample`/`interval`-named functions (`record*`
/// covers the observability probe's per-event hot path; `charge*` the
/// per-cycle stall accounting; `next_event*`/`advance_to*` the
/// event-horizon engine's per-cycle horizon computation and batch
/// advance; `edge*` the critical-path analyzer's per-retirement edge
/// recording; `sample*`/`interval*` the timeline sampler's
/// once-per-4096-cycles snapshot close; `inject*`/`fault*`/`watchdog*`
/// the ds-chaos per-cycle paths — the fault injector's delivery
/// rewrite, rule matching, and the forward-progress check all run
/// every cycle of a faulted run. Report-time walks allocate freely,
/// but deliberately carry non-prefixed names like `path_report`,
/// `report`, and `build_deadlock_report`).
fn check_a1(cleaned: &str, out: &mut Vec<Candidate>) {
    let bodies = fn_bodies(cleaned, |name| {
        name.starts_with("step")
            || name.starts_with("tick")
            || name.starts_with("record")
            || name.starts_with("charge")
            || name.starts_with("next_event")
            || name.starts_with("advance_to")
            || name.starts_with("edge")
            || name.starts_with("sample")
            || name.starts_with("interval")
            || name.starts_with("inject")
            || name.starts_with("fault")
            || name.starts_with("watchdog")
    });
    if bodies.is_empty() {
        return;
    }
    let mut hits: Vec<(usize, String)> = Vec::new();
    for pat in ["Vec::new", "vec![", "Box::new", "String::new", "format!", "to_vec"] {
        let found = if pat == "to_vec" {
            method_calls(cleaned, pat)
        } else {
            occurrences(cleaned, pat)
        };
        for at in found {
            hits.push((at, pat.to_string()));
        }
    }
    for at in method_calls(cleaned, "collect") {
        hits.push((at, ".collect()".to_string()));
    }
    for (at, pat) in hits {
        if in_regions(&bodies, at) {
            out.push(Candidate {
                offset: at,
                rule: Rule::A1,
                message: format!(
                    "`{pat}` inside a step/tick/charge function: the cycle loop is \
                     allocation-free (DESIGN.md §8); hoist the buffer into the owning struct"
                ),
            });
        }
    }
}

/// One `(Variant, 0xNN, "mnemonic")` row of the `opcodes!` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpcodeEntry {
    /// Enum variant name (`Add`).
    pub variant: String,
    /// Assembler mnemonic (`add`, `fcvt.d.w`).
    pub mnemonic: String,
    /// 1-based line of the entry in the opcode source.
    pub line: usize,
}

/// Parses the `opcodes! { (Name, 0xNN, "mnem"), ... }` macro invocation.
pub fn parse_opcode_table(opcode_src: &str) -> Vec<OpcodeEntry> {
    let text = strip_comments(opcode_src);
    let index = LineIndex::new(&text);
    let Some(at) = text.find("opcodes!") else {
        return Vec::new();
    };
    let Some((open, close)) = brace_block(&text, at) else {
        return Vec::new();
    };
    let body = &text[open + 1..close];
    let base = open + 1;
    let mut entries = Vec::new();
    let b = body.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] != b'(' {
            i += 1;
            continue;
        }
        let entry_at = base + i;
        i += 1;
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        let variant = body[name_start..i].to_string();
        // Skip to the mnemonic string within this entry.
        let mut mnemonic = None;
        while i < b.len() && b[i] != b')' {
            if b[i] == b'"' {
                let lit_start = i + 1;
                let mut j = lit_start;
                while j < b.len() && b[j] != b'"' {
                    j += 1;
                }
                mnemonic = Some(body[lit_start..j].to_string());
                i = j;
            }
            i += 1;
        }
        if let (false, Some(mnemonic)) = (variant.is_empty(), mnemonic) {
            entries.push(OpcodeEntry {
                variant,
                mnemonic,
                line: index.line_of(entry_at),
            });
        }
    }
    entries
}

/// x1: every opcode variant must appear as an ident token in the exec
/// unit, and every mnemonic must appear (token-delimited) in the ISA
/// doc. Paths are only used for diagnostics.
pub fn check_isa_drift(
    opcode_path: &str,
    opcode_src: &str,
    exec_path: &str,
    exec_src: &str,
    doc_path: &str,
    doc_src: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let entries = parse_opcode_table(opcode_src);
    if entries.is_empty() {
        diags.push(Diagnostic {
            file: opcode_path.to_string(),
            line: 1,
            rule: Rule::X1,
            message: "could not parse any (Variant, opcode, \"mnemonic\") rows from the \
                      opcodes! table"
                .to_string(),
        });
        return diags;
    }
    let exec_clean = strip(exec_src);
    for e in &entries {
        if word_occurrences(&exec_clean, &e.variant).is_empty() {
            diags.push(Diagnostic {
                file: opcode_path.to_string(),
                line: e.line,
                rule: Rule::X1,
                message: format!(
                    "opcode `{}` has no exec arm in {exec_path}: the functional core \
                     would hit the unreachable fallback",
                    e.variant
                ),
            });
        }
        if !doc_contains_mnemonic(doc_src, &e.mnemonic) {
            diags.push(Diagnostic {
                file: opcode_path.to_string(),
                line: e.line,
                rule: Rule::X1,
                message: format!(
                    "opcode `{}` (mnemonic `{}`) is not documented in {doc_path}",
                    e.variant, e.mnemonic
                ),
            });
        }
    }
    diags
}

/// True if `doc` contains `mnemonic` delimited by non-identifier
/// characters. `.` is allowed *inside* the needle (dotted mnemonics like
/// `fcvt.d.w`) but identifier characters may not abut it, so `lw` does
/// not match inside `lwu`.
fn doc_contains_mnemonic(doc: &str, mnemonic: &str) -> bool {
    let b = doc.as_bytes();
    let mut from = 0;
    while let Some(pos) = doc[from..].find(mnemonic) {
        let at = from + pos;
        let end = at + mnemonic.len();
        let before_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let after_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// The simulation crates d1/d2 police. `trace` is included because
/// replication selection feeds simulated state (a hash-ordered page
/// profile once produced run-to-run drift); `obs` because recorded
/// event streams must replay identically.
pub const SIM_CRATES: [&str; 6] = ["core", "cpu", "mem", "net", "trace", "obs"];

/// The cycle-loop hot modules p1/a1 police (workspace-relative).
/// chaos.rs and watchdog.rs are hot because the fault injector runs at
/// every fabric delivery and the forward-progress check at every
/// cycle of a faulted run.
const HOT_MODULES: [&str; 11] = [
    "crates/core/src/system.rs",
    "crates/core/src/node.rs",
    "crates/core/src/pending.rs",
    "crates/core/src/watchdog.rs",
    "crates/cpu/src/ooo.rs",
    "crates/net/src/fabric.rs",
    "crates/net/src/chaos.rs",
    "crates/obs/src/account.rs",
    "crates/obs/src/critpath.rs",
    "crates/obs/src/ring.rs",
    "crates/obs/src/timeline.rs",
];

/// Lints the whole workspace rooted at `root`. Returns diagnostics
/// sorted by file then line; I/O problems surface as diagnostics too so
/// a broken tree can't pass silently.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for krate in SIM_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files);
        files.sort();
        for path in files {
            let rel = rel_label(root, &path);
            match std::fs::read_to_string(&path) {
                Ok(raw) => {
                    let class = FileClass {
                        sim_crate: true,
                        hot_module: HOT_MODULES.contains(&rel.as_str()),
                    };
                    diags.extend(lint_source(&rel, &raw, class));
                }
                Err(e) => diags.push(Diagnostic {
                    file: rel,
                    line: 1,
                    rule: Rule::Directive,
                    message: format!("unreadable source file: {e}"),
                }),
            }
        }
    }

    let opcode_path = "crates/isa/src/opcode.rs";
    let exec_path = "crates/cpu/src/exec.rs";
    let doc_path = "docs/isa.md";
    let mut read = |rel: &str| -> Option<String> {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => Some(s),
            Err(e) => {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: 1,
                    rule: Rule::X1,
                    message: format!("required for ISA drift check but unreadable: {e}"),
                });
                None
            }
        }
    };
    if let (Some(opcode_src), Some(exec_src), Some(doc_src)) =
        (read(opcode_path), read(exec_path), read(doc_path))
    {
        diags.extend(check_isa_drift(
            opcode_path,
            &opcode_src,
            exec_path,
            &exec_src,
            doc_path,
            &doc_src,
        ));
    }

    diags.sort();
    diags.dedup();
    diags
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Groups diagnostics per rule for the summary line.
pub fn rule_counts(diags: &[Diagnostic]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for d in diags {
        *counts.entry(d.rule.code()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: FileClass = FileClass {
        sim_crate: true,
        hot_module: false,
    };
    const HOT: FileClass = FileClass {
        sim_crate: true,
        hot_module: true,
    };

    fn rules(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d1_flags_hashmap_presence_and_iteration() {
        let src = "struct S { seq: std::collections::HashMap<u64, u64> }\n\
                   impl S { fn f(&self) { for (k, v) in self.seq.iter() {} } }\n";
        let diags = lint_source("x.rs", src, SIM);
        assert!(diags.iter().any(|d| d.rule == Rule::D1 && d.line == 1));
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::D1 && d.line == 2 && d.message.contains("seq")),
            "iteration finding expected: {diags:?}"
        );
    }

    #[test]
    fn d1_flags_for_in_loops_over_tracked_names() {
        let src = "fn f() { let waits = std::collections::HashSet::new();\n\
                   for w in &waits { use_it(w); } }\n";
        let diags = lint_source("x.rs", src, SIM);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::D1 && d.line == 2 && d.message.contains("for .. in")),
            "{diags:?}"
        );
    }

    #[test]
    fn d1_silent_outside_sim_crates() {
        let src = "use std::collections::HashMap;\n";
        assert!(lint_source("x.rs", src, FileClass::default()).is_empty());
    }

    #[test]
    fn d2_flags_clock_and_randomness() {
        let src = "fn f() { let t = std::time::Instant::now(); let r = rand::random::<u8>(); }\n";
        let got = rules(&lint_source("x.rs", src, SIM));
        assert_eq!(got, vec![Rule::D2, Rule::D2]);
    }

    #[test]
    fn p1_flags_panic_paths_in_hot_modules_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g() { panic!(\"boom\"); }\n\
                   fn h(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        let hot = lint_source("x.rs", src, HOT);
        assert_eq!(rules(&hot), vec![Rule::P1, Rule::P1], "{hot:?}");
        assert!(lint_source("x.rs", src, SIM).is_empty());
    }

    #[test]
    fn a1_flags_allocation_in_step_fns_only() {
        let src = "fn step(&mut self) { let v: Vec<u8> = Vec::new(); }\n\
                   fn helper(&mut self) { let v: Vec<u8> = Vec::new(); }\n\
                   fn tick_all(&mut self) { let xs: Vec<u8> = (0..4).collect(); }\n";
        let diags = lint_source("x.rs", src, HOT);
        assert_eq!(rules(&diags), vec![Rule::A1, Rule::A1], "{diags:?}");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 3);
    }

    #[test]
    fn a1_flags_allocation_in_charge_fns() {
        let src = "fn charge_cycle(&mut self) { let labels: Vec<String> = Vec::new(); }\n\
                   fn charge_pc(&mut self, pc: u64) { let s = format!(\"{pc:x}\"); }\n\
                   fn chart(&mut self) { let v: Vec<u8> = Vec::new(); }\n";
        let diags = lint_source("x.rs", src, HOT);
        assert_eq!(rules(&diags), vec![Rule::A1, Rule::A1], "{diags:?}");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 2);
    }

    #[test]
    fn a1_flags_allocation_in_horizon_fns() {
        // The event-horizon engine's per-cycle scan and batch advance
        // are policed like the step/charge paths.
        let src = "fn next_event(&self, now: u64) -> u64 { let v: Vec<u64> = (0..4).collect(); now }\n\
                   fn advance_to_horizon(&mut self) { let b = Box::new(0u8); }\n\
                   fn next_evening(&self) { let v: Vec<u8> = Vec::new(); }\n";
        let diags = lint_source("x.rs", src, HOT);
        assert_eq!(rules(&diags), vec![Rule::A1, Rule::A1], "{diags:?}");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 2);
    }

    #[test]
    fn a1_flags_allocation_in_edge_fns() {
        // The critical-path analyzer's per-retirement recording is
        // policed like the step/record paths; report-time helpers with
        // non-`edge` names allocate freely.
        let src = "fn edge_retire(&mut self, n: u64) { let v: Vec<u64> = (0..n).collect(); }\n\
                   fn edge_note_retire(&mut self) { let s = format!(\"x\"); }\n\
                   fn edgy_but_not_hot(&self) { let v: Vec<u8> = Vec::new(); }\n\
                   fn path_report(&self) -> Vec<u64> { Vec::new() }\n";
        let diags = lint_source("x.rs", src, HOT);
        assert_eq!(rules(&diags), vec![Rule::A1, Rule::A1], "{diags:?}");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 2);
    }

    #[test]
    fn a1_flags_allocation_in_sample_fns() {
        // The timeline sampler's per-boundary close is policed like the
        // step/charge paths; report-time helpers (`report`, `merged`)
        // carry non-prefixed names and allocate freely.
        let src = "fn sample_close(&mut self, end: u64) { let v: Vec<u64> = Vec::new(); }\n\
                   fn interval_deltas(&self) -> u64 { let s = format!(\"x\"); 0 }\n\
                   fn resample_offline(&mut self) { let v: Vec<u8> = Vec::new(); }\n\
                   fn report(&self) -> Vec<u64> { Vec::new() }\n";
        let diags = lint_source("x.rs", src, HOT);
        assert_eq!(rules(&diags), vec![Rule::A1, Rule::A1], "{diags:?}");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 2);
    }

    #[test]
    fn a1_flags_allocation_in_chaos_fns() {
        // The fault injector's per-delivery rewrite and the watchdog's
        // per-cycle progress check are policed like the step/charge
        // paths; report-time builders (`build_deadlock_report`) carry
        // non-prefixed names and allocate freely.
        let src = "fn inject_step(&mut self, now: u64) { let v: Vec<u64> = Vec::new(); }\n\
                   fn fault_matches(&self, now: u64) -> bool { let s = format!(\"x\"); true }\n\
                   fn watchdog_check(&mut self, now: u64) { let b = Box::new(0u8); }\n\
                   fn uninjected(&self) { let v: Vec<u8> = Vec::new(); }\n\
                   fn build_deadlock_report(&self) -> Vec<u64> { Vec::new() }\n";
        let diags = lint_source("x.rs", src, HOT);
        assert_eq!(rules(&diags), vec![Rule::A1, Rule::A1, Rule::A1], "{diags:?}");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 2);
        assert_eq!(diags[2].line, 3);
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "struct S { m: HashMap<u64, u64> } // ds-lint: allow(d1) probe-only, never iterated\n";
        assert!(lint_source("x.rs", src, SIM).is_empty());
    }

    #[test]
    fn allow_on_preceding_comment_line_suppresses() {
        let src = "// ds-lint: allow(p1) head checked non-empty by caller\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_source("x.rs", src, HOT).is_empty());
    }

    #[test]
    fn allow_block_suppresses_whole_region() {
        let src = "// ds-lint: allow-start(p1) generated table: every arm proven total upstream\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g(x: Option<u8>) -> u8 { x.expect(\"y\") }\n\
                   // ds-lint: allow-end(p1)\n\
                   fn h(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let diags = lint_source("x.rs", src, HOT);
        assert_eq!(rules(&diags), vec![Rule::P1], "{diags:?}");
        assert_eq!(diags[0].line, 5, "only the line after allow-end fires");
    }

    #[test]
    fn allow_block_is_rule_scoped() {
        let src = "// ds-lint: allow-start(d1) compat shim mirrors upstream layout\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   // ds-lint: allow-end(d1)\n";
        let diags = lint_source("x.rs", src, HOT);
        assert_eq!(rules(&diags), vec![Rule::P1], "d1 block must not hide p1");
    }

    #[test]
    fn unclosed_allow_start_is_a_finding() {
        let src = "// ds-lint: allow-start(p1) reason here\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let diags = lint_source("x.rs", src, HOT);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::Directive && d.message.contains("never closed")),
            "{diags:?}"
        );
    }

    #[test]
    fn unmatched_allow_end_is_a_finding() {
        let src = "fn f() {}\n// ds-lint: allow-end(p1)\n";
        let diags = lint_source("x.rs", src, HOT);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::Directive && d.message.contains("without a matching")),
            "{diags:?}"
        );
    }

    #[test]
    fn allow_start_without_reason_is_a_finding() {
        let src = "// ds-lint: allow-start(p1)\nfn f() {}\n// ds-lint: allow-end(p1)\n";
        let diags = lint_source("x.rs", src, HOT);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::Directive && d.message.contains("requires a reason")),
            "{diags:?}"
        );
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // ds-lint: allow(p1)\n";
        let diags = lint_source("x.rs", src, HOT);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::Directive && d.message.contains("requires a reason")),
            "{diags:?}"
        );
        // The unwrap itself stays un-suppressed.
        assert!(diags.iter().any(|d| d.rule == Rule::P1));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // ds-lint: allow(d1) wrong rule\n";
        let diags = lint_source("x.rs", src, HOT);
        assert_eq!(rules(&diags), vec![Rule::P1]);
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let src = "// ds-lint: allow(zz) nonsense\nfn f() {}\n";
        let diags = lint_source("x.rs", src, HOT);
        assert!(diags[0].message.contains("unknown lint rule"));
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n\
                   fn t(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert!(lint_source("x.rs", src, HOT).is_empty());
    }

    #[test]
    fn tokens_in_comments_and_strings_are_ignored() {
        let src = "// HashMap would be wrong here\nfn f() { let s = \"panic! Instant\"; }\n";
        assert!(lint_source("x.rs", src, HOT).is_empty());
    }

    const OPCODES: &str = r#"
opcodes! {
    (Add, 0x01, "add"),
    (FcvtDW, 0x2c, "fcvt.d.w"),
    (Nop, 0x51, "nop"),
}
"#;

    #[test]
    fn parse_opcode_table_reads_rows() {
        let entries = parse_opcode_table(OPCODES);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[1].variant, "FcvtDW");
        assert_eq!(entries[1].mnemonic, "fcvt.d.w");
    }

    #[test]
    fn x1_flags_missing_exec_arm_and_doc_row() {
        let exec = "match op { Opcode::Add => {}, Opcode::Nop => {} }";
        let doc = "| `add` | adds | and `nop` does nothing; also fcvt.d.w converts |";
        let diags = check_isa_drift("op.rs", OPCODES, "exec.rs", exec, "isa.md", doc);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("FcvtDW"));
        assert!(diags[0].message.contains("no exec arm"));

        let doc_missing = "| `add` | adds |";
        let exec_full = "match op { Opcode::Add | Opcode::FcvtDW | Opcode::Nop => {} }";
        let diags = check_isa_drift("op.rs", OPCODES, "exec.rs", exec_full, "isa.md", doc_missing);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.message.contains("not documented")));
    }

    #[test]
    fn x1_mnemonic_matching_respects_token_boundaries() {
        assert!(doc_contains_mnemonic("`lw lwu ld`", "lw"));
        assert!(!doc_contains_mnemonic("`lwu`", "lw"));
        assert!(doc_contains_mnemonic("fcvt.d.w fd, rs1", "fcvt.d.w"));
        assert!(!doc_contains_mnemonic("xfcvt.d.wx", "fcvt.d.w"));
    }
}
