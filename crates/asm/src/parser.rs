//! The two-pass textual assembler.

use crate::builder::expand_li;
use crate::error::AsmError;
use crate::program::Program;
use ds_isa::{reg, Inst, Opcode, INST_BYTES};
use std::collections::BTreeMap;

/// Assembles DS-1 assembly source into a [`Program`].
///
/// Syntax summary:
///
/// * comments: `#` or `;` to end of line;
/// * labels: `name:` (multiple per line allowed), in either section;
/// * sections: `.text` (default) and `.data`;
/// * data directives: `.byte`, `.half`, `.word32`, `.word` (8 bytes),
///   `.double`, `.space N`, `.align N`, `.asciiz "..."`;
/// * layout directives: `.bss N`, `.heap N`, `.stack N`, `.entry label`;
///   constants: `.equ name, value`;
/// * pseudo-instructions: `li`, `la`, `mv`, `not`, `neg`, `j`, `jr`,
///   `b`, `beqz`, `bnez`, `blez`, `bgtz`, `bltz`, `bgez`, `ble`, `bgt`,
///   `call`, `ret`, `subi`;
/// * immediates: decimal, hex (`0x...`), negative, or `symbol`,
///   `symbol+N`, `symbol-N`.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for syntax errors,
/// unknown mnemonics/registers, and undefined or duplicate labels.
///
/// # Examples
///
/// ```
/// let prog = ds_asm::assemble(".text\n  li t0, 3\n  halt\n").unwrap();
/// assert_eq!(prog.text.len(), 2);
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let lines = preprocess(source);
    let symbols = pass1(&lines)?;
    pass2(&lines, &symbols)
}

#[derive(Debug, Clone)]
struct Line {
    number: usize,
    labels: Vec<String>,
    /// Mnemonic or directive (lowercased), if any.
    head: Option<String>,
    /// Comma-separated operand fields (trimmed; parenthesised memory
    /// operands kept whole).
    operands: Vec<String>,
}

fn preprocess(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let mut line = raw;
        // Strip comments; keep quoted strings intact.
        let mut cut = line.len();
        let mut in_str = false;
        for (pos, ch) in line.char_indices() {
            match ch {
                '"' => in_str = !in_str,
                '#' | ';' if !in_str => {
                    cut = pos;
                    break;
                }
                _ => {}
            }
        }
        line = &line[..cut];
        let mut rest = line.trim();
        let mut labels = Vec::new();
        // Pull off leading `name:` labels.
        while let Some(colon) = rest.find(':') {
            let candidate = rest[..colon].trim();
            if !candidate.is_empty()
                && candidate.chars().all(|c| c.isalnum_or_underscore())
                && !candidate.chars().next().unwrap().is_ascii_digit()
            {
                labels.push(candidate.to_string());
                rest = rest[colon + 1..].trim();
            } else {
                break;
            }
        }
        let (head, operands) = if rest.is_empty() {
            (None, Vec::new())
        } else {
            let (m, ops) = match rest.find(char::is_whitespace) {
                Some(sp) => (&rest[..sp], rest[sp..].trim()),
                None => (rest, ""),
            };
            let operands = if ops.is_empty() {
                Vec::new()
            } else {
                split_operands(ops)
            };
            (Some(m.to_ascii_lowercase()), operands)
        };
        if head.is_none() && labels.is_empty() {
            continue;
        }
        out.push(Line { number: i + 1, labels, head, operands });
    }
    out
}

trait CharExt {
    fn isalnum_or_underscore(self) -> bool;
}
impl CharExt for char {
    fn isalnum_or_underscore(self) -> bool {
        self.is_ascii_alphanumeric() || self == '_'
    }
}

fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '"' => {
                in_str = !in_str;
                cur.push(ch);
            }
            '(' if !in_str => {
                depth += 1;
                cur.push(ch);
            }
            ')' if !in_str => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 && !in_str => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Pass 1: assign every label an address and collect `.equ` constants.
fn pass1(lines: &[Line]) -> Result<BTreeMap<String, u64>, AsmError> {
    let mut symbols = BTreeMap::new();
    let mut section = Section::Text;
    let mut text_insts: u64 = 0;
    let mut data_off: u64 = 0;
    let text_base = crate::program::DEFAULT_TEXT_BASE;
    let data_base = crate::program::DEFAULT_DATA_BASE;
    let mut define = |name: &str, value: u64, line: usize| -> Result<(), AsmError> {
        if symbols.insert(name.to_string(), value).is_some() {
            return Err(AsmError::new(line, format!("duplicate label `{name}`")));
        }
        Ok(())
    };
    for line in lines {
        let here = match section {
            Section::Text => text_base + text_insts * INST_BYTES,
            Section::Data => {
                // Labels on a data line bind to the *aligned* position.
                let pad = match line.head.as_deref().and_then(|h| h.strip_prefix('.')) {
                    Some("half") => pad_to(data_off, 2),
                    Some("word32") => pad_to(data_off, 4),
                    Some("word") | Some("double") => pad_to(data_off, 8),
                    Some("align") => {
                        let n = line
                            .operands
                            .first()
                            .and_then(|s| parse_number(s))
                            .unwrap_or(8) as u64;
                        if n.is_power_of_two() {
                            pad_to(data_off, n)
                        } else {
                            0
                        }
                    }
                    _ => 0,
                };
                data_base + data_off + pad
            }
        };
        for l in &line.labels {
            define(l, here, line.number)?;
        }
        let Some(head) = &line.head else { continue };
        if let Some(directive) = head.strip_prefix('.') {
            match directive {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "equ" => {
                    if line.operands.len() != 2 {
                        return Err(AsmError::new(line.number, ".equ needs name, value"));
                    }
                    let v = parse_number(&line.operands[1])
                        .ok_or_else(|| AsmError::new(line.number, "bad .equ value"))? as u64;
                    define(&line.operands[0], v, line.number)?;
                }
                _ => {
                    if section == Section::Data {
                        data_off += data_size(directive, &line.operands, data_off, line.number)?;
                    }
                    // Layout directives (.bss/.heap/.stack/.entry) and
                    // data directives in .text are sized as zero here
                    // and validated in pass 2.
                }
            }
        } else {
            if section != Section::Text {
                return Err(AsmError::new(line.number, "instruction outside .text"));
            }
            text_insts += inst_size(head, &line.operands, line.number)? as u64;
        }
    }
    Ok(symbols)
}

/// Bytes a data directive occupies.
fn data_size(directive: &str, ops: &[String], offset: u64, line: usize) -> Result<u64, AsmError> {
    Ok(match directive {
        "byte" => ops.len() as u64,
        "half" => pad_to(offset, 2) + 2 * ops.len() as u64,
        "word32" => pad_to(offset, 4) + 4 * ops.len() as u64,
        "word" | "double" => pad_to(offset, 8) + 8 * ops.len() as u64,
        "space" => {
            let n = ops
                .first()
                .and_then(|s| parse_number(s))
                .ok_or_else(|| AsmError::new(line, ".space needs a size"))?;
            n as u64
        }
        "align" => {
            let n = ops
                .first()
                .and_then(|s| parse_number(s))
                .ok_or_else(|| AsmError::new(line, ".align needs a power of two"))?
                as u64;
            if !n.is_power_of_two() {
                return Err(AsmError::new(line, ".align needs a power of two"));
            }
            pad_to(offset, n)
        }
        "asciiz" => {
            let s = parse_string(ops, line)?;
            s.len() as u64 + 1
        }
        "bss" | "heap" | "stack" | "entry" => 0,
        other => return Err(AsmError::new(line, format!("unknown directive `.{other}`"))),
    })
}

fn pad_to(offset: u64, align: u64) -> u64 {
    (align - offset % align) % align
}

fn parse_string(ops: &[String], line: usize) -> Result<String, AsmError> {
    let joined = ops.join(",");
    let s = joined.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Ok(s[1..s.len() - 1].replace("\\n", "\n").replace("\\0", "\0"))
    } else {
        Err(AsmError::new(line, "expected a quoted string"))
    }
}

/// Instructions a mnemonic expands to (needed before symbol values are
/// known, so symbol-valued `li` reserves the worst case like `la`).
fn inst_size(mnemonic: &str, ops: &[String], line: usize) -> Result<usize, AsmError> {
    Ok(match mnemonic {
        "la" => 2,
        "li" => {
            let imm = ops
                .get(1)
                .ok_or_else(|| AsmError::new(line, "li needs register, value"))?;
            match parse_number(imm) {
                Some(v) => expand_li(0, v).len(),
                None => 2, // symbol: worst case, padded with nop if short
            }
        }
        _ => {
            if Opcode::from_mnemonic(mnemonic).is_none() && !is_pseudo(mnemonic) {
                return Err(AsmError::new(line, format!("unknown mnemonic `{mnemonic}`")));
            }
            1
        }
    })
}

fn is_pseudo(m: &str) -> bool {
    matches!(
        m,
        "li" | "la"
            | "mv"
            | "not"
            | "neg"
            | "j"
            | "jr"
            | "b"
            | "beqz"
            | "bnez"
            | "blez"
            | "bgtz"
            | "bltz"
            | "bgez"
            | "ble"
            | "bgt"
            | "call"
            | "ret"
            | "subi"
    )
}

fn parse_number(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()? as i64
    } else {
        body.replace('_', "").parse::<i64>().ok()?
    };
    Some(if neg { v.wrapping_neg() } else { v })
}

/// Resolves `number`, `symbol`, `symbol+N`, `symbol-N`.
fn resolve_value(s: &str, symbols: &BTreeMap<String, u64>, line: usize) -> Result<i64, AsmError> {
    if let Some(v) = parse_number(s) {
        return Ok(v);
    }
    let (name, delta) = if let Some(plus) = s.rfind('+') {
        (&s[..plus], parse_number(&s[plus + 1..]).unwrap_or(0))
    } else if let Some(minus) = s.rfind('-') {
        if minus > 0 {
            (&s[..minus], -parse_number(&s[minus + 1..]).unwrap_or(0))
        } else {
            (s, 0)
        }
    } else {
        (s, 0)
    };
    let base = symbols
        .get(name.trim())
        .copied()
        .ok_or_else(|| AsmError::new(line, format!("undefined symbol `{}`", name.trim())))?;
    Ok(base as i64 + delta)
}

fn parse_ireg(s: &str, line: usize) -> Result<u8, AsmError> {
    reg::parse(s.trim())
        .ok_or_else(|| AsmError::new(line, format!("unknown integer register `{s}`")))
}

fn parse_freg(s: &str, line: usize) -> Result<u8, AsmError> {
    reg::parse_fp(s.trim())
        .ok_or_else(|| AsmError::new(line, format!("unknown fp register `{s}`")))
}

/// Parses `disp(base)` memory operands.
fn parse_mem_operand(
    s: &str,
    symbols: &BTreeMap<String, u64>,
    line: usize,
) -> Result<(i32, u8), AsmError> {
    let open = s
        .find('(')
        .ok_or_else(|| AsmError::new(line, format!("expected disp(reg), got `{s}`")))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| AsmError::new(line, "unbalanced parentheses in memory operand"))?;
    let disp_txt = s[..open].trim();
    let disp = if disp_txt.is_empty() {
        0
    } else {
        resolve_value(disp_txt, symbols, line)?
    };
    let base = parse_ireg(&s[open + 1..close], line)?;
    let disp = i32::try_from(disp)
        .map_err(|_| AsmError::new(line, "displacement out of 32-bit range"))?;
    Ok((disp, base))
}

/// Pass 2: emit instructions and data.
fn pass2(lines: &[Line], symbols: &BTreeMap<String, u64>) -> Result<Program, AsmError> {
    let mut prog = Program::new();
    let mut section = Section::Text;
    for line in lines {
        let Some(head) = &line.head else { continue };
        let n = line.number;
        if let Some(directive) = head.strip_prefix('.') {
            match directive {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "equ" => {}
                "bss" | "heap" | "stack" => {
                    let v = line
                        .operands
                        .first()
                        .and_then(|s| parse_number(s))
                        .ok_or_else(|| AsmError::new(n, format!(".{directive} needs a size")))?
                        as u64;
                    match directive {
                        "bss" => prog.bss_bytes = v,
                        "heap" => prog.heap_bytes = v,
                        _ => prog.stack_bytes = v,
                    }
                }
                "entry" => {
                    let target = line
                        .operands
                        .first()
                        .ok_or_else(|| AsmError::new(n, ".entry needs a label"))?;
                    prog.entry = resolve_value(target, symbols, n)? as u64;
                }
                _ => {
                    if section != Section::Data {
                        return Err(AsmError::new(n, "data directive outside .data"));
                    }
                    emit_data(&mut prog.data, directive, &line.operands, symbols, n)?;
                }
            }
            continue;
        }
        if section != Section::Text {
            return Err(AsmError::new(n, "instruction outside .text"));
        }
        let pc = prog.text_base + prog.text.len() as u64 * INST_BYTES;
        let before = prog.text.len();
        emit_inst(&mut prog.text, head, &line.operands, symbols, pc, n)?;
        // Keep pass-1 sizing honest.
        let expected = inst_size(head, &line.operands, n)?;
        let emitted = prog.text.len() - before;
        debug_assert!(emitted <= expected, "pass-1 under-sized `{head}`");
        for _ in emitted..expected {
            prog.text.push(Inst::nop());
        }
    }
    for (name, &addr) in symbols {
        prog.symbols.insert(name.clone(), addr);
    }
    Ok(prog)
}

fn emit_data(
    data: &mut Vec<u8>,
    directive: &str,
    ops: &[String],
    symbols: &BTreeMap<String, u64>,
    line: usize,
) -> Result<(), AsmError> {
    let pad = |data: &mut Vec<u8>, align: u64| {
        while !(data.len() as u64).is_multiple_of(align) {
            data.push(0);
        }
    };
    match directive {
        "byte" => {
            for op in ops {
                data.push(resolve_value(op, symbols, line)? as u8);
            }
        }
        "half" => {
            pad(data, 2);
            for op in ops {
                data.extend_from_slice(&(resolve_value(op, symbols, line)? as u16).to_le_bytes());
            }
        }
        "word32" => {
            pad(data, 4);
            for op in ops {
                data.extend_from_slice(&(resolve_value(op, symbols, line)? as u32).to_le_bytes());
            }
        }
        "word" => {
            pad(data, 8);
            for op in ops {
                data.extend_from_slice(&(resolve_value(op, symbols, line)? as u64).to_le_bytes());
            }
        }
        "double" => {
            pad(data, 8);
            for op in ops {
                let v: f64 = op
                    .parse()
                    .map_err(|_| AsmError::new(line, format!("bad double `{op}`")))?;
                data.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        "space" => {
            let count = ops
                .first()
                .and_then(|s| parse_number(s))
                .ok_or_else(|| AsmError::new(line, ".space needs a size"))?;
            data.resize(data.len() + count as usize, 0);
        }
        "align" => {
            let a = ops.first().and_then(|s| parse_number(s)).unwrap_or(8) as u64;
            pad(data, a);
        }
        "asciiz" => {
            let s = parse_string(ops, line)?;
            data.extend_from_slice(s.as_bytes());
            data.push(0);
        }
        other => return Err(AsmError::new(line, format!("unknown directive `.{other}`"))),
    }
    Ok(())
}

fn emit_inst(
    text: &mut Vec<Inst>,
    mnemonic: &str,
    ops: &[String],
    symbols: &BTreeMap<String, u64>,
    pc: u64,
    line: usize,
) -> Result<(), AsmError> {
    let need = |k: usize| -> Result<(), AsmError> {
        if ops.len() != k {
            Err(AsmError::new(line, format!("`{mnemonic}` expects {k} operands, got {}", ops.len())))
        } else {
            Ok(())
        }
    };
    let val = |s: &str| resolve_value(s, symbols, line);
    let imm32 = |s: &str| -> Result<i32, AsmError> {
        let v = resolve_value(s, symbols, line)?;
        i32::try_from(v).map_err(|_| AsmError::new(line, format!("immediate `{s}` out of range")))
    };
    let branch_off = |s: &str| -> Result<i32, AsmError> {
        let target = resolve_value(s, symbols, line)? as u64;
        let delta = target as i64 - pc as i64;
        if delta % INST_BYTES as i64 != 0 {
            return Err(AsmError::new(line, "branch target not instruction-aligned"));
        }
        i32::try_from(delta / INST_BYTES as i64)
            .map_err(|_| AsmError::new(line, "branch target out of range"))
    };

    // Pseudo-instructions first.
    match mnemonic {
        "li" => {
            need(2)?;
            let rd = parse_ireg(&ops[0], line)?;
            for i in expand_li(rd, val(&ops[1])?) {
                text.push(i);
            }
            return Ok(());
        }
        "la" => {
            need(2)?;
            let rd = parse_ireg(&ops[0], line)?;
            for i in expand_li(rd, val(&ops[1])?) {
                text.push(i);
            }
            return Ok(());
        }
        "mv" => {
            need(2)?;
            text.push(Inst::rrr(
                Opcode::Add,
                parse_ireg(&ops[0], line)?,
                parse_ireg(&ops[1], line)?,
                reg::ZERO,
            ));
            return Ok(());
        }
        "not" => {
            need(2)?;
            text.push(Inst::rrr(
                Opcode::Nor,
                parse_ireg(&ops[0], line)?,
                parse_ireg(&ops[1], line)?,
                reg::ZERO,
            ));
            return Ok(());
        }
        "neg" => {
            need(2)?;
            text.push(Inst::rrr(
                Opcode::Sub,
                parse_ireg(&ops[0], line)?,
                reg::ZERO,
                parse_ireg(&ops[1], line)?,
            ));
            return Ok(());
        }
        "subi" => {
            need(3)?;
            text.push(Inst::rri(
                Opcode::Addi,
                parse_ireg(&ops[0], line)?,
                parse_ireg(&ops[1], line)?,
                -imm32(&ops[2])?,
            ));
            return Ok(());
        }
        "j" | "b" => {
            need(1)?;
            let target = val(&ops[0])? as u64;
            text.push(Inst::jal(reg::ZERO, target as u32));
            return Ok(());
        }
        "jr" => {
            need(1)?;
            text.push(Inst::jalr(reg::ZERO, parse_ireg(&ops[0], line)?));
            return Ok(());
        }
        "call" => {
            need(1)?;
            let target = val(&ops[0])? as u64;
            text.push(Inst::jal(reg::RA, target as u32));
            return Ok(());
        }
        "ret" => {
            need(0)?;
            text.push(Inst::jalr(reg::ZERO, reg::RA));
            return Ok(());
        }
        "beqz" | "bnez" | "blez" | "bgtz" | "bltz" | "bgez" => {
            need(2)?;
            let rs = parse_ireg(&ops[0], line)?;
            let off = branch_off(&ops[1])?;
            let inst = match mnemonic {
                "beqz" => Inst::branch(Opcode::Beq, rs, reg::ZERO, off),
                "bnez" => Inst::branch(Opcode::Bne, rs, reg::ZERO, off),
                "blez" => Inst::branch(Opcode::Bge, reg::ZERO, rs, off),
                "bgtz" => Inst::branch(Opcode::Blt, reg::ZERO, rs, off),
                "bltz" => Inst::branch(Opcode::Blt, rs, reg::ZERO, off),
                _ => Inst::branch(Opcode::Bge, rs, reg::ZERO, off),
            };
            text.push(inst);
            return Ok(());
        }
        "ble" | "bgt" => {
            need(3)?;
            let rs = parse_ireg(&ops[0], line)?;
            let rt = parse_ireg(&ops[1], line)?;
            let off = branch_off(&ops[2])?;
            // ble a,b == bge b,a ; bgt a,b == blt b,a
            let inst = if mnemonic == "ble" {
                Inst::branch(Opcode::Bge, rt, rs, off)
            } else {
                Inst::branch(Opcode::Blt, rt, rs, off)
            };
            text.push(inst);
            return Ok(());
        }
        _ => {}
    }

    let op = Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| AsmError::new(line, format!("unknown mnemonic `{mnemonic}`")))?;
    use Opcode::*;
    let inst = match op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu => {
            need(3)?;
            Inst::rrr(
                op,
                parse_ireg(&ops[0], line)?,
                parse_ireg(&ops[1], line)?,
                parse_ireg(&ops[2], line)?,
            )
        }
        Addi | Andi | Ori | Xori | Slti | Slli | Srli | Srai => {
            need(3)?;
            Inst::rri(op, parse_ireg(&ops[0], line)?, parse_ireg(&ops[1], line)?, imm32(&ops[2])?)
        }
        Lui => {
            need(2)?;
            Inst::rri(op, parse_ireg(&ops[0], line)?, reg::ZERO, imm32(&ops[1])?)
        }
        Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld => {
            need(2)?;
            let rd = parse_ireg(&ops[0], line)?;
            let (disp, base) = parse_mem_operand(&ops[1], symbols, line)?;
            Inst::load(op, rd, base, disp)
        }
        Fld => {
            need(2)?;
            let rd = parse_freg(&ops[0], line)?;
            let (disp, base) = parse_mem_operand(&ops[1], symbols, line)?;
            Inst::load(op, rd, base, disp)
        }
        Sb | Sh | Sw | Sd => {
            need(2)?;
            let rv = parse_ireg(&ops[0], line)?;
            let (disp, base) = parse_mem_operand(&ops[1], symbols, line)?;
            Inst::store(op, rv, base, disp)
        }
        Fsd => {
            need(2)?;
            let rv = parse_freg(&ops[0], line)?;
            let (disp, base) = parse_mem_operand(&ops[1], symbols, line)?;
            Inst::store(op, rv, base, disp)
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            need(3)?;
            Inst::branch(
                op,
                parse_ireg(&ops[0], line)?,
                parse_ireg(&ops[1], line)?,
                branch_off(&ops[2])?,
            )
        }
        Jal => {
            // `jal target` or `jal rd, target`.
            let (rd, target) = match ops.len() {
                1 => (reg::RA, val(&ops[0])?),
                2 => (parse_ireg(&ops[0], line)?, val(&ops[1])?),
                _ => return Err(AsmError::new(line, "jal expects 1 or 2 operands")),
            };
            Inst::jal(rd, target as u32)
        }
        Jalr => {
            let (rd, rs) = match ops.len() {
                1 => (reg::RA, parse_ireg(&ops[0], line)?),
                2 => (parse_ireg(&ops[0], line)?, parse_ireg(&ops[1], line)?),
                _ => return Err(AsmError::new(line, "jalr expects 1 or 2 operands")),
            };
            Inst::jalr(rd, rs)
        }
        Fadd | Fsub | Fmul | Fdiv => {
            need(3)?;
            Inst::rrr(
                op,
                parse_freg(&ops[0], line)?,
                parse_freg(&ops[1], line)?,
                parse_freg(&ops[2], line)?,
            )
        }
        Fsqrt | Fmov | Fneg | Fabs => {
            need(2)?;
            Inst::rrr(op, parse_freg(&ops[0], line)?, parse_freg(&ops[1], line)?, 0)
        }
        Feq | Flt | Fle => {
            need(3)?;
            Inst::rrr(
                op,
                parse_ireg(&ops[0], line)?,
                parse_freg(&ops[1], line)?,
                parse_freg(&ops[2], line)?,
            )
        }
        Fcvtdw => {
            need(2)?;
            Inst::rri(op, parse_freg(&ops[0], line)?, parse_ireg(&ops[1], line)?, 0)
        }
        Fcvtwd => {
            need(2)?;
            Inst::rri(op, parse_ireg(&ops[0], line)?, parse_freg(&ops[1], line)?, 0)
        }
        Halt => {
            need(0)?;
            Inst::halt()
        }
        Nop => {
            need(0)?;
            Inst::nop()
        }
    };
    text.push(inst);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_cpu::FuncCore;
    use ds_mem::MemImage;

    fn run_src(src: &str) -> (FuncCore, MemImage, Program) {
        let prog = assemble(src).expect("assembles");
        let mut mem = MemImage::new();
        prog.load(&mut mem);
        let mut cpu = FuncCore::with_stack(prog.entry, prog.stack_top);
        cpu.run(&mut mem, 1_000_000).unwrap();
        assert!(cpu.halted(), "program did not halt");
        (cpu, mem, prog)
    }

    #[test]
    fn sum_loop() {
        let (cpu, _, _) = run_src(
            r#"
            .text
            main:   li   t0, 10
                    li   t1, 0
            loop:   add  t1, t1, t0
                    addi t0, t0, -1
                    bnez t0, loop
                    halt
            "#,
        );
        assert_eq!(cpu.ireg(reg::T1), 55);
    }

    #[test]
    fn data_section_and_loads() {
        let (cpu, _, _) = run_src(
            r#"
            .data
            nums:   .word 3, 5, 7
            pi:     .double 3.25
            msg:    .asciiz "hi"
            .text
            main:   la   t0, nums
                    ld   t1, 8(t0)
                    la   t2, pi
                    fld  f1, 0(t2)
                    la   t3, msg
                    lbu  t4, 1(t3)
                    halt
            "#,
        );
        assert_eq!(cpu.ireg(reg::T1), 5);
        assert_eq!(cpu.freg(1), 3.25);
        assert_eq!(cpu.ireg(reg::T4), b'i' as u64);
    }

    #[test]
    fn call_ret_and_entry() {
        let (cpu, _, prog) = run_src(
            r#"
            .text
            helper: li   v0, 9
                    ret
            start:  call helper
                    halt
            .entry start
            "#,
        );
        assert_eq!(cpu.ireg(reg::V0), 9);
        assert_eq!(prog.entry, prog.symbol("start").unwrap());
    }

    #[test]
    fn pseudo_branches() {
        let (cpu, _, _) = run_src(
            r#"
            .text
                    li   t0, -5
                    li   t1, 0
                    bltz t0, neg_case
                    li   t1, 1
                    halt
            neg_case:
                    li   t1, 2
                    halt
            "#,
        );
        assert_eq!(cpu.ireg(reg::T1), 2);
    }

    #[test]
    fn ble_bgt_swap_operands() {
        let (cpu, _, _) = run_src(
            r#"
            .text
                    li  t0, 3
                    li  t1, 7
                    ble t0, t1, ok
                    halt
            ok:     li  t2, 1
                    bgt t1, t0, ok2
                    halt
            ok2:    li  t3, 1
                    halt
            "#,
        );
        assert_eq!(cpu.ireg(reg::T2), 1);
        assert_eq!(cpu.ireg(reg::T3), 1);
    }

    #[test]
    fn equ_and_symbol_arithmetic() {
        let (cpu, _, _) = run_src(
            r#"
            .equ SIZE, 24
            .data
            arr:    .word 1, 2, 3
            .text
                    li  t0, SIZE
                    la  t1, arr+16
                    ld  t2, 0(t1)
                    halt
            "#,
        );
        assert_eq!(cpu.ireg(reg::T0), 24);
        assert_eq!(cpu.ireg(reg::T2), 3);
    }

    #[test]
    fn layout_directives() {
        let prog = assemble(
            r#"
            .bss 4096
            .heap 65536
            .stack 8192
            .text
            halt
            "#,
        )
        .unwrap();
        assert_eq!(prog.bss_bytes, 4096);
        assert_eq!(prog.heap_bytes, 65536);
        assert_eq!(prog.stack_bytes, 8192);
    }

    #[test]
    fn comments_and_blank_lines() {
        let prog = assemble(
            "# leading comment\n.text\n  nop ; trailing\n  halt # done\n\n",
        )
        .unwrap();
        assert_eq!(prog.text.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble(".text\n  bogus t0, t1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn undefined_symbol_errors() {
        let err = assemble(".text\n  la t0, nowhere\n  halt\n").unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_errors() {
        let err = assemble(".text\nx: nop\nx: halt\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn instruction_in_data_section_errors() {
        let err = assemble(".data\n  add t0, t1, t2\n").unwrap_err();
        assert!(err.message.contains("outside .text"));
    }

    #[test]
    fn li_symbol_padded_to_fixed_size() {
        // `li` of a symbol must occupy exactly 2 slots so pass-1
        // label addresses stay correct.
        let prog = assemble(
            r#"
            .data
            x: .word 42
            .text
            main:  li t0, x
            after: halt
            "#,
        )
        .unwrap();
        let after = prog.symbol("after").unwrap();
        assert_eq!(after, prog.text_base + 2 * 8);
    }

    #[test]
    fn word_alignment_in_data() {
        let prog = assemble(
            r#"
            .data
            b: .byte 1
            w: .word 7
            "#,
        )
        .unwrap();
        // .word pads to 8.
        assert_eq!(prog.symbol("w").unwrap() % 8, 0);
        assert_eq!(prog.data.len(), 16);
    }

    #[test]
    fn hex_and_underscore_literals() {
        let (cpu, _, _) = run_src(".text\n li t0, 0x1_000\n li t1, 1_000\n halt\n");
        assert_eq!(cpu.ireg(reg::T0), 0x1000);
        assert_eq!(cpu.ireg(reg::T1), 1000);
    }
}
