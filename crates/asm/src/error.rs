//! Assembler error type.

use std::fmt;

/// An assembly error, with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for whole-program errors such as
    /// undefined labels detected at link time).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    /// Creates an error at `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError { line, message: message.into() }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::new(7, "unknown mnemonic `bogus`");
        assert_eq!(e.to_string(), "line 7: unknown mnemonic `bogus`");
    }

    #[test]
    fn line_zero_is_global() {
        let e = AsmError::new(0, "undefined label `x`");
        assert_eq!(e.to_string(), "assembly error: undefined label `x`");
    }
}
