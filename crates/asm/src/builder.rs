//! Programmatic program construction.
//!
//! [`ProgBuilder`] is how the synthetic workloads are written: it
//! provides labels with forward references, the standard
//! pseudo-instruction expansions (`li`, `la`, `call`, ...), and data
//! segment allocation, producing a linked [`Program`].

use crate::error::AsmError;
use crate::program::Program;
use ds_isa::{reg, Inst, Opcode, INST_BYTES};

/// A text label (forward references allowed until [`ProgBuilder::finish`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A location in the data segment (known as soon as it is allocated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataRef(u64);

#[derive(Debug, Clone, Copy)]
enum Slot {
    Fixed(Inst),
    Branch { op: Opcode, rs: u8, rt: u8, target: Label },
    Jump { link: u8, target: Label },
}

/// Builds a [`Program`] in memory.
///
/// # Examples
///
/// ```
/// use ds_asm::ProgBuilder;
/// use ds_isa::{reg, Inst, Opcode};
///
/// let mut b = ProgBuilder::new();
/// let arr = b.dwords(&[5, 6, 7]);
/// b.la(reg::T0, arr);
/// b.inst(Inst::load(Opcode::Ld, reg::T1, reg::T0, 8));
/// b.halt();
/// let prog = b.finish().unwrap();
/// assert!(prog.text.len() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct ProgBuilder {
    text_base: u64,
    data_base: u64,
    slots: Vec<Slot>,
    labels: Vec<Option<usize>>,
    data: Vec<u8>,
    bss_bytes: u64,
    heap_bytes: u64,
    stack_bytes: u64,
    symbols: Vec<(String, u64)>,
}

impl ProgBuilder {
    /// A builder with the default memory layout.
    pub fn new() -> Self {
        ProgBuilder {
            text_base: crate::program::DEFAULT_TEXT_BASE,
            data_base: crate::program::DEFAULT_DATA_BASE,
            slots: Vec::new(),
            labels: Vec::new(),
            data: Vec::new(),
            bss_bytes: 0,
            heap_bytes: 0,
            stack_bytes: crate::program::DEFAULT_STACK_BYTES,
            symbols: Vec::new(),
        }
    }

    // ---- labels -----------------------------------------------------

    /// Allocates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `l` to the current text position.
    ///
    /// # Panics
    ///
    /// Panics if `l` is already bound.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.slots.len());
    }

    /// Allocates a label bound at the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// The absolute address a bound label resolves to.
    ///
    /// # Panics
    ///
    /// Panics if `l` is unbound.
    pub fn addr_of_label(&self, l: Label) -> u64 {
        let idx = self.labels[l.0].expect("label not bound yet");
        self.text_base + idx as u64 * INST_BYTES
    }

    // ---- instructions -----------------------------------------------

    /// Appends a raw instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.slots.push(Slot::Fixed(inst));
        self
    }

    /// Appends several raw instructions.
    pub fn insts(&mut self, insts: &[Inst]) -> &mut Self {
        for &i in insts {
            self.inst(i);
        }
        self
    }

    /// `li rd, value` — loads a 64-bit constant (1 or 2 instructions).
    pub fn li(&mut self, rd: u8, value: i64) -> &mut Self {
        for i in expand_li(rd, value) {
            self.inst(i);
        }
        self
    }

    /// `la rd, data` — loads the address of a data allocation.
    pub fn la(&mut self, rd: u8, d: DataRef) -> &mut Self {
        self.li(rd, (self.data_base + d.0) as i64)
    }

    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: u8, rs: u8) -> &mut Self {
        self.inst(Inst::rrr(Opcode::Add, rd, rs, reg::ZERO))
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::nop())
    }

    /// `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.inst(Inst::halt())
    }

    /// A conditional branch to a label.
    pub fn br(&mut self, op: Opcode, rs: u8, rt: u8, target: Label) -> &mut Self {
        assert!(op.is_branch(), "br requires a branch opcode");
        self.slots.push(Slot::Branch { op, rs, rt, target });
        self
    }

    /// `beqz rs, target`.
    pub fn beqz(&mut self, rs: u8, target: Label) -> &mut Self {
        self.br(Opcode::Beq, rs, reg::ZERO, target)
    }

    /// `bnez rs, target`.
    pub fn bnez(&mut self, rs: u8, target: Label) -> &mut Self {
        self.br(Opcode::Bne, rs, reg::ZERO, target)
    }

    /// Unconditional jump to a label (`jal zero, target`).
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.slots.push(Slot::Jump { link: reg::ZERO, target });
        self
    }

    /// `call target` (`jal ra, target`).
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.slots.push(Slot::Jump { link: reg::RA, target });
        self
    }

    /// `ret` (`jalr zero, ra`).
    pub fn ret(&mut self) -> &mut Self {
        self.inst(Inst::jalr(reg::ZERO, reg::RA))
    }

    /// Current number of emitted instruction slots.
    pub fn text_len(&self) -> usize {
        self.slots.len()
    }

    // ---- data -------------------------------------------------------

    /// Appends 64-bit words to the data segment (8-byte aligned).
    pub fn dwords(&mut self, values: &[u64]) -> DataRef {
        self.align(8);
        let r = DataRef(self.data.len() as u64);
        for v in values {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        r
    }

    /// Appends `f64` values (8-byte aligned).
    pub fn doubles(&mut self, values: &[f64]) -> DataRef {
        self.align(8);
        let r = DataRef(self.data.len() as u64);
        for v in values {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        r
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, values: &[u8]) -> DataRef {
        let r = DataRef(self.data.len() as u64);
        self.data.extend_from_slice(values);
        r
    }

    /// Reserves `n` zero bytes (8-byte aligned).
    pub fn space(&mut self, n: u64) -> DataRef {
        self.align(8);
        let r = DataRef(self.data.len() as u64);
        self.data.resize(self.data.len() + n as usize, 0);
        r
    }

    /// Pads the data segment to an `n`-byte boundary.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn align(&mut self, n: u64) -> &mut Self {
        assert!(n.is_power_of_two(), "alignment must be a power of two");
        while !(self.data.len() as u64).is_multiple_of(n) {
            self.data.push(0);
        }
        self
    }

    /// The absolute address of a data allocation.
    pub fn addr_of(&self, d: DataRef) -> u64 {
        self.data_base + d.0
    }

    /// Declares `n` bytes of zero-initialised bss after the data.
    pub fn set_bss(&mut self, n: u64) -> &mut Self {
        self.bss_bytes = n;
        self
    }

    /// Declares the heap extent for page-table construction.
    pub fn set_heap(&mut self, n: u64) -> &mut Self {
        self.heap_bytes = n;
        self
    }

    /// Declares the stack reservation.
    pub fn set_stack(&mut self, n: u64) -> &mut Self {
        self.stack_bytes = n;
        self
    }

    /// Names the current text position (or any address) in the symbol
    /// table of the finished program.
    pub fn symbol(&mut self, name: impl Into<String>, addr: u64) -> &mut Self {
        self.symbols.push((name.into(), addr));
        self
    }

    // ---- finish -----------------------------------------------------

    /// Resolves labels and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an error if any referenced label was never bound.
    pub fn finish(&self) -> Result<Program, AsmError> {
        let mut prog = Program::new();
        prog.text_base = self.text_base;
        prog.data_base = self.data_base;
        prog.data = self.data.clone();
        prog.bss_bytes = self.bss_bytes;
        prog.heap_bytes = self.heap_bytes;
        prog.stack_bytes = self.stack_bytes;
        prog.entry = self.text_base;
        let resolve = |l: Label| -> Result<u64, AsmError> {
            self.labels[l.0]
                .map(|idx| self.text_base + idx as u64 * INST_BYTES)
                .ok_or_else(|| AsmError::new(0, format!("label #{} never bound", l.0)))
        };
        for (i, slot) in self.slots.iter().enumerate() {
            let pc = self.text_base + i as u64 * INST_BYTES;
            let inst = match *slot {
                Slot::Fixed(inst) => inst,
                Slot::Branch { op, rs, rt, target } => {
                    let t = resolve(target)?;
                    let off = (t as i64 - pc as i64) / INST_BYTES as i64;
                    Inst::branch(op, rs, rt, off as i32)
                }
                Slot::Jump { link, target } => {
                    let t = resolve(target)?;
                    Inst::jal(link, t as u32)
                }
            };
            prog.text.push(inst);
        }
        for (name, addr) in &self.symbols {
            prog.symbols.insert(name.clone(), *addr);
        }
        Ok(prog)
    }
}

impl Default for ProgBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Expands `li rd, value` into 1–2 real instructions.
pub(crate) fn expand_li(rd: u8, value: i64) -> Vec<Inst> {
    if i32::try_from(value).is_ok() {
        vec![Inst::rri(Opcode::Addi, rd, reg::ZERO, value as i32)]
    } else if u32::try_from(value).is_ok() {
        vec![Inst::rri(Opcode::Ori, rd, reg::ZERO, value as u32 as i32)]
    } else {
        let hi = ((value as u64) >> 32) as u32;
        let lo = value as u32;
        vec![
            Inst::rri(Opcode::Lui, rd, reg::ZERO, hi as i32),
            Inst::rri(Opcode::Ori, rd, rd, lo as i32),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_cpu::FuncCore;
    use ds_mem::MemImage;

    fn run(prog: &Program, max: u64) -> (FuncCore, MemImage) {
        let mut mem = MemImage::new();
        prog.load(&mut mem);
        let mut cpu = FuncCore::with_stack(prog.entry, prog.stack_top);
        cpu.run(&mut mem, max).unwrap();
        assert!(cpu.halted(), "program did not halt");
        (cpu, mem)
    }

    #[test]
    fn li_expansion_widths() {
        assert_eq!(expand_li(1, 5).len(), 1);
        assert_eq!(expand_li(1, -5).len(), 1);
        assert_eq!(expand_li(1, 0xffff_ffff).len(), 1);
        assert_eq!(expand_li(1, 0x1_0000_0000).len(), 2);
        assert_eq!(expand_li(1, i64::MIN).len(), 2);
    }

    #[test]
    fn li_values_execute_correctly() {
        for &v in &[0i64, 1, -1, 12345, -12345, 0x7fff_ffff, 0x8000_0000, 0xdead_beef_cafe, i64::MIN, i64::MAX] {
            let mut b = ProgBuilder::new();
            b.li(reg::T0, v);
            b.halt();
            let (cpu, _) = run(&b.finish().unwrap(), 10);
            assert_eq!(cpu.ireg(reg::T0) as i64, v, "li {v}");
        }
    }

    #[test]
    fn forward_branch_resolves() {
        let mut b = ProgBuilder::new();
        let end = b.label();
        b.li(reg::T0, 1);
        b.bnez(reg::T0, end);
        b.li(reg::T1, 99); // skipped
        b.bind(end);
        b.halt();
        let (cpu, _) = run(&b.finish().unwrap(), 10);
        assert_eq!(cpu.ireg(reg::T1), 0);
    }

    #[test]
    fn backward_loop_sums() {
        let mut b = ProgBuilder::new();
        b.li(reg::T0, 10);
        b.li(reg::T1, 0);
        let loop_top = b.here();
        b.inst(Inst::rrr(Opcode::Add, reg::T1, reg::T1, reg::T0));
        b.inst(Inst::rri(Opcode::Addi, reg::T0, reg::T0, -1));
        b.bnez(reg::T0, loop_top);
        b.halt();
        let (cpu, _) = run(&b.finish().unwrap(), 100);
        assert_eq!(cpu.ireg(reg::T1), 55);
    }

    #[test]
    fn call_and_ret() {
        let mut b = ProgBuilder::new();
        let func = b.label();
        b.call(func);
        b.halt();
        b.bind(func);
        b.li(reg::V0, 42);
        b.ret();
        let (cpu, _) = run(&b.finish().unwrap(), 20);
        assert_eq!(cpu.ireg(reg::V0), 42);
    }

    #[test]
    fn data_allocations_are_loaded() {
        let mut b = ProgBuilder::new();
        let xs = b.dwords(&[10, 20, 30]);
        let fs = b.doubles(&[2.5]);
        let buf = b.space(16);
        b.la(reg::T0, xs);
        b.inst(Inst::load(Opcode::Ld, reg::T1, reg::T0, 16));
        b.la(reg::T2, fs);
        b.inst(Inst::load(Opcode::Fld, 1, reg::T2, 0));
        b.la(reg::T3, buf);
        b.inst(Inst::store(Opcode::Sd, reg::T1, reg::T3, 0));
        b.halt();
        let prog = b.finish().unwrap();
        let (cpu, mem) = run(&prog, 30);
        assert_eq!(cpu.ireg(reg::T1), 30);
        assert_eq!(cpu.freg(1), 2.5);
        assert_eq!(mem.read_u64(b.addr_of(buf)), 30);
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgBuilder::new();
        let l = b.label();
        b.j(l);
        b.halt();
        assert!(b.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn alignment_pads_data() {
        let mut b = ProgBuilder::new();
        b.bytes(&[1, 2, 3]);
        let x = b.dwords(&[7]);
        assert_eq!(b.addr_of(x) % 8, 0);
    }

    #[test]
    fn layout_declarations_propagate() {
        let mut b = ProgBuilder::new();
        b.set_bss(4096).set_heap(8192).set_stack(1 << 16);
        b.halt();
        let p = b.finish().unwrap();
        assert_eq!(p.bss_bytes, 4096);
        assert_eq!(p.heap_bytes, 8192);
        assert_eq!(p.stack_bytes, 1 << 16);
    }
}
