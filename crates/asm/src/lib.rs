//! The DS-1 assembler and program toolchain.
//!
//! The paper ran unmodified SPEC95 binaries through SimpleScalar's
//! compiler toolchain; our from-scratch equivalent is this crate:
//!
//! * [`Program`] — a linked, loadable image (text + data segments,
//!   entry point, symbols, layout) that every simulator in the
//!   workspace consumes;
//! * [`assemble`] — a two-pass textual assembler with labels,
//!   data directives, and the usual pseudo-instructions (`li`, `la`,
//!   `j`, `call`, `ret`, ...);
//! * [`ProgBuilder`] — a programmatic builder with the same
//!   expansions, used by the synthetic SPEC95-stand-in workloads.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! .text
//! main:   li   t0, 5
//!         li   t1, 0
//! loop:   add  t1, t1, t0
//!         addi t0, t0, -1
//!         bnez t0, loop
//!         halt
//! "#;
//! let prog = ds_asm::assemble(src).unwrap();
//! assert_eq!(prog.entry, prog.text_base);
//! ```

mod builder;
mod error;
mod parser;
mod program;

pub use builder::{DataRef, Label, ProgBuilder};
pub use error::AsmError;
pub use parser::assemble;
pub use program::{Program, DEFAULT_DATA_BASE, DEFAULT_STACK_BYTES, DEFAULT_STACK_TOP, DEFAULT_TEXT_BASE};
