//! The loadable program image.

use ds_isa::{Inst, INST_BYTES};
use ds_mem::{MemImage, Segment};
use std::collections::BTreeMap;

/// Default base address of the text segment.
pub const DEFAULT_TEXT_BASE: u64 = 0x1_0000;
/// Default base address of the data (global) segment.
pub const DEFAULT_DATA_BASE: u64 = 0x40_0000;
/// Default initial stack pointer (stacks grow down).
pub const DEFAULT_STACK_TOP: u64 = 0x800_0000;
/// Default stack reservation, for page-table construction.
pub const DEFAULT_STACK_BYTES: u64 = 256 * 1024;

/// A linked DS-1 program image.
///
/// Produced by [`crate::assemble`] or [`crate::ProgBuilder`]; loaded
/// into a [`MemImage`] with [`Program::load`]. The segment layout
/// ([`Program::regions`]) feeds the DataScalar page table, which needs
/// to know which pages are text, globals, heap and stack (the paper's
/// Table 2 reports replication per segment).
#[derive(Debug, Clone)]
pub struct Program {
    /// Base byte address of the text segment.
    pub text_base: u64,
    /// The instructions, in layout order.
    pub text: Vec<Inst>,
    /// Base byte address of the data segment.
    pub data_base: u64,
    /// Initialised data bytes.
    pub data: Vec<u8>,
    /// Zero-initialised bytes following `data`.
    pub bss_bytes: u64,
    /// Declared heap extent (bytes past the bss), for page-table
    /// construction. The heap base is [`Program::heap_base`].
    pub heap_bytes: u64,
    /// Entry point.
    pub entry: u64,
    /// Initial stack pointer.
    pub stack_top: u64,
    /// Declared stack reservation below `stack_top`.
    pub stack_bytes: u64,
    /// Symbol table (labels to byte addresses).
    pub symbols: BTreeMap<String, u64>,
}

impl Program {
    /// An empty program with the default layout.
    pub fn new() -> Self {
        Program {
            text_base: DEFAULT_TEXT_BASE,
            text: Vec::new(),
            data_base: DEFAULT_DATA_BASE,
            data: Vec::new(),
            bss_bytes: 0,
            heap_bytes: 0,
            entry: DEFAULT_TEXT_BASE,
            stack_top: DEFAULT_STACK_TOP,
            stack_bytes: DEFAULT_STACK_BYTES,
            symbols: BTreeMap::new(),
        }
    }

    /// Size of the text segment in bytes.
    pub fn text_bytes(&self) -> u64 {
        self.text.len() as u64 * INST_BYTES
    }

    /// First byte past the initialised + zero-initialised data: the
    /// heap base, rounded up to 4 KiB.
    pub fn heap_base(&self) -> u64 {
        let end = self.data_base + self.data.len() as u64 + self.bss_bytes;
        (end + 0xfff) & !0xfff
    }

    /// The address of a symbol.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Writes text and data into `mem`.
    pub fn load(&self, mem: &mut MemImage) {
        for (i, inst) in self.text.iter().enumerate() {
            mem.write_u64(self.text_base + i as u64 * INST_BYTES, inst.encode());
        }
        mem.write_bytes(self.data_base, &self.data);
        // bss/heap/stack are zero by MemImage's default.
    }

    /// Segment layout as `(start, end, segment)` triples for the page
    /// table. The global segment covers data + bss; the heap region is
    /// included only if `heap_bytes > 0`.
    pub fn regions(&self) -> Vec<(u64, u64, Segment)> {
        let mut v = Vec::with_capacity(4);
        if !self.text.is_empty() {
            v.push((self.text_base, self.text_base + self.text_bytes(), Segment::Text));
        }
        let global_end = self.data_base + self.data.len() as u64 + self.bss_bytes;
        if global_end > self.data_base {
            v.push((self.data_base, global_end, Segment::Global));
        }
        if self.heap_bytes > 0 {
            v.push((self.heap_base(), self.heap_base() + self.heap_bytes, Segment::Heap));
        }
        if self.stack_bytes > 0 {
            v.push((self.stack_top - self.stack_bytes, self.stack_top, Segment::Stack));
        }
        v
    }
}

impl Default for Program {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_isa::{reg, Opcode};

    fn sample() -> Program {
        let mut p = Program::new();
        p.text = vec![
            Inst::rri(Opcode::Addi, reg::T0, reg::ZERO, 1),
            Inst::halt(),
        ];
        p.data = vec![1, 2, 3, 4];
        p.bss_bytes = 100;
        p.heap_bytes = 8192;
        p.symbols.insert("main".into(), p.text_base);
        p
    }

    #[test]
    fn load_places_text_and_data() {
        let p = sample();
        let mut mem = MemImage::new();
        p.load(&mut mem);
        let w = mem.read_u64(p.text_base);
        assert_eq!(Inst::decode(w).unwrap().op, Opcode::Addi);
        assert_eq!(mem.read_u8(p.data_base + 2), 3);
    }

    #[test]
    fn heap_base_is_page_aligned_past_bss() {
        let p = sample();
        let hb = p.heap_base();
        assert_eq!(hb % 4096, 0);
        assert!(hb >= p.data_base + p.data.len() as u64 + p.bss_bytes);
    }

    #[test]
    fn regions_cover_all_segments() {
        let p = sample();
        let regions = p.regions();
        let segs: Vec<Segment> = regions.iter().map(|r| r.2).collect();
        assert_eq!(
            segs,
            vec![Segment::Text, Segment::Global, Segment::Heap, Segment::Stack]
        );
        for (start, end, _) in regions {
            assert!(end > start);
        }
    }

    #[test]
    fn empty_program_has_minimal_regions() {
        let p = Program::new();
        let regions = p.regions();
        assert_eq!(regions.len(), 1, "only the stack region");
        assert_eq!(regions[0].2, Segment::Stack);
    }

    #[test]
    fn symbol_lookup() {
        let p = sample();
        assert_eq!(p.symbol("main"), Some(p.text_base));
        assert_eq!(p.symbol("nope"), None);
    }
}
