//! End-to-end assembler programs: realistic hand-written sources that
//! exercise the full directive/pseudo-instruction surface and verify
//! results through functional execution.

use ds_asm::assemble;
use ds_cpu::FuncCore;
use ds_mem::MemImage;

fn run(src: &str) -> (FuncCore, MemImage, ds_asm::Program) {
    let prog = assemble(src).expect("assembles");
    let mut mem = MemImage::new();
    prog.load(&mut mem);
    let mut cpu = FuncCore::with_stack(prog.entry, prog.stack_top);
    cpu.run(&mut mem, 10_000_000).expect("executes");
    assert!(cpu.halted(), "did not halt");
    (cpu, mem, prog)
}

#[test]
fn string_length_and_reverse() {
    let (_, mem, prog) = run(r#"
        .data
        msg:    .asciiz "datascalar"
        out:    .space 16
        .text
        # strlen
        main:   la   t0, msg
                li   t1, 0
        len:    lbu  t2, 0(t0)
                beqz t2, rev
                addi t0, t0, 1
                addi t1, t1, 1
                j    len
        # reverse copy
        rev:    la   t0, msg
                la   t3, out
                add  t4, t3, t1        # out + len
                sb   zero, 0(t4)       # terminator
        loop:   beqz t1, done
                addi t1, t1, -1
                add  t5, t0, t1
                lbu  t6, 0(t5)
                sb   t6, 0(t3)
                addi t3, t3, 1
                j    loop
        done:   halt
    "#);
    let out = prog.symbol("out").unwrap();
    let got: Vec<u8> = (0..10).map(|i| mem.read_u8(out + i)).collect();
    assert_eq!(&got, b"ralacsatad");
}

#[test]
fn jump_table_dispatch() {
    let (cpu, _, _) = run(r#"
        .data
        table:  .word case0, case1, case2
        .text
        main:   li   s0, 0        # accumulator
                li   s1, 2        # selector: run case2, case1, case0
        next:   la   t0, table
                slli t1, s1, 3
                add  t0, t0, t1
                ld   t2, 0(t0)
                jalr ra, t2
                addi s1, s1, -1
                bgez s1, next
                halt
        case0:  addi s0, s0, 1
                ret
        case1:  addi s0, s0, 10
                ret
        case2:  addi s0, s0, 100
                ret
    "#);
    assert_eq!(cpu.ireg(ds_isa::reg::S0), 111);
}

#[test]
fn bubble_sort_in_assembly() {
    let (_, mem, prog) = run(r#"
        .equ N, 8
        .data
        arr:    .word 7, 2, 9, 1, 8, 3, 6, 4
        .text
        main:   li   s0, N
        outer:  addi s0, s0, -1
                blez s0, done
                la   t0, arr
                mv   t1, s0
        inner:  ld   t2, 0(t0)
                ld   t3, 8(t0)
                ble  t2, t3, noswap
                sd   t3, 0(t0)
                sd   t2, 8(t0)
        noswap: addi t0, t0, 8
                addi t1, t1, -1
                bnez t1, inner
                j    outer
        done:   halt
    "#);
    let arr = prog.symbol("arr").unwrap();
    let got: Vec<u64> = (0..8).map(|i| mem.read_u64(arr + 8 * i)).collect();
    assert_eq!(got, vec![1, 2, 3, 4, 6, 7, 8, 9]);
}

#[test]
fn fp_dot_product_with_conversion() {
    let (cpu, _, _) = run(r#"
        .data
        xs: .double 1.5, 2.5, 3.5
        ys: .double 2.0, 4.0, 8.0
        .text
        main:   la   t0, xs
                la   t1, ys
                li   t2, 3
                fcvt.d.w f0, zero      # acc = 0.0
        loop:   fld  f1, 0(t0)
                fld  f2, 0(t1)
                fmul f1, f1, f2
                fadd f0, f0, f1
                addi t0, t0, 8
                addi t1, t1, 8
                addi t2, t2, -1
                bnez t2, loop
                fcvt.w.d v0, f0
                halt
    "#);
    assert_eq!(cpu.ireg(ds_isa::reg::V0), 41); // 3 + 10 + 28
}

#[test]
fn stack_discipline_with_nested_calls() {
    let (cpu, _, _) = run(r#"
        .text
        main:   li   a0, 5
                call square_plus_one
                mv   s0, v0           # 26
                li   a0, 3
                call square_plus_one
                add  s0, s0, v0       # 26 + 10
                halt
        square_plus_one:
                addi sp, sp, -8
                sd   ra, 0(sp)
                call square
                addi v0, v0, 1
                ld   ra, 0(sp)
                addi sp, sp, 8
                ret
        square: mul  v0, a0, a0
                ret
    "#);
    assert_eq!(cpu.ireg(ds_isa::reg::S0), 36);
}

#[test]
fn data_directives_mix() {
    let (_, mem, prog) = run(r#"
        .data
        bytes:  .byte 1, 2, 255
        halves: .half 1000, 0x7fff
        words:  .word32 70000, 0xdeadbeef
        big:    .word 0x1122334455667788
        pad:    .align 16
        aligned:.word 42
        .text
        main:   halt
    "#);
    let b = prog.symbol("bytes").unwrap();
    assert_eq!(mem.read_u8(b + 2), 255);
    let h = prog.symbol("halves").unwrap();
    assert_eq!(mem.read_u16(h + 2), 0x7fff);
    let w = prog.symbol("words").unwrap();
    assert_eq!(mem.read_u32(w + 4), 0xdead_beef);
    let big = prog.symbol("big").unwrap();
    assert_eq!(mem.read_u64(big), 0x1122_3344_5566_7788);
    assert_eq!(prog.symbol("aligned").unwrap() % 16, 0);
}
