//! Assembler/disassembler round-trips: the `Display` form of every
//! non-control instruction is valid assembler input that reassembles to
//! the same instruction. (Control transfers print raw offsets/targets
//! while the assembler consumes labels, so they are exercised through
//! label-based sources instead.)

use ds_asm::assemble;
use ds_isa::{Inst, Opcode};
use proptest::prelude::*;

fn roundtrippable_opcode() -> impl Strategy<Value = Opcode> {
    let ops: Vec<Opcode> = Opcode::ALL
        .iter()
        .copied()
        .filter(|op| !op.is_control())
        .collect();
    prop::sample::select(ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_reassembles_to_the_same_instruction(
        op in roundtrippable_opcode(),
        rd in 0u8..32,
        rs in 0u8..32,
        rt in 0u8..32,
        imm in -100_000i32..100_000,
    ) {
        // Normalise fields the display does not show.
        let inst = normalise(Inst { op, rd, rs, rt, imm });
        let text = format!(".text\n{inst}\n");
        let prog = assemble(&text)
            .unwrap_or_else(|e| panic!("`{inst}` failed to assemble: {e}"));
        prop_assert_eq!(prog.text.len(), 1, "`{}` expanded", inst);
        prop_assert_eq!(prog.text[0], inst, "`{}` reassembled differently", inst);
    }
}

/// Zeroes the fields a given format does not print, so the comparison
/// is against what the text can carry.
fn normalise(mut i: Inst) -> Inst {
    use Opcode::*;
    match i.op {
        // Three-register forms: imm unused.
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu
        | Fadd | Fsub | Fmul | Fdiv | Feq | Flt | Fle => i.imm = 0,
        // Two-register forms: rt and imm unused.
        Fsqrt | Fmov | Fneg | Fabs => {
            i.rt = 0;
            i.imm = 0;
        }
        Fcvtdw | Fcvtwd => {
            i.rt = 0;
            i.imm = 0;
        }
        // Immediate forms: rt unused.
        Addi | Andi | Ori | Xori | Slti | Slli | Srli | Srai => i.rt = 0,
        Lui => {
            i.rs = 0;
            i.rt = 0;
        }
        // Memory forms: rt unused.
        Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld | Sb | Sh | Sw | Sd | Fsd => i.rt = 0,
        Nop | Halt => {
            i.rd = 0;
            i.rs = 0;
            i.rt = 0;
            i.imm = 0;
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu | Jal | Jalr => unreachable!("filtered out"),
    }
    i
}

#[test]
fn labelled_control_flow_roundtrips_through_source() {
    // Branches and jumps round-trip at the source level via labels.
    let src = r#"
        .text
        main:   li   t0, 3
        loop:   addi t0, t0, -1
                bnez t0, loop
                jal  ra, func
                halt
        func:   ret
    "#;
    let p1 = assemble(src).unwrap();
    // Reprint instruction-by-instruction cannot recreate labels, but
    // assembling the same source twice must be identical.
    let p2 = assemble(src).unwrap();
    assert_eq!(p1.text, p2.text);
    assert_eq!(p1.symbols, p2.symbols);
}
