//! A minimal ASCII table renderer for experiment output.

/// An ASCII table with a header row and aligned columns.
///
/// The first column is left-aligned (benchmark names); all other columns
/// are right-aligned (numbers), matching the layout of the paper's
/// tables.
///
/// # Examples
///
/// ```
/// use ds_stats::Table;
///
/// let mut t = Table::new(&["bench", "traffic", "transactions"]);
/// t.row(&["compress", "0.45", "0.70"]);
/// t.row(&["go", "0.31", "0.62"]);
/// println!("{}", t.render());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: AsRef<str>>(headers: &[S]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers: headers.iter().map(|h| h.as_ref().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Appends a row from already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// The column headers, in order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order (cells are the exact strings
    /// that `render` prints, before alignment padding).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a `String` with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "v"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        // Numbers right-aligned: "22" ends both data lines' second column.
        assert!(lines[3].ends_with("22"));
        assert!(lines[2].ends_with(" 1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(&["h"]);
        t.row(&["x"]);
        assert_eq!(format!("{t}"), t.render());
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(&["h"]);
        assert!(t.is_empty());
        t.row(&["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
