//! Shared statistics and reporting utilities for the DataScalar
//! reproduction.
//!
//! Every experiment harness in this workspace reports its results through
//! the small set of tools here: running [`Mean`]s, [`Histogram`]s of
//! run lengths, and an ASCII [`Table`] renderer whose output mirrors the
//! rows and columns of the paper's tables.
//!
//! # Examples
//!
//! ```
//! use ds_stats::Table;
//!
//! let mut t = Table::new(&["benchmark", "ipc"]);
//! t.row(&["compress", "2.31"]);
//! let s = t.render();
//! assert!(s.contains("compress"));
//! ```

mod histogram;
mod mean;
mod table;

pub use histogram::Histogram;
pub use mean::{geometric_mean, Mean};
pub use table::Table;

/// Formats a fraction in `[0, 1]` as a percentage with one decimal,
/// e.g. `0.347` renders as `"34.7%"`.
///
/// # Examples
///
/// ```
/// assert_eq!(ds_stats::percent(0.5), "50.0%");
/// ```
pub fn percent(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Formats a ratio with two decimal places, e.g. for IPC values.
///
/// # Examples
///
/// ```
/// assert_eq!(ds_stats::ratio(1.2345), "1.23");
/// ```
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_formats_one_decimal() {
        assert_eq!(percent(0.347), "34.7%");
        assert_eq!(percent(0.0), "0.0%");
        assert_eq!(percent(1.0), "100.0%");
    }

    #[test]
    fn ratio_formats_two_decimals() {
        assert_eq!(ratio(0.5), "0.50");
        assert_eq!(ratio(3.14159), "3.14");
    }
}
