//! A sparse integer histogram, used for datathread run-length
//! distributions and BSHR occupancy profiles.

use std::collections::BTreeMap;

/// A sparse histogram over `u64` keys.
///
/// # Examples
///
/// ```
/// use ds_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(3);
/// h.record(10);
/// assert_eq!(h.count(3), 2);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.max(), Some(10));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// The number of observations of exactly `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.buckets.get(&value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The largest observed value, if any.
    pub fn max(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// The smallest observed value, if any.
    pub fn min(&self) -> Option<u64> {
        self.buckets.keys().next().copied()
    }

    /// Arithmetic mean of the observations, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .map(|(&v, &n)| v as f64 * n as f64)
            .sum();
        sum / self.total as f64
    }

    /// The smallest value `v` such that at least `q` (in `[0,1]`) of the
    /// observations are `<= v`. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let threshold = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&v, &n) in &self.buckets {
            seen += n;
            if seen >= threshold {
                return Some(v);
            }
        }
        self.max()
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &n)| (v, n))
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

impl Extend<u64> for Histogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn mean_weights_by_count() {
        let mut h = Histogram::new();
        h.record_n(1, 3);
        h.record_n(5, 1);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(7, 0);
        assert!(h.is_empty());
        assert_eq!(h.count(7), 0);
    }

    #[test]
    fn iter_is_sorted() {
        let mut h = Histogram::new();
        h.extend([9, 1, 5, 1]);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(1, 2), (5, 1), (9, 1)]);
    }
}
