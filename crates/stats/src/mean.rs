//! Running arithmetic means and the geometric mean used for summary rows.

/// A running arithmetic mean that does not store its samples.
///
/// The paper reports arithmetic means of datathread lengths (Table 2) and
/// of per-node broadcast percentages (Table 3); this accumulator backs
/// both.
///
/// # Examples
///
/// ```
/// use ds_stats::Mean;
///
/// let mut m = Mean::new();
/// m.add(1.0);
/// m.add(3.0);
/// assert_eq!(m.mean(), 2.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Mean {
    sum: f64,
    count: u64,
}

impl Mean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: f64) {
        self.sum += sample;
        self.count += 1;
    }

    /// Adds a sample with an integral weight (equivalent to adding it
    /// `weight` times).
    pub fn add_weighted(&mut self, sample: f64, weight: u64) {
        self.sum += sample * weight as f64;
        self.count += weight;
    }

    /// The arithmetic mean of all samples so far, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The number of samples accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// True if no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl Extend<f64> for Mean {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

/// The geometric mean of a slice of strictly positive values.
///
/// Returns `None` for an empty slice or when any value is not strictly
/// positive (the geometric mean is undefined there).
///
/// # Examples
///
/// ```
/// let g = ds_stats::geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mean_is_zero() {
        let m = Mean::new();
        assert_eq!(m.mean(), 0.0);
        assert!(m.is_empty());
    }

    #[test]
    fn weighted_matches_repeated_adds() {
        let mut a = Mean::new();
        let mut b = Mean::new();
        a.add_weighted(2.5, 4);
        for _ in 0..4 {
            b.add(2.5);
        }
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn extend_accumulates() {
        let mut m = Mean::new();
        m.extend([2.0, 4.0, 6.0]);
        assert_eq!(m.mean(), 4.0);
    }

    #[test]
    fn geometric_mean_of_identical_values() {
        let g = geometric_mean(&[3.0, 3.0, 3.0]).unwrap();
        assert!((g - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_rejects_nonpositive() {
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }
}
