//! Experiment harness regenerating every table and figure of the
//! DataScalar paper.
//!
//! Each binary in `src/bin/` prints one table or figure:
//!
//! | binary | reproduces |
//! |---|---|
//! | `figure1_mmm` | Figure 1 — synchronous-ESP MMM timeline |
//! | `figure3_chain` | Figure 3 — serialized off-chip crossings |
//! | `table1_traffic` | Table 1 — ESP traffic reduction |
//! | `table2_datathreads` | Table 2 — datathread lengths, 4 nodes |
//! | `figure7_ipc` | Figure 7 — IPC across five systems |
//! | `figure8_sensitivity` | Figure 8 — go/compress sensitivity sweeps |
//! | `table3_broadcast` | Table 3 — broadcast/BSHR statistics |
//!
//! The shared runners live here so Criterion benches, integration tests
//! and the binaries measure exactly the same way. Run a binary with
//! `--quick` for a reduced instruction budget.

use ds_core::{DsConfig, DsSystem, PerfectSystem, RunResult, TraditionalConfig, TraditionalSystem};
use ds_workloads::{figure7_set, Scale, Workload};

pub mod regress;
pub mod report;
pub mod runner;
pub mod sweep;

/// Instruction budget for timing experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum instructions committed per run.
    pub max_insts: u64,
    /// Workload scale.
    pub scale: Scale,
}

impl Budget {
    /// The full experiment budget (the paper ran 100M instructions; our
    /// kernels reach steady state far sooner).
    pub fn full() -> Self {
        Budget { max_insts: 400_000, scale: Scale::Small }
    }

    /// A fast budget for smoke tests and Criterion.
    pub fn quick() -> Self {
        Budget { max_insts: 40_000, scale: Scale::Tiny }
    }

    /// Parses `--quick` from argv.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// The Figure 7 baseline configuration for an `n`-node machine.
///
/// The critical-path window flushes each full segment into its
/// accumulator, so attribution covers the whole run at any capacity and
/// the cache-resident default is the right bench size (sizing the
/// buffer to the 400K-instruction budget was measured at a ~35%
/// whole-bench slowdown from the extra memory traffic alone).
/// `DS_CRIT_WINDOW=<n>` overrides the capacity for experiments.
pub fn baseline_config(nodes: usize, max_insts: u64) -> DsConfig {
    let mut c = DsConfig::with_nodes(nodes);
    c.max_insts = Some(max_insts);
    c.crit_window_capacity = crit_window_capacity();
    c
}

/// Critical-path window (segment) capacity for bench runs: the
/// `DS_CRIT_WINDOW` env override when set (and nonzero), otherwise the
/// library default. The knob trades per-segment producer reach against
/// cache footprint — it no longer gates attribution coverage.
pub fn crit_window_capacity() -> usize {
    if let Ok(v) = std::env::var("DS_CRIT_WINDOW") {
        match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => eprintln!("ignoring DS_CRIT_WINDOW={v:?}: expected a positive integer"),
        }
    }
    ds_obs::critpath::DEFAULT_CRIT_WINDOW_CAPACITY
}

/// Unwraps a bench run, turning a watchdog trip into a loud failure
/// with the full structured report: every published number comes from
/// a run that actually finished.
fn expect_no_deadlock(r: RunResult, what: &str) -> RunResult {
    if let Some(report) = &r.deadlock {
        panic!("{what} tripped the forward-progress watchdog:\n{report}");
    }
    r
}

/// IPC of the DataScalar system with `nodes` nodes.
pub fn run_datascalar(w: &Workload, nodes: usize, budget: Budget) -> RunResult {
    let prog = (w.build)(budget.scale);
    let config = baseline_config(nodes, budget.max_insts);
    let mut sys = DsSystem::new(config, &prog);
    expect_no_deadlock(sys.run().expect("workload executes"), w.name)
}

/// IPC of the traditional system with a `1/nodes` on-chip share.
pub fn run_traditional(w: &Workload, nodes: usize, budget: Budget) -> RunResult {
    let prog = (w.build)(budget.scale);
    let config = TraditionalConfig { base: baseline_config(nodes, budget.max_insts) };
    let mut sys = TraditionalSystem::new(&config, &prog);
    expect_no_deadlock(sys.run().expect("workload executes"), w.name)
}

/// IPC of the perfect-data-cache upper bound.
pub fn run_perfect(w: &Workload, budget: Budget) -> RunResult {
    let prog = (w.build)(budget.scale);
    let config = baseline_config(1, budget.max_insts);
    let mut sys = PerfectSystem::new(&config, &prog);
    expect_no_deadlock(sys.run().expect("workload executes"), w.name)
}

/// One Figure 7 group: the five bars for one benchmark.
#[derive(Debug, Clone)]
pub struct Figure7Row {
    /// Benchmark name.
    pub name: String,
    /// Perfect-data-cache IPC.
    pub perfect: f64,
    /// 2-node DataScalar IPC.
    pub ds2: f64,
    /// 4-node DataScalar IPC.
    pub ds4: f64,
    /// Traditional, 1/2 memory on-chip.
    pub trad_half: f64,
    /// Traditional, 1/4 memory on-chip.
    pub trad_quarter: f64,
}

/// Runs all five systems of Figure 7 for one benchmark.
pub fn figure7_row(w: &Workload, budget: Budget) -> Figure7Row {
    Figure7Row {
        name: w.name.to_string(),
        perfect: run_perfect(w, budget).ipc(),
        ds2: run_datascalar(w, 2, budget).ipc(),
        ds4: run_datascalar(w, 4, budget).ipc(),
        trad_half: run_traditional(w, 2, budget).ipc(),
        trad_quarter: run_traditional(w, 4, budget).ipc(),
    }
}

/// All Figure 7 rows, one simulation per (benchmark × system) job —
/// fanned across threads when `--parallel` is given, with identical
/// results either way.
pub fn figure7_rows(budget: Budget) -> Vec<Figure7Row> {
    let set = figure7_set();
    let jobs: Vec<(usize, usize)> =
        (0..set.len()).flat_map(|wi| (0..5).map(move |sys| (wi, sys))).collect();
    let ipcs = runner::map(jobs, |&(wi, sys)| {
        let w = &set[wi];
        match sys {
            0 => run_perfect(w, budget).ipc(),
            1 => run_datascalar(w, 2, budget).ipc(),
            2 => run_datascalar(w, 4, budget).ipc(),
            3 => run_traditional(w, 2, budget).ipc(),
            _ => run_traditional(w, 4, budget).ipc(),
        }
    });
    set.iter()
        .enumerate()
        .map(|(wi, w)| Figure7Row {
            name: w.name.to_string(),
            perfect: ipcs[wi * 5],
            ds2: ipcs[wi * 5 + 1],
            ds4: ipcs[wi * 5 + 2],
            trad_half: ipcs[wi * 5 + 3],
            trad_quarter: ipcs[wi * 5 + 4],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_workloads::by_name;

    #[test]
    fn figure7_shape_for_compress() {
        // The paper's headline: compress on DataScalar approaches the
        // perfect cache and clearly beats the traditional system
        // (stores never go off-chip).
        let w = by_name("compress").unwrap();
        let row = figure7_row(&w, Budget::quick());
        assert!(row.perfect >= row.ds2 * 0.95, "perfect must bound DataScalar");
        assert!(
            row.ds2 > row.trad_half,
            "DataScalar x2 ({:.2}) must beat traditional 1/2 ({:.2}) on compress",
            row.ds2,
            row.trad_half
        );
        assert!(
            row.ds4 > row.trad_quarter,
            "DataScalar x4 ({:.2}) must beat traditional 1/4 ({:.2}) on compress",
            row.ds4,
            row.trad_quarter
        );
    }

    #[test]
    fn crit_window_keeps_the_cache_resident_default() {
        // Segment flushing made attribution coverage independent of
        // capacity (satellite: BENCH_throughput.json showed 767K
        // dropped vs 21K attributed before the fix; sizing the buffer
        // to the budget instead cost ~35% of bench throughput), so
        // every budget takes the library default unless DS_CRIT_WINDOW
        // overrides it.
        let full = baseline_config(2, Budget::full().max_insts);
        assert_eq!(full.crit_window_capacity, ds_obs::critpath::DEFAULT_CRIT_WINDOW_CAPACITY);
        let quick = baseline_config(2, Budget::quick().max_insts);
        assert_eq!(quick.crit_window_capacity, ds_obs::critpath::DEFAULT_CRIT_WINDOW_CAPACITY);
    }

    #[test]
    fn traditional_degrades_with_less_onchip_memory() {
        let w = by_name("go").unwrap();
        let b = Budget::quick();
        let half = run_traditional(&w, 2, b).ipc();
        let quarter = run_traditional(&w, 4, b).ipc();
        assert!(quarter <= half * 1.05, "1/4 on-chip should not beat 1/2");
    }
}
