//! Parallel experiment runner.
//!
//! Every experiment binary is a pile of *independent* timing
//! simulations (workload × configuration), each deterministic and
//! single-threaded (DESIGN.md §6). That makes them embarrassingly
//! parallel: this module fans a job list across `std::thread::scope`
//! threads and returns results **in input order**, so a table printed
//! from the results is byte-identical whether the jobs ran
//! sequentially or on sixteen cores.
//!
//! Binaries opt in with `--parallel` (kept off by default so default
//! runs stay easy to profile and to diff against old behaviour);
//! `DS_BENCH_THREADS` caps the worker count.
//!
//! # Crash containment (ds-chaos satellite)
//!
//! Each job runs under `catch_unwind`: a panicking workload never
//! aborts its siblings — every other job still completes — and the
//! failures are reported as a summary before the process exits
//! non-zero. `DS_BENCH_TIMEOUT=<seconds>` additionally arms a
//! wall-clock guard per workload: any single job exceeding the limit
//! aborts the whole run with exit code 124 and names the stuck job.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// True when `--parallel` was passed on the command line.
pub fn parallel_requested() -> bool {
    std::env::args().any(|a| a == "--parallel")
}

/// Worker-thread count: `DS_BENCH_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("DS_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Per-job wall-clock limit: `DS_BENCH_TIMEOUT` seconds when set and
/// positive, otherwise no guard.
pub fn job_timeout() -> Option<Duration> {
    let v = std::env::var("DS_BENCH_TIMEOUT").ok()?;
    match v.trim().parse::<u64>() {
        Ok(n) if n > 0 => Some(Duration::from_secs(n)),
        _ => {
            eprintln!("ignoring DS_BENCH_TIMEOUT={v:?}: expected a positive integer (seconds)");
            None
        }
    }
}

/// One contained job that panicked: which input, and what the panic
/// said.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Input index of the failed job.
    pub index: usize,
    /// The job's input, `Debug`-formatted (the workload descriptor).
    pub input: String,
    /// The panic payload, downcast to text when possible.
    pub payload: String,
}

/// Renders a panic payload as text (`&str` and `String` payloads pass
/// through; anything else is labelled opaque).
pub fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<opaque panic payload>".to_string()
    }
}

/// Applies `f` to every input with per-job panic containment: a
/// panicking job becomes a [`JobFailure`] (with its siblings
/// unaffected) instead of unwinding through the runner. Results stay
/// in input order; failed slots are `None`.
pub fn run_contained<I, T, F>(inputs: &[I], f: F) -> (Vec<Option<T>>, Vec<JobFailure>)
where
    I: Send + Sync + std::fmt::Debug,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let contained = |i: &I| catch_unwind(AssertUnwindSafe(|| f(i)));
    let raw: Vec<_> = if parallel_requested() && inputs.len() > 1 {
        pmap(inputs, contained)
    } else {
        inputs.iter().map(contained).collect()
    };
    let mut results = Vec::with_capacity(raw.len());
    let mut failures = Vec::new();
    for (index, r) in raw.into_iter().enumerate() {
        match r {
            Ok(v) => results.push(Some(v)),
            Err(e) => {
                failures.push(JobFailure {
                    index,
                    input: format!("{:?}", inputs[index]),
                    payload: panic_message(e),
                });
                results.push(None);
            }
        }
    }
    (results, failures)
}

/// Watches job wall-clock times on a detached thread and aborts the
/// process (exit 124) when any single job exceeds the limit — the
/// guard of last resort for a simulation that hangs instead of
/// panicking. Jobs check in/out; dropping the guard stops the monitor.
struct TimeoutGuard {
    active: Arc<Mutex<HashMap<usize, (Instant, String)>>>,
    stop: Arc<AtomicBool>,
}

impl TimeoutGuard {
    fn arm(limit: Duration) -> Self {
        let active: Arc<Mutex<HashMap<usize, (Instant, String)>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let (a, s) = (Arc::clone(&active), Arc::clone(&stop));
        std::thread::spawn(move || loop {
            if s.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(100).min(limit / 4));
            let now = Instant::now();
            let map = a.lock().unwrap_or_else(|p| p.into_inner());
            for (i, (start, input)) in map.iter() {
                if now.duration_since(*start) > limit {
                    eprintln!(
                        "bench job #{i} ({input}) exceeded DS_BENCH_TIMEOUT ({}s); aborting",
                        limit.as_secs()
                    );
                    std::process::exit(124);
                }
            }
        });
        TimeoutGuard { active, stop }
    }

    fn enter(&self, index: usize, input: String) {
        let mut map = self.active.lock().unwrap_or_else(|p| p.into_inner());
        map.insert(index, (Instant::now(), input));
    }

    fn exit(&self, index: usize) {
        let mut map = self.active.lock().unwrap_or_else(|p| p.into_inner());
        map.remove(&index);
    }
}

impl Drop for TimeoutGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Applies `f` to every input, in parallel when `--parallel` was
/// given, and returns the results in input order either way.
///
/// Jobs are containment-wrapped: if any panic, every sibling still
/// runs, the failures are summarised on stderr (workload + payload),
/// and the process exits non-zero. With `DS_BENCH_TIMEOUT=<seconds>`
/// set, a single job overrunning the limit aborts the run (exit 124).
pub fn map<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send + Sync + std::fmt::Debug,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let guard = job_timeout().map(TimeoutGuard::arm);
    let (results, failures) = {
        let guard = &guard;
        run_contained(&inputs, |i| {
            // Index the check-in by the job's position (pointer
            // identity): inputs are distinct slots even when payloads
            // repeat. Job lists are small; the linear scan is noise.
            let idx = inputs.iter().position(|x| std::ptr::eq(x, i)).unwrap_or(0);
            if let Some(g) = guard {
                g.enter(idx, format!("{i:?}"));
            }
            let r = f(i);
            if let Some(g) = guard {
                g.exit(idx);
            }
            r
        })
    };
    if !failures.is_empty() {
        eprintln!("-- bench job failures ({} of {}) --", failures.len(), inputs.len());
        for jf in &failures {
            eprintln!("  job #{} {}: {}", jf.index, jf.input, jf.payload);
        }
        eprintln!("aborting with non-zero status; sibling jobs completed normally");
        std::process::exit(1);
    }
    results.into_iter().map(|r| r.expect("non-failed jobs all produced results")).collect()
}

/// Applies `f` to every input across scoped worker threads, returning
/// results in input order. Workers pull the next job index from a
/// shared counter, so scheduling is dynamic but the output order is
/// not: result `i` always corresponds to input `i`.
pub fn pmap<I, T, F>(inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = inputs.len();
    let threads = thread_count().min(n);
    if threads <= 1 {
        return inputs.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return done;
                        }
                        done.push((i, f(&inputs[i])));
                    }
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every job ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmap_preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let got = pmap(&inputs, |&x| x * x);
        let want: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pmap_handles_empty_and_single() {
        assert_eq!(pmap::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
        assert_eq!(pmap(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn contained_jobs_survive_a_panicking_sibling() {
        let inputs: Vec<u64> = (0..16).collect();
        let (results, failures) = run_contained(&inputs, |&x| {
            assert!(x != 7, "workload seven exploded (payload {x})");
            x * 2
        });
        assert_eq!(results.len(), 16);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 7);
        assert_eq!(failures[0].input, "7");
        assert!(
            failures[0].payload.contains("workload seven exploded (payload 7)"),
            "panic payload must survive: {:?}",
            failures[0].payload
        );
        // Every sibling completed.
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                assert!(r.is_none());
            } else {
                assert_eq!(*r, Some(i as u64 * 2));
            }
        }
    }

    #[test]
    fn panic_message_downcasts_common_payloads() {
        assert_eq!(panic_message(Box::new("static str")), "static str");
        assert_eq!(panic_message(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_message(Box::new(42u32)), "<opaque panic payload>");
    }

    #[test]
    fn job_timeout_parses_only_positive_seconds() {
        // Uses the parser indirectly: no env var set in the test
        // harness means no guard.
        if std::env::var("DS_BENCH_TIMEOUT").is_err() {
            assert_eq!(job_timeout(), None);
        }
    }

    #[test]
    fn pmap_with_heavier_jobs_matches_sequential() {
        let inputs: Vec<u64> = (0..32).collect();
        let work = |&seed: &u64| {
            // splitmix-ish scramble: enough work to force interleaving.
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15);
            for _ in 0..10_000 {
                x ^= x >> 30;
                x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            }
            x
        };
        assert_eq!(pmap(&inputs, work), inputs.iter().map(work).collect::<Vec<_>>());
    }
}
