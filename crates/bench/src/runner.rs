//! Parallel experiment runner.
//!
//! Every experiment binary is a pile of *independent* timing
//! simulations (workload × configuration), each deterministic and
//! single-threaded (DESIGN.md §6). That makes them embarrassingly
//! parallel: this module fans a job list across `std::thread::scope`
//! threads and returns results **in input order**, so a table printed
//! from the results is byte-identical whether the jobs ran
//! sequentially or on sixteen cores.
//!
//! Binaries opt in with `--parallel` (kept off by default so default
//! runs stay easy to profile and to diff against old behaviour);
//! `DS_BENCH_THREADS` caps the worker count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// True when `--parallel` was passed on the command line.
pub fn parallel_requested() -> bool {
    std::env::args().any(|a| a == "--parallel")
}

/// Worker-thread count: `DS_BENCH_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("DS_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every input, in parallel when `--parallel` was
/// given, and returns the results in input order either way.
pub fn map<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send + Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    if parallel_requested() {
        pmap(&inputs, f)
    } else {
        inputs.iter().map(f).collect()
    }
}

/// Applies `f` to every input across scoped worker threads, returning
/// results in input order. Workers pull the next job index from a
/// shared counter, so scheduling is dynamic but the output order is
/// not: result `i` always corresponds to input `i`.
pub fn pmap<I, T, F>(inputs: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = inputs.len();
    let threads = thread_count().min(n);
    if threads <= 1 {
        return inputs.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return done;
                        }
                        done.push((i, f(&inputs[i])));
                    }
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every job ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmap_preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let got = pmap(&inputs, |&x| x * x);
        let want: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pmap_handles_empty_and_single() {
        assert_eq!(pmap::<u32, u32, _>(&[], |&x| x), Vec::<u32>::new());
        assert_eq!(pmap(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn pmap_with_heavier_jobs_matches_sequential() {
        let inputs: Vec<u64> = (0..32).collect();
        let work = |&seed: &u64| {
            // splitmix-ish scramble: enough work to force interleaving.
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15);
            for _ in 0..10_000 {
                x ^= x >> 30;
                x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            }
            x
        };
        assert_eq!(pmap(&inputs, work), inputs.iter().map(work).collect::<Vec<_>>());
    }
}
