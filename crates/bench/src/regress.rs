//! Regression diffing between two benchmark result documents — the
//! logic behind the `ds-report` binary and `bench_throughput
//! --baseline`.
//!
//! Two shapes are understood:
//!
//! * `ds-bench-result/v1` documents (any experiment binary's `--json`
//!   output): table cells are diffed informationally; named numbers
//!   whose key marks them higher-is-better (`*_per_sec`, `*ipc*`,
//!   `*speedup*`) gate on a relative drop.
//! * `BENCH_throughput.json` (the historical `--out` shape): combined
//!   and per-workload `insts_per_sec` gate on a relative drop, and the
//!   `cycle_accounting` bucket shares gate on an absolute shift —
//!   catching a run that is as fast as before but spends its cycles
//!   somewhere new. The `critpath` edge-class shares gate the same way,
//!   so a change that silently moves communication onto the critical
//!   path fails even at equal throughput; its `dropped` counter only
//!   warns (window wraparound is legitimate on long runs). The
//!   `timeline` phase summaries are compared index-by-index and only
//!   ever warn: a phase whose dominant stall bucket changes — or whose
//!   dominant share shifts past the bucket threshold — is reported even
//!   when the whole-run shares cancel out.
//!
//! Truncation is a failure, not a warning: a document that parses but
//! is missing an *entry* the baseline has — a workload, a named
//! number, a table, a per-workload accounting block — fails the gate,
//! because a half-written candidate must never pass by looking like a
//! smaller document. Only *section-level* absence stays a skip
//! (`cycle_accounting`/`critpath`/`timeline` null or missing on one
//! side means an obs-off measurement or an older producer, which is a
//! legitimate shape, not a torn write).
//!
//! Pure comparison, no I/O: callers parse with [`ds_obs::json`] and
//! decide what to do with a failed [`Diff`].

use ds_obs::json::Value;

/// Gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Maximum tolerated relative drop in a higher-is-better number
    /// (0.08 = new may be up to 8% below baseline).
    pub max_drop: f64,
    /// Maximum tolerated absolute shift in a stall bucket's share of
    /// total cycles (0.10 = ten share points).
    pub max_bucket_shift: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        // A synthetic 10% throughput drop must fail the gate; timing
        // noise on a loaded machine must not. 8% splits those.
        DiffOptions { max_drop: 0.08, max_bucket_shift: 0.10 }
    }
}

/// The rendered comparison: human-readable lines plus the subset that
/// breached a threshold.
#[derive(Debug, Clone, Default)]
pub struct Diff {
    /// Per-cell/per-number report lines, in document order.
    pub lines: Vec<String>,
    /// Threshold breaches (empty == gate passes).
    pub failures: Vec<String>,
}

impl Diff {
    /// True when no threshold was breached.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `base` against `new`, dispatching on document shape.
///
/// # Errors
///
/// Returns a message when the documents are of different or unknown
/// shapes.
pub fn diff_documents(base: &Value, new: &Value, opts: DiffOptions) -> Result<Diff, String> {
    let schema = |v: &Value| v.get("schema").and_then(Value::as_str).map(str::to_string);
    match (schema(base), schema(new)) {
        (Some(a), Some(b)) if a == b => Ok(diff_reports(base, new, opts)),
        (Some(a), Some(b)) => Err(format!("schema mismatch: baseline {a}, current {b}")),
        (None, None)
            if base.get("combined_insts_per_sec").is_some()
                && new.get("combined_insts_per_sec").is_some() =>
        {
            Ok(diff_throughput(base, new, opts))
        }
        _ => Err("unrecognised document shape (expected two ds-bench-result/v1 \
                  documents or two BENCH_throughput.json documents)"
            .to_string()),
    }
}

/// True for number names where bigger is better (gate on drops).
fn higher_is_better(name: &str) -> bool {
    name.contains("per_sec") || name.contains("ipc") || name.contains("speedup")
}

fn pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

fn diff_reports(base: &Value, new: &Value, opts: DiffOptions) -> Diff {
    let mut d = Diff::default();

    // Tables: cell-level diff, informational (cells are strings; the
    // numeric gate lives on the named numbers).
    let tables = |v: &Value| -> Vec<(String, Vec<Vec<String>>)> {
        let mut out = Vec::new();
        for t in v.get("tables").and_then(Value::as_array).unwrap_or(&[]) {
            let title =
                t.get("title").and_then(Value::as_str).unwrap_or("untitled").to_string();
            let rows = t
                .get("rows")
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|r| {
                    r.as_array()
                        .unwrap_or(&[])
                        .iter()
                        .map(|c| c.as_str().unwrap_or("?").to_string())
                        .collect()
                })
                .collect();
            out.push((title, rows));
        }
        out
    };
    let bt = tables(base);
    let nt = tables(new);
    const MAX_CELL_DIFFS: usize = 20;
    let mut cell_diffs = 0usize;
    for (title, base_rows) in &bt {
        let Some((_, new_rows)) = nt.iter().find(|(t, _)| t == title) else {
            d.failures.push(format!(
                "table \"{title}\": missing from current document (truncated output?)"
            ));
            continue;
        };
        if base_rows.len() != new_rows.len() {
            d.lines.push(format!(
                "table \"{title}\": {} rows -> {} rows",
                base_rows.len(),
                new_rows.len()
            ));
        }
        for (i, (br, nr)) in base_rows.iter().zip(new_rows).enumerate() {
            for (j, (bc, nc)) in br.iter().zip(nr).enumerate() {
                if bc != nc {
                    cell_diffs += 1;
                    if cell_diffs <= MAX_CELL_DIFFS {
                        d.lines.push(format!(
                            "table \"{title}\" row {i} col {j}: {bc} -> {nc}"
                        ));
                    }
                }
            }
        }
    }
    if cell_diffs > MAX_CELL_DIFFS {
        d.lines.push(format!("... and {} more cell diffs", cell_diffs - MAX_CELL_DIFFS));
    }
    if cell_diffs == 0 && !bt.is_empty() {
        d.lines.push("tables: identical".to_string());
    }

    // Numbers: the gate.
    let numbers = |v: &Value| -> Vec<(String, f64)> {
        match v.get("numbers") {
            Some(Value::Obj(members)) => members
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                .collect(),
            _ => Vec::new(),
        }
    };
    for (name, old) in numbers(base) {
        let Some((_, new_v)) = numbers(new).into_iter().find(|(k, _)| *k == name) else {
            d.failures.push(format!(
                "number {name}: missing from current document (truncated output?)"
            ));
            continue;
        };
        d.lines.push(format!(
            "number {name}: {old:.4} -> {new_v:.4} ({:+.2}%)",
            pct(old, new_v)
        ));
        if higher_is_better(&name) && new_v < old * (1.0 - opts.max_drop) {
            d.failures.push(format!(
                "{name} dropped {:.2}% (limit {:.0}%): {old:.2} -> {new_v:.2}",
                -pct(old, new_v),
                opts.max_drop * 100.0
            ));
        }
    }
    d
}

fn diff_throughput(base: &Value, new: &Value, opts: DiffOptions) -> Diff {
    let mut d = Diff::default();
    let mut gate = |name: &str, old: Option<f64>, new_v: Option<f64>, max_drop: f64| {
        match (old, new_v) {
            (Some(o), Some(n)) => {
                d.lines.push(format!("{name}: {o:.0} -> {n:.0} ({:+.2}%)", pct(o, n)));
                if n < o * (1.0 - max_drop) {
                    d.failures.push(format!(
                        "{name} dropped {:.2}% (limit {:.0}%): {o:.0} -> {n:.0}",
                        -pct(o, n),
                        max_drop * 100.0
                    ));
                }
            }
            _ => d.failures.push(format!(
                "{name}: missing on one side (truncated or torn document?)"
            )),
        }
    };

    let num = |v: &Value, k: &str| v.get(k).and_then(Value::as_f64);
    gate(
        "combined_insts_per_sec",
        num(base, "combined_insts_per_sec"),
        num(new, "combined_insts_per_sec"),
        opts.max_drop,
    );

    let workloads = |v: &Value| -> Vec<(String, f64)> {
        v.get("workloads")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|w| {
                Some((
                    w.get("name")?.as_str()?.to_string(),
                    w.get("insts_per_sec")?.as_f64()?,
                ))
            })
            .collect()
    };
    // Single-workload wall-clock timings jitter more than the combined
    // figure (observed ~7% run-to-run on a loaded machine vs ~4% for
    // the sum), so the per-workload gate gets double slack: it exists
    // to catch one workload cratering while the other masks it in the
    // combined number, not to re-gate the combined threshold twice.
    let new_w = workloads(new);
    for (name, old) in workloads(base) {
        let cur = new_w.iter().find(|(n, _)| *n == name).map(|&(_, v)| v);
        gate(&format!("{name} insts_per_sec"), Some(old), cur, opts.max_drop * 2.0);
    }

    // Stall-bucket shares: absolute shift gate. A null/missing block on
    // either side (an obs-off measurement) is noted and skipped.
    match (base.get("cycle_accounting"), new.get("cycle_accounting")) {
        (Some(Value::Obj(bw)), Some(Value::Obj(nw))) => {
            for (wname, bshares) in bw {
                let Some((_, nshares)) = nw.iter().find(|(k, _)| k == wname) else {
                    d.failures.push(format!(
                        "cycle_accounting {wname}: missing from current document \
                         (truncated output?)"
                    ));
                    continue;
                };
                let (Value::Obj(bs), Value::Obj(ns)) = (bshares, nshares) else {
                    continue;
                };
                for (bucket, old_share) in bs {
                    let Some(o) = old_share.as_f64() else { continue };
                    let n = ns
                        .iter()
                        .find(|(k, _)| k == bucket)
                        .and_then(|(_, v)| v.as_f64())
                        .unwrap_or(0.0);
                    let shift = n - o;
                    if shift.abs() > 1e-4 {
                        d.lines.push(format!(
                            "{wname} {bucket}: {:.1}% -> {:.1}% of cycles",
                            o * 100.0,
                            n * 100.0
                        ));
                    }
                    if shift.abs() > opts.max_bucket_shift {
                        d.failures.push(format!(
                            "{wname} stall bucket {bucket} shifted {:+.1} share points \
                             (limit {:.0}): {:.1}% -> {:.1}%",
                            shift * 100.0,
                            opts.max_bucket_shift * 100.0,
                            o * 100.0,
                            n * 100.0
                        ));
                    }
                }
            }
        }
        (a, b) if a.is_some() || b.is_some() => {
            d.lines.push(
                "cycle_accounting: absent or null on one side (obs-off \
                 measurement?), bucket gate skipped"
                    .to_string(),
            );
        }
        _ => {}
    }

    // Critical-path class shares: the same absolute-shift gate. This is
    // the "did the broadcast land back on the critical path?" check —
    // a run that is as fast as before but whose communication share
    // grew past the threshold fails. The `dropped` counter only warns:
    // segment flushing keeps it at 0 on current producers, but old
    // pre-segmentation baselines carry real drop counts.
    match (base.get("critpath"), new.get("critpath")) {
        (Some(Value::Obj(bw)), Some(Value::Obj(nw))) => {
            for (wname, bshares) in bw {
                let Some((_, nshares)) = nw.iter().find(|(k, _)| k == wname) else {
                    d.failures.push(format!(
                        "critpath {wname}: missing from current document (truncated output?)"
                    ));
                    continue;
                };
                let (Value::Obj(bs), Value::Obj(ns)) = (bshares, nshares) else {
                    continue;
                };
                let share = |m: &[(String, Value)], k: &str| {
                    m.iter().find(|(name, _)| name == k).and_then(|(_, v)| v.as_f64())
                };
                for class in ["compute", "communication", "structural", "frontend"] {
                    let (Some(o), Some(n)) = (share(bs, class), share(ns, class)) else {
                        continue;
                    };
                    let shift = n - o;
                    if shift.abs() > 1e-4 {
                        d.lines.push(format!(
                            "{wname} critpath {class}: {:.1}% -> {:.1}% of the critical path",
                            o * 100.0,
                            n * 100.0
                        ));
                    }
                    if shift.abs() > opts.max_bucket_shift {
                        d.failures.push(format!(
                            "{wname} critical-path {class} share shifted {:+.1} share \
                             points (limit {:.0}): {:.1}% -> {:.1}%",
                            shift * 100.0,
                            opts.max_bucket_shift * 100.0,
                            o * 100.0,
                            n * 100.0
                        ));
                    }
                }
                if let Some(dropped) = share(ns, "dropped") {
                    if dropped > 0.0 {
                        d.lines.push(format!(
                            "warning: {wname} critical-path window dropped {dropped:.0} \
                             retirements (wraparound); attribution covers the tail only"
                        ));
                    }
                }
            }
        }
        (a, b) if a.is_some() || b.is_some() => {
            d.lines.push(
                "critpath: absent or null on one side (obs-off measurement or \
                 pre-critpath baseline), share gate skipped"
                    .to_string(),
            );
        }
        _ => {}
    }

    // Timeline phases: warn-only on *content*. Whole-run bucket shares
    // can stay flat while one phase trades committing for stall and
    // another trades back; comparing phases index-by-index surfaces
    // that. Phase shifts never fail — boundaries legitimately move with
    // any timing change, so a hard gate would be all noise — but a
    // whole workload entry vanishing from a present section is still a
    // truncation failure like everywhere else.
    match (base.get("timeline"), new.get("timeline")) {
        (Some(Value::Obj(bw)), Some(Value::Obj(nw))) => {
            for (wname, bt) in bw {
                let Some((_, nt)) = nw.iter().find(|(k, _)| k == wname) else {
                    d.failures.push(format!(
                        "timeline {wname}: missing from current document (truncated output?)"
                    ));
                    continue;
                };
                let phases = |v: &Value| -> Vec<(String, f64)> {
                    v.get("phases")
                        .and_then(Value::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|p| {
                            Some((
                                p.get("dominant")?.as_str()?.to_string(),
                                p.get("dominant_millis")?.as_f64()?,
                            ))
                        })
                        .collect()
                };
                let (bp, np) = (phases(bt), phases(nt));
                if bp.len() != np.len() {
                    d.lines.push(format!(
                        "warning: {wname} phase count changed: {} -> {}",
                        bp.len(),
                        np.len()
                    ));
                }
                for (i, ((bdom, bmil), (ndom, nmil))) in bp.iter().zip(&np).enumerate() {
                    if bdom != ndom {
                        d.lines.push(format!(
                            "warning: {wname} phase {i} dominant bucket changed: \
                             {bdom} -> {ndom}"
                        ));
                    } else if (nmil - bmil).abs() > opts.max_bucket_shift * 1000.0 {
                        d.lines.push(format!(
                            "warning: {wname} phase {i} {bdom} share shifted \
                             {:+.1} points: {:.1}% -> {:.1}%",
                            (nmil - bmil) / 10.0,
                            bmil / 10.0,
                            nmil / 10.0
                        ));
                    }
                }
            }
        }
        (a, b) if a.is_some() || b.is_some() => {
            d.lines.push(
                "timeline: absent or null on one side (obs-off measurement or \
                 pre-timeline baseline), phase warnings skipped"
                    .to_string(),
            );
        }
        _ => {}
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_obs::json::parse;

    fn throughput_doc(combined: f64, compress: f64, committing: f64) -> Value {
        parse(&format!(
            r#"{{
              "workloads": [
                {{"name": "compress", "committed": 1, "insts_per_sec": {compress}}}
              ],
              "combined_insts_per_sec": {combined},
              "cycle_accounting": {{
                "compress": {{"committing": {committing}, "idle": {}}}
              }}
            }}"#,
            1.0 - committing
        ))
        .unwrap()
    }

    #[test]
    fn identical_throughput_docs_pass() {
        let a = throughput_doc(1000.0, 1000.0, 0.5);
        let d = diff_documents(&a, &a, DiffOptions::default()).unwrap();
        assert!(d.passed(), "{:?}", d.failures);
        assert!(!d.lines.is_empty());
    }

    #[test]
    fn ten_percent_drop_fails_default_gate() {
        let base = throughput_doc(1000.0, 1000.0, 0.5);
        let new = throughput_doc(900.0, 900.0, 0.5);
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(!d.passed());
        assert!(d.failures.iter().any(|f| f.contains("combined_insts_per_sec")));
    }

    #[test]
    fn small_drop_passes_default_gate() {
        let base = throughput_doc(1000.0, 1000.0, 0.5);
        let new = throughput_doc(950.0, 950.0, 0.5);
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(d.passed(), "{:?}", d.failures);
    }

    #[test]
    fn bucket_shift_fails_gate() {
        let base = throughput_doc(1000.0, 1000.0, 0.5);
        let new = throughput_doc(1000.0, 1000.0, 0.3);
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(!d.passed());
        assert!(d.failures.iter().any(|f| f.contains("committing")));
    }

    fn critpath_doc(comm: f64, dropped: u64) -> Value {
        parse(&format!(
            r#"{{
              "workloads": [
                {{"name": "compress", "committed": 1, "insts_per_sec": 1000}}
              ],
              "combined_insts_per_sec": 1000,
              "critpath": {{
                "compress": {{"compute": {}, "communication": {comm},
                              "structural": 0.0, "frontend": 0.0,
                              "attributed_cycles": 1000, "dropped": {dropped},
                              "comm_edges": 4, "comm_edge_max": 40}}
              }}
            }}"#,
            1.0 - comm
        ))
        .unwrap()
    }

    #[test]
    fn critpath_communication_shift_fails_gate() {
        let base = critpath_doc(0.10, 0);
        let new = critpath_doc(0.25, 0);
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(!d.passed());
        assert!(d
            .failures
            .iter()
            .any(|f| f.contains("critical-path communication share shifted")));
    }

    #[test]
    fn critpath_small_shift_passes_and_dropped_only_warns() {
        let base = critpath_doc(0.10, 0);
        let new = critpath_doc(0.12, 7);
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(d.passed(), "{:?}", d.failures);
        assert!(d.lines.iter().any(|l| l.contains("warning") && l.contains("dropped 7")));
    }

    #[test]
    fn missing_critpath_baseline_is_skipped_not_failed() {
        // Baselines committed before the critpath section existed must
        // still diff cleanly against instrumented runs.
        let base = throughput_doc(1000.0, 1000.0, 0.5);
        let new = critpath_doc(0.10, 0);
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(d.passed(), "{:?}", d.failures);
        assert!(d.lines.iter().any(|l| l.contains("share gate skipped")));
    }

    #[test]
    fn null_cycle_accounting_is_skipped_not_failed() {
        let base = throughput_doc(1000.0, 1000.0, 0.5);
        let new = parse(
            r#"{"workloads": [{"name": "compress", "insts_per_sec": 1000}],
                "combined_insts_per_sec": 1000,
                "cycle_accounting": null}"#,
        )
        .unwrap();
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(d.passed(), "{:?}", d.failures);
        assert!(d.lines.iter().any(|l| l.contains("bucket gate skipped")));
    }

    fn timeline_doc(phase0_dom: &str, phase0_millis: f64) -> Value {
        parse(&format!(
            r#"{{
              "workloads": [
                {{"name": "compress", "committed": 1, "insts_per_sec": 1000}}
              ],
              "combined_insts_per_sec": 1000,
              "timeline": {{
                "compress": {{"interval_cycles": 4096, "intervals": 12, "dropped": 0,
                  "phases": [
                    {{"start": 0, "cycles": 32768, "ipc_millis": 900,
                      "dominant": "{phase0_dom}", "dominant_millis": {phase0_millis}}},
                    {{"start": 32768, "cycles": 16384, "ipc_millis": 400,
                      "dominant": "bshr-wait-remote", "dominant_millis": 450}}
                  ]}}
              }}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn timeline_phase_dominant_change_warns_but_passes() {
        let base = timeline_doc("committing", 700.0);
        let new = timeline_doc("lsq-full", 600.0);
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(d.passed(), "phase shifts must never fail the gate: {:?}", d.failures);
        assert!(d
            .lines
            .iter()
            .any(|l| l.contains("warning") && l.contains("dominant bucket changed")));
    }

    #[test]
    fn timeline_phase_share_shift_warns_but_passes() {
        let base = timeline_doc("committing", 700.0);
        let new = timeline_doc("committing", 450.0);
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(d.passed(), "{:?}", d.failures);
        assert!(d.lines.iter().any(|l| l.contains("warning") && l.contains("share shifted")));
    }

    #[test]
    fn timeline_small_phase_shift_is_silent() {
        let base = timeline_doc("committing", 700.0);
        let new = timeline_doc("committing", 650.0);
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(d.passed(), "{:?}", d.failures);
        assert!(!d.lines.iter().any(|l| l.contains("phase")), "{:?}", d.lines);
    }

    #[test]
    fn missing_timeline_baseline_is_skipped_not_failed() {
        let base = throughput_doc(1000.0, 1000.0, 0.5);
        let new = timeline_doc("committing", 700.0);
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(d.passed(), "{:?}", d.failures);
        assert!(d.lines.iter().any(|l| l.contains("phase warnings skipped")));
    }

    #[test]
    fn v1_reports_gate_on_throughput_numbers() {
        let doc = |ipc: f64| {
            parse(&format!(
                r#"{{"schema": "ds-bench-result/v1", "binary": "x", "budget": null,
                    "tables": [{{"title": "t", "headers": ["a"], "rows": [["1.0"]]}}],
                    "numbers": {{"mean_ipc": {ipc}, "note_count": 3}},
                    "notes": []}}"#
            ))
            .unwrap()
        };
        let d = diff_documents(&doc(2.0), &doc(1.5), DiffOptions::default()).unwrap();
        assert!(!d.passed());
        assert!(d.failures.iter().any(|f| f.contains("mean_ipc")));
        // Lower note_count is not a failure: not higher-is-better.
        let d2 = diff_documents(&doc(2.0), &doc(2.0), DiffOptions::default()).unwrap();
        assert!(d2.passed());
    }

    #[test]
    fn truncated_workload_list_fails_not_warns() {
        // A torn write that drops a workload entry (but still parses)
        // must fail the gate, not shrink quietly into a smaller doc.
        let base = throughput_doc(1000.0, 1000.0, 0.5);
        let new = parse(
            r#"{"workloads": [], "combined_insts_per_sec": 1000,
                "cycle_accounting": {"compress": {"committing": 0.5, "idle": 0.5}}}"#,
        )
        .unwrap();
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(!d.passed());
        assert!(
            d.failures.iter().any(|f| f.contains("compress insts_per_sec")
                && f.contains("missing on one side")),
            "{:?}",
            d.failures
        );
    }

    #[test]
    fn truncated_cycle_accounting_entry_fails_not_warns() {
        // Section present on both sides, but the candidate lost one
        // workload's bucket block mid-document.
        let base = throughput_doc(1000.0, 1000.0, 0.5);
        let new = parse(
            r#"{"workloads": [
                  {"name": "compress", "committed": 1, "insts_per_sec": 1000}],
                "combined_insts_per_sec": 1000,
                "cycle_accounting": {}}"#,
        )
        .unwrap();
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(!d.passed());
        assert!(
            d.failures
                .iter()
                .any(|f| f.contains("cycle_accounting compress") && f.contains("truncated")),
            "{:?}",
            d.failures
        );
    }

    #[test]
    fn truncated_v1_numbers_fail_not_warn() {
        let base = parse(
            r#"{"schema": "ds-bench-result/v1", "tables": [],
                "numbers": {"mean_ipc": 2.0}, "notes": []}"#,
        )
        .unwrap();
        let new = parse(
            r#"{"schema": "ds-bench-result/v1", "tables": [],
                "numbers": {}, "notes": []}"#,
        )
        .unwrap();
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(!d.passed());
        assert!(
            d.failures.iter().any(|f| f.contains("mean_ipc") && f.contains("truncated")),
            "{:?}",
            d.failures
        );
    }

    #[test]
    fn truncated_v1_table_fails_not_warns() {
        let base = parse(
            r#"{"schema": "ds-bench-result/v1",
                "tables": [{"title": "t", "headers": ["a"], "rows": [["1.0"]]}],
                "numbers": {}, "notes": []}"#,
        )
        .unwrap();
        let new = parse(
            r#"{"schema": "ds-bench-result/v1", "tables": [],
                "numbers": {}, "notes": []}"#,
        )
        .unwrap();
        let d = diff_documents(&base, &new, DiffOptions::default()).unwrap();
        assert!(!d.passed());
        assert!(
            d.failures.iter().any(|f| f.contains("table \"t\"") && f.contains("truncated")),
            "{:?}",
            d.failures
        );
    }

    #[test]
    fn mismatched_shapes_error() {
        let v1 = parse(r#"{"schema": "ds-bench-result/v1", "tables": []}"#).unwrap();
        let tp = throughput_doc(1.0, 1.0, 0.5);
        assert!(diff_documents(&v1, &tp, DiffOptions::default()).is_err());
    }
}
