//! Figure 8 parameter sweeps.
//!
//! The paper varies, one at a time around the baseline: data-cache
//! size, memory access time, global-bus clock divisor, global-bus
//! width, and RUU entries — for go and compress, across all five
//! systems.

use crate::{baseline_config, Budget};
use ds_core::{DsConfig, DsSystem, PerfectSystem, TraditionalConfig, TraditionalSystem};
use ds_workloads::Workload;

/// Which knob a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// D-cache capacity in bytes.
    CacheSize(u64),
    /// Local memory access time in cycles.
    MemoryAccess(u64),
    /// Off-chip bus clock divisor (core cycles per bus cycle).
    BusClock(u64),
    /// Off-chip bus width in bytes.
    BusWidth(u64),
    /// RUU entries (LSQ stays at half).
    RuuEntries(usize),
}

impl Knob {
    /// Applies the knob to a configuration.
    pub fn apply(self, config: &mut DsConfig) {
        match self {
            Knob::CacheSize(bytes) => {
                config.dcache.size_bytes = bytes;
            }
            Knob::MemoryAccess(cycles) => config.memory.access_cycles = cycles,
            Knob::BusClock(div) => config.bus.clock_divisor = div,
            Knob::BusWidth(bytes) => config.bus.width_bytes = bytes,
            Knob::RuuEntries(n) => {
                config.core.ruu_entries = n;
                config.core.lsq_entries = (n / 2).max(1);
            }
        }
    }

    /// Display label.
    pub fn label(self) -> String {
        match self {
            Knob::CacheSize(b) => format!("{}KB", b / 1024),
            Knob::MemoryAccess(c) => format!("{c}cy"),
            Knob::BusClock(d) => format!("/{d}"),
            Knob::BusWidth(b) => format!("{b}B"),
            Knob::RuuEntries(n) => format!("{n}"),
        }
    }
}

/// The paper's five sweep axes with our parameter points.
pub fn figure8_axes() -> Vec<(&'static str, Vec<Knob>)> {
    vec![
        (
            "dcache size",
            [4096u64, 8192, 16384, 32768, 65536].map(Knob::CacheSize).to_vec(),
        ),
        (
            "memory access time",
            [4u64, 8, 16, 32, 64].map(Knob::MemoryAccess).to_vec(),
        ),
        ("bus clock divisor", [2u64, 5, 10, 20, 40].map(Knob::BusClock).to_vec()),
        ("bus width", [2u64, 4, 8, 16, 32].map(Knob::BusWidth).to_vec()),
        (
            "RUU entries",
            [32usize, 64, 128, 256, 512].map(Knob::RuuEntries).to_vec(),
        ),
    ]
}

/// The five IPCs at one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Perfect data cache.
    pub perfect: f64,
    /// DataScalar, 2 nodes.
    pub ds2: f64,
    /// DataScalar, 4 nodes.
    pub ds4: f64,
    /// Traditional, 1/2 on-chip.
    pub trad_half: f64,
    /// Traditional, 1/4 on-chip.
    pub trad_quarter: f64,
}

/// Evaluates all five systems at one knob setting.
pub fn sweep_point(w: &Workload, knob: Knob, budget: Budget) -> SweepPoint {
    let prog = (w.build)(budget.scale);
    let run_ds = |nodes: usize| {
        let mut c = baseline_config(nodes, budget.max_insts);
        knob.apply(&mut c);
        DsSystem::new(c, &prog).run().expect("runs").ipc()
    };
    let run_trad = |nodes: usize| {
        let mut c = baseline_config(nodes, budget.max_insts);
        knob.apply(&mut c);
        TraditionalSystem::new(&TraditionalConfig { base: c }, &prog)
            .run()
            .expect("runs")
            .ipc()
    };
    let perfect = {
        let mut c = baseline_config(1, budget.max_insts);
        knob.apply(&mut c);
        PerfectSystem::new(&c, &prog).run().expect("runs").ipc()
    };
    SweepPoint {
        perfect,
        ds2: run_ds(2),
        ds4: run_ds(4),
        trad_half: run_trad(2),
        trad_quarter: run_trad(4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_workloads::by_name;

    #[test]
    fn knobs_apply() {
        let mut c = baseline_config(2, 1000);
        Knob::CacheSize(4096).apply(&mut c);
        assert_eq!(c.dcache.size_bytes, 4096);
        Knob::MemoryAccess(32).apply(&mut c);
        assert_eq!(c.memory.access_cycles, 32);
        Knob::BusClock(20).apply(&mut c);
        assert_eq!(c.bus.clock_divisor, 20);
        Knob::BusWidth(16).apply(&mut c);
        assert_eq!(c.bus.width_bytes, 16);
        Knob::RuuEntries(64).apply(&mut c);
        assert_eq!(c.core.ruu_entries, 64);
        assert_eq!(c.core.lsq_entries, 32);
    }

    #[test]
    fn axes_cover_the_papers_five() {
        let axes = figure8_axes();
        assert_eq!(axes.len(), 5);
        assert!(axes.iter().all(|(_, pts)| pts.len() == 5));
    }

    #[test]
    fn slower_memory_hurts_everyone() {
        let w = by_name("go").unwrap();
        let b = Budget::quick();
        let fast = sweep_point(&w, Knob::MemoryAccess(4), b);
        let slow = sweep_point(&w, Knob::MemoryAccess(64), b);
        assert!(slow.ds2 <= fast.ds2 * 1.02);
        assert!(slow.trad_half <= fast.trad_half * 1.02);
    }
}
