//! Machine-readable results: the `--json <path>` flag every experiment
//! binary supports.
//!
//! Each binary prints its tables to stdout exactly as before (the text
//! output is golden in several tests and must stay byte-identical) and,
//! when `--json <path>` is given, *additionally* writes a versioned
//! JSON document to `path`. The schema, `ds-bench-result/v1`, is
//! documented in `docs/observability.md`: table cells are the exact
//! strings of the text output (no re-rounding, so text and JSON can
//! never disagree), plus free-form named numbers, notes, and — when the
//! binary runs instrumented (`--features obs`) — labelled critical-path
//! edge-class attributions under `critpath`.

use crate::Budget;
use ds_obs::{CritPathReport, EdgeClass, StallBucket, TimelineReport};
use ds_stats::Table;

/// The schema identifier emitted in every document.
pub const SCHEMA: &str = "ds-bench-result/v1";

/// One labelled critical-path attribution entry: the per-class shares
/// and window health of a [`CritPathReport`], flattened for the JSON
/// `critpath` member. Shares are of the *attributed* span, so they sum
/// to 1.0 whenever any cycles were attributed.
#[derive(Debug, Clone, Copy)]
struct CritEntry {
    shares: [f64; ds_obs::critpath::EDGE_CLASS_COUNT],
    attributed_cycles: u64,
    dropped: u64,
    comm_edges: u64,
    comm_edge_max: u64,
}

/// A machine-readable mirror of one binary's output.
#[derive(Debug, Clone)]
pub struct Report {
    binary: &'static str,
    budget: Option<Budget>,
    tables: Vec<(String, Table)>,
    numbers: Vec<(String, f64)>,
    notes: Vec<String>,
    critpath: Vec<(String, CritEntry)>,
    timeline: Vec<(String, TimelineReport)>,
}

impl Report {
    /// Starts a report for `binary` (the `src/bin` file stem).
    pub fn new(binary: &'static str) -> Self {
        Report {
            binary,
            budget: None,
            tables: Vec::new(),
            numbers: Vec::new(),
            notes: Vec::new(),
            critpath: Vec::new(),
            timeline: Vec::new(),
        }
    }

    /// Records the instruction budget the run used.
    pub fn budget(&mut self, b: Budget) -> &mut Self {
        self.budget = Some(b);
        self
    }

    /// Adds a titled table — pass the same [`Table`] the binary prints.
    pub fn table(&mut self, title: &str, t: &Table) -> &mut Self {
        self.tables.push((title.to_string(), t.clone()));
        self
    }

    /// Adds a named scalar (derived metrics like means or ratios).
    pub fn number(&mut self, name: &str, value: f64) -> &mut Self {
        self.numbers.push((name.to_string(), value));
        self
    }

    /// Adds a free-form note (provenance, caveats).
    pub fn note(&mut self, text: &str) -> &mut Self {
        self.notes.push(text.to_string());
        self
    }

    /// Adds one labelled critical-path attribution (e.g. `"compress/ds2"`)
    /// to the document's `critpath` member. Pass the
    /// [`CritPathReport`] off `RunResult::metrics`; obs-off builds have
    /// no metrics, so the member simply stays empty there.
    pub fn critpath(&mut self, label: &str, r: &CritPathReport) -> &mut Self {
        let mut shares = [0.0; ds_obs::critpath::EDGE_CLASS_COUNT];
        for (i, c) in EdgeClass::ALL.iter().enumerate() {
            shares[i] = r.class_share(*c);
        }
        let (mut comm_edges, mut comm_edge_max) = (0u64, 0u64);
        for n in &r.nodes {
            comm_edges += n.comm_edges;
            comm_edge_max = comm_edge_max.max(n.comm_edge_max);
        }
        self.critpath.push((
            label.to_string(),
            CritEntry {
                shares,
                attributed_cycles: r.attributed_total(),
                dropped: r.dropped_total(),
                comm_edges,
                comm_edge_max,
            },
        ));
        self
    }

    /// Adds one labelled interval timeline (e.g. `"compress/ds2"`) to
    /// the document's `timeline` member. Pass the [`TimelineReport`]
    /// off `RunResult::metrics`; obs-off builds have no metrics, so the
    /// member simply stays empty there.
    pub fn timeline(&mut self, label: &str, t: &TimelineReport) -> &mut Self {
        self.timeline.push((label.to_string(), t.clone()));
        self
    }

    /// Renders the document.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        push_str_field(&mut out, "schema", SCHEMA);
        out.push(',');
        push_str_field(&mut out, "binary", self.binary);
        out.push(',');
        out.push_str("\"budget\":");
        match self.budget {
            Some(b) => {
                out.push_str(&format!(
                    "{{\"max_insts\":{},\"scale\":\"{:?}\"}}",
                    b.max_insts, b.scale
                ));
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"tables\":[");
        for (i, (title, t)) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_str_field(&mut out, "title", title);
            out.push_str(",\"headers\":[");
            push_str_list(&mut out, t.headers());
            out.push_str("],\"rows\":[");
            for (j, row) in t.rows().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                push_str_list(&mut out, row);
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("],\"numbers\":{");
        for (i, (name, v)) in self.numbers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape(name));
            out.push(':');
            out.push_str(&fmt_f64(*v));
        }
        out.push_str("},\"notes\":[");
        push_str_list(&mut out, &self.notes);
        out.push_str("],\"critpath\":{");
        for (i, (label, e)) in self.critpath.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape(label));
            out.push_str(":{");
            for (j, c) in EdgeClass::ALL.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{:.6}", c.label(), e.shares[j]));
            }
            out.push_str(&format!(
                ",\"attributed_cycles\":{},\"dropped\":{},\"comm_edges\":{},\
                 \"comm_edge_max\":{}}}",
                e.attributed_cycles, e.dropped, e.comm_edges, e.comm_edge_max
            ));
        }
        out.push_str("},\"timeline\":{");
        for (i, (label, t)) in self.timeline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape(label));
            out.push(':');
            push_timeline(&mut out, t);
        }
        out.push_str("}}");
        out
    }

    /// Writes the document to the path given by `--json <path>` on the
    /// command line, if any. Progress goes to stderr so stdout stays
    /// byte-identical to a run without the flag.
    ///
    /// # Panics
    ///
    /// Panics when the path cannot be written — a silently dropped
    /// result file is worse than a failed run.
    pub fn write_if_requested(&self) {
        if let Some(path) = flag_value("--json") {
            std::fs::write(&path, self.render())
                .unwrap_or_else(|e| panic!("cannot write --json {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}

/// The operand of `flag` in argv (`--json out.json` → `Some("out.json")`).
pub fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Renders one [`TimelineReport`] as a JSON object. Interval rows are
/// compact numeric arrays in the fixed layout
/// `[start, len, committed, sends, arrives, bshr_occ_hw, skipped,
/// bucket0..bucket10]` (18 numbers; bucket order is
/// [`StallBucket::ALL`]) — documented in docs/observability.md and
/// checked by `obs_validate`.
fn push_timeline(out: &mut String, t: &TimelineReport) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"interval_cycles\":{},\"nodes\":[", t.interval_cycles);
    for (i, node) in t.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"dropped\":{},\"intervals\":[", node.dropped);
        for (j, s) in node.intervals.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "[{},{},{},{},{},{},{}",
                s.start, s.len, s.committed, s.sends, s.arrives, s.bshr_occ_hw, s.skipped
            );
            for b in StallBucket::ALL {
                let _ = write!(out, ",{}", s.buckets[b as usize]);
            }
            out.push(']');
        }
        out.push_str("],\"phases\":[");
        for (j, p) in node.phases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let (dom, dom_millis) = p.dominant();
            let _ = write!(
                out,
                "{{\"start\":{},\"cycles\":{},\"intervals\":{},\"committed\":{},\
                 \"ipc_millis\":{},\"dominant\":\"{}\",\"dominant_millis\":{},\"buckets\":[",
                p.start,
                p.cycles,
                p.intervals,
                p.committed,
                p.ipc_millis(),
                dom.label(),
                dom_millis
            );
            for (k, b) in p.buckets.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

/// JSON numbers must be finite; non-finite values (0-cycle IPCs and the
/// like) degrade to null.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push_str(&escape(key));
    out.push(':');
    out.push_str(&escape(val));
}

fn push_str_list<S: AsRef<str>>(out: &mut String, items: &[S]) {
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(s.as_ref()));
    }
}

/// Escapes a string as a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;

    #[test]
    fn renders_valid_parseable_json() {
        let mut t = Table::new(&["bench", "ipc"]);
        t.row(&["compress", "1.23"]);
        let mut r = Report::new("unit_test");
        r.budget(Budget::quick())
            .table("Figure 7", &t)
            .number("mean_ipc", 1.23)
            .note("one \"quoted\" note\nwith a newline");
        let doc = ds_obs::json::parse(&r.render()).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        assert_eq!(doc.get("binary").and_then(|v| v.as_str()), Some("unit_test"));
        let tables = doc.get("tables").and_then(|v| v.as_array()).unwrap();
        assert_eq!(tables.len(), 1);
        let rows = tables[0].get("rows").and_then(|v| v.as_array()).unwrap();
        let cells = rows[0].as_array().unwrap();
        assert_eq!(cells[0].as_str(), Some("compress"));
        assert_eq!(cells[1].as_str(), Some("1.23"));
        assert_eq!(
            doc.get("numbers").unwrap().get("mean_ipc").and_then(|v| v.as_f64()),
            Some(1.23)
        );
    }

    #[test]
    fn table_cells_mirror_text_output() {
        // The JSON rows are the exact strings `render` prints.
        let mut t = Table::new(&["name", "v"]);
        t.row(&["a", "0.50"]);
        let text = t.render();
        assert!(text.contains("0.50"));
        let mut r = Report::new("unit_test");
        r.table("t", &t);
        assert!(r.render().contains("\"0.50\""));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut r = Report::new("unit_test");
        r.number("bad", f64::NAN);
        let doc = ds_obs::json::parse(&r.render()).expect("valid JSON");
        assert!(doc.get("numbers").unwrap().get("bad").unwrap().as_f64().is_none());
    }

    #[test]
    fn critpath_member_is_empty_without_entries_and_typed_with() {
        let r = Report::new("unit_test");
        let doc = ds_obs::json::parse(&r.render()).expect("valid JSON");
        // Always present, so obs-off and obs-on documents have one shape.
        assert!(matches!(doc.get("critpath"), Some(ds_obs::json::Value::Obj(m)) if m.is_empty()));

        // A window with one remote-fill instruction: communication must
        // carry a nonzero share and the shares must survive the JSON trip.
        let mut w = ds_obs::CritWindow::with_capacity(4);
        w.edge_retire(ds_obs::CritNode {
            pc: 0x40,
            dispatch: 0,
            ready: 2,
            issue: 2,
            complete: 30,
            commit: 31,
            sent: 4,
            producer_back: 0,
            fill: ds_obs::FillKind::RemoteFill,
        });
        let mut cp = ds_obs::CritPathReport::default();
        cp.nodes.push(w.path_report());
        let mut r = Report::new("unit_test");
        r.critpath("compress/ds2", &cp);
        let doc = ds_obs::json::parse(&r.render()).expect("valid JSON");
        let entry = doc.get("critpath").unwrap().get("compress/ds2").unwrap();
        let share = |k: &str| entry.get(k).and_then(|v| v.as_f64()).unwrap();
        let sum =
            share("compute") + share("communication") + share("structural") + share("frontend");
        assert!((sum - 1.0).abs() < 1e-6, "class shares must sum to 1, got {sum}");
        assert!(share("communication") > 0.0);
        assert_eq!(entry.get("comm_edges").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(entry.get("dropped").and_then(|v| v.as_f64()), Some(0.0));
    }

    #[test]
    fn timeline_member_is_empty_without_entries_and_typed_with() {
        let r = Report::new("unit_test");
        let doc = ds_obs::json::parse(&r.render()).expect("valid JSON");
        // Same always-present contract as `critpath`.
        assert!(matches!(doc.get("timeline"), Some(ds_obs::json::Value::Obj(m)) if m.is_empty()));

        // One full interval: 4096 committing cycles. The row layout is
        // the fixed 18-number contract obs_validate re-checks.
        let mut ring = ds_obs::IntervalRing::with_capacity(4);
        let mut acct = ds_obs::CycleAccount::default();
        for _ in 0..ds_obs::SAMPLE_INTERVAL {
            acct.charge(ds_obs::StallBucket::Committing);
        }
        ring.note_occ(3);
        ring.sample_close(ds_obs::SAMPLE_INTERVAL, 2048, 7, 5, &acct);
        let t = TimelineReport { interval_cycles: ds_obs::SAMPLE_INTERVAL, nodes: vec![ring.report()] };
        let mut r = Report::new("unit_test");
        r.timeline("compress/ds2", &t);
        let doc = ds_obs::json::parse(&r.render()).expect("valid JSON");
        let entry = doc.get("timeline").unwrap().get("compress/ds2").unwrap();
        assert_eq!(
            entry.get("interval_cycles").and_then(|v| v.as_f64()),
            Some(ds_obs::SAMPLE_INTERVAL as f64)
        );
        let nodes = entry.get("nodes").and_then(|v| v.as_array()).unwrap();
        assert_eq!(nodes.len(), 1);
        let rows = nodes[0].get("intervals").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 1);
        let row = rows[0].as_array().unwrap();
        assert_eq!(row.len(), 18, "interval rows are 18 numbers");
        assert_eq!(row[0].as_f64(), Some(0.0)); // start
        assert_eq!(row[1].as_f64(), Some(ds_obs::SAMPLE_INTERVAL as f64)); // len
        assert_eq!(row[2].as_f64(), Some(2048.0)); // committed
        assert_eq!(row[5].as_f64(), Some(3.0)); // bshr_occ_hw
        // Bucket columns sum to the interval length.
        let bucket_sum: f64 = row[7..].iter().map(|v| v.as_f64().unwrap()).sum();
        assert_eq!(bucket_sum, ds_obs::SAMPLE_INTERVAL as f64);
        let phases = nodes[0].get("phases").and_then(|v| v.as_array()).unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].get("dominant").and_then(|v| v.as_str()), Some("committing"));
        assert_eq!(phases[0].get("ipc_millis").and_then(|v| v.as_f64()), Some(500.0));
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("x\u{1}y"), "\"x\\u0001y\"");
    }
}
