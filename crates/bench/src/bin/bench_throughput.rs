//! Simulator throughput: committed instructions per wall-clock second.
//!
//! Runs the 2-node DataScalar timing simulation of `compress` and `go`
//! at the full experiment budget, times each run, and writes a JSON
//! summary (default `BENCH_throughput.json`, override with
//! `--out <path>`). The JSON also records the pre-overhaul engine's
//! throughput measured on the same machine at the same budget, so the
//! speedup of the hot-path work is tracked in-repo, and — when built
//! with `--features obs` — each workload's stall-bucket shares and
//! critical-path edge-class shares, so a change that keeps throughput
//! but moves cycles between buckets — or moves communication onto the
//! critical path — is visible. `--json <path>` additionally mirrors the
//! wall-clock counters (insts/s, cycles/s) in the common
//! `ds-bench-result/v1` schema, critpath section included. `--baseline
//! <path>` diffs the fresh measurement against a committed summary with
//! the same thresholds as `ds-report` and exits nonzero on a
//! regression. `--history <path>` appends the run as one versioned
//! JSONL row (schema `v: 1`, stall-bucket shares included), so
//! throughput over time stays queryable without diffing the snapshot
//! file's git history.
//!
//! Simulated *results* are pinned separately by `tests/golden_stats.rs`;
//! this binary only measures how fast the engine reaches them.

use std::time::Instant;

use ds_bench::regress::{diff_documents, DiffOptions};
use ds_bench::report::Report;
use ds_bench::{run_datascalar, Budget};
use ds_obs::StallBucket;
use ds_stats::Table;
use ds_workloads::by_name;

/// Combined committed-instructions-per-second of the engine before the
/// hot-path overhaul (this machine, release build, same workloads and
/// budget — see DESIGN.md "Performance engineering").
const PRE_OVERHAUL_BASELINE: f64 = 1_352_298.0;

const WORKLOADS: &[&str] = &["compress", "go"];
const TIMED_RUNS: u32 = 3;

/// Engine tag stamped into `--history` rows: which cycle loop produced
/// the numbers. Bump when the default engine changes materially.
const ENGINE: &str = "event-horizon";

struct Row {
    name: &'static str,
    committed: u64,
    cycles: u64,
    best_secs: f64,
    /// Machine-wide stall buckets (`None` when built without `obs`).
    account: Option<ds_obs::CycleAccount>,
    /// Critical-path edge-class attribution (`None` without `obs`).
    critpath: Option<ds_obs::CritPathReport>,
    /// Interval timeline + phase segmentation (`None` without `obs`).
    timeline: Option<ds_obs::TimelineReport>,
}

fn main() {
    let mut out_path = String::from("BENCH_throughput.json");
    let mut report_path = None;
    let mut baseline_path = None;
    let mut history_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            "--json" => report_path = Some(args.next().expect("--json takes a path")),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline takes a path")),
            "--history" => history_path = Some(args.next().expect("--history takes a path")),
            // Consumed via flag_value when --baseline diffs.
            "--max-drop" => {
                args.next().expect("--max-drop takes a number");
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let budget = Budget::full();
    let mut rows = Vec::new();
    for &name in WORKLOADS {
        let w = by_name(name).expect("registered workload");
        // Warm-up run (page in text, fill allocator pools), then the
        // timed runs; best-of keeps scheduler noise out.
        let warm = run_datascalar(&w, 2, budget);
        let mut best = f64::INFINITY;
        for _ in 0..TIMED_RUNS {
            let start = Instant::now();
            let r = run_datascalar(&w, 2, budget);
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(r.committed, warm.committed, "nondeterministic run");
            best = best.min(secs);
        }
        rows.push(Row {
            name,
            committed: warm.committed,
            cycles: warm.cycles,
            best_secs: best,
            account: warm.stall_totals(),
            critpath: warm.metrics.as_ref().map(|m| m.critpath.clone()),
            timeline: warm.metrics.as_ref().map(|m| m.timeline.clone()),
        });
        println!(
            "{name:<10} {} insts in {:.3}s  ({:.0} insts/s, {:.0} cycles/s)",
            warm.committed,
            best,
            warm.committed as f64 / best,
            warm.cycles as f64 / best
        );
    }

    let total_insts: u64 = rows.iter().map(|r| r.committed).sum();
    let total_cycles: u64 = rows.iter().map(|r| r.cycles).sum();
    let total_secs: f64 = rows.iter().map(|r| r.best_secs).sum();
    let combined = total_insts as f64 / total_secs;
    let combined_cycles = total_cycles as f64 / total_secs;
    let speedup = if PRE_OVERHAUL_BASELINE > 0.0 { combined / PRE_OVERHAUL_BASELINE } else { 0.0 };
    println!(
        "combined: {combined:.0} insts/s, {combined_cycles:.0} cycles/s  \
         ({speedup:.2}x pre-overhaul baseline)"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"2-node DataScalar timing simulation, release build\",\n");
    json.push_str(&format!(
        "  \"budget\": {{\"max_insts\": {}, \"scale\": \"{:?}\"}},\n",
        budget.max_insts, budget.scale
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"committed\": {}, \"cycles\": {}, \"seconds\": {:.6}, \
             \"insts_per_sec\": {:.0}, \"cycles_per_sec\": {:.0}}}{}\n",
            r.name,
            r.committed,
            r.cycles,
            r.best_secs,
            r.committed as f64 / r.best_secs,
            r.cycles as f64 / r.best_secs,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // Stall-bucket shares of total machine cycles per workload, so the
    // baseline diff can flag "same speed, different reason" changes.
    // `null` in obs-off builds (no cycle accounting to report).
    if rows.iter().all(|r| r.account.is_some()) {
        json.push_str("  \"cycle_accounting\": {\n");
        for (i, r) in rows.iter().enumerate() {
            let acct = r.account.as_ref().expect("checked above");
            json.push_str(&format!("    \"{}\": {{", r.name));
            for (j, b) in StallBucket::ALL.iter().enumerate() {
                json.push_str(&format!(
                    "{}\"{}\": {:.6}",
                    if j == 0 { "" } else { ", " },
                    b.label(),
                    acct.share(*b)
                ));
            }
            json.push_str(&format!("}}{}\n", if i + 1 < rows.len() { "," } else { "" }));
        }
        json.push_str("  },\n");
    } else {
        json.push_str("  \"cycle_accounting\": null,\n");
    }
    // Critical-path edge-class shares per workload: what fraction of the
    // end-to-end dependence path is compute vs. communication vs.
    // structural vs. frontend. Gated by `ds-report` on absolute shift;
    // `dropped` (window wraparound) only warns. `null` in obs-off builds.
    if rows.iter().all(|r| r.critpath.is_some()) {
        use ds_obs::EdgeClass;
        json.push_str("  \"critpath\": {\n");
        for (i, r) in rows.iter().enumerate() {
            let cp = r.critpath.as_ref().expect("checked above");
            json.push_str(&format!("    \"{}\": {{", r.name));
            for (j, c) in EdgeClass::ALL.iter().enumerate() {
                json.push_str(&format!(
                    "{}\"{}\": {:.6}",
                    if j == 0 { "" } else { ", " },
                    c.label(),
                    cp.class_share(*c)
                ));
            }
            json.push_str(&format!(
                ", \"attributed_cycles\": {}, \"dropped\": {}}}{}\n",
                cp.attributed_total(),
                cp.dropped_total(),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  },\n");
    } else {
        json.push_str("  \"critpath\": null,\n");
    }
    // Timeline summary per workload: the machine-merged interval count
    // plus the segmented phases (start, length, IPC, dominant stall and
    // its share in millis). Additive to the snapshot schema; `null` in
    // obs-off builds. `ds-report` warns when a phase's dominant bucket
    // share shifts even if the whole-run shares stay put.
    if rows.iter().all(|r| r.timeline.is_some()) {
        json.push_str("  \"timeline\": {\n");
        for (i, r) in rows.iter().enumerate() {
            let t = r.timeline.as_ref().expect("checked above");
            let merged = t.merged();
            json.push_str(&format!(
                "    \"{}\": {{\"interval_cycles\": {}, \"intervals\": {}, \"dropped\": {}, \
                 \"phases\": [",
                r.name,
                t.interval_cycles,
                merged.intervals.len(),
                merged.dropped
            ));
            for (j, p) in merged.phases.iter().enumerate() {
                let (dom, dom_millis) = p.dominant();
                json.push_str(&format!(
                    "{}{{\"start\": {}, \"cycles\": {}, \"ipc_millis\": {}, \
                     \"dominant\": \"{}\", \"dominant_millis\": {}}}",
                    if j == 0 { "" } else { ", " },
                    p.start,
                    p.cycles,
                    p.ipc_millis(),
                    dom.label(),
                    dom_millis
                ));
            }
            json.push_str(&format!("]}}{}\n", if i + 1 < rows.len() { "," } else { "" }));
        }
        json.push_str("  },\n");
    } else {
        json.push_str("  \"timeline\": null,\n");
    }
    json.push_str(&format!("  \"combined_insts_per_sec\": {combined:.0},\n"));
    json.push_str(&format!("  \"combined_cycles_per_sec\": {combined_cycles:.0},\n"));
    json.push_str(&format!(
        "  \"pre_overhaul_insts_per_sec\": {PRE_OVERHAUL_BASELINE:.0},\n"
    ));
    json.push_str(&format!("  \"speedup_vs_pre_overhaul\": {speedup:.2}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write JSON");
    println!("wrote {out_path}");

    // `--history` appends this measurement as one self-contained JSONL
    // row. Appending before the `--baseline` gate is deliberate: a run
    // that regresses still lands in the history, which is exactly the
    // run worth being able to find later. `v` versions the row schema
    // so future fields don't break readers of old rows.
    if let Some(path) = history_path {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut row = format!(
            "{{\"v\": 1, \"unix_time\": {unix_time}, \"engine\": \"{ENGINE}\", \
             \"budget\": {{\"max_insts\": {}, \"scale\": \"{:?}\"}}, \"workloads\": [",
            budget.max_insts, budget.scale
        );
        for (i, r) in rows.iter().enumerate() {
            row.push_str(&format!(
                "{}{{\"name\": \"{}\", \"insts_per_sec\": {:.0}, \"cycles_per_sec\": {:.0}",
                if i == 0 { "" } else { ", " },
                r.name,
                r.committed as f64 / r.best_secs,
                r.cycles as f64 / r.best_secs
            ));
            // Stall-bucket shares ride along per row (additive, so the
            // row schema stays `v: 1`): history answers not just "how
            // fast" but "where did the cycles go" over time. `null` in
            // obs-off builds.
            match &r.account {
                Some(acct) => {
                    row.push_str(", \"cycle_accounting\": {");
                    for (j, b) in StallBucket::ALL.iter().enumerate() {
                        row.push_str(&format!(
                            "{}\"{}\": {:.6}",
                            if j == 0 { "" } else { ", " },
                            b.label(),
                            acct.share(*b)
                        ));
                    }
                    row.push_str("}}");
                }
                None => row.push_str(", \"cycle_accounting\": null}"),
            }
        }
        row.push_str(&format!(
            "], \"combined_insts_per_sec\": {combined:.0}, \
             \"combined_cycles_per_sec\": {combined_cycles:.0}}}\n"
        ));
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("cannot open --history {path}: {e}"));
        std::io::Write::write_all(&mut file, row.as_bytes())
            .unwrap_or_else(|e| panic!("cannot append --history {path}: {e}"));
        println!("appended {path}");
    }

    // `--baseline` gates the fresh measurement against a committed
    // summary with the same thresholds (and overrides) as `ds-report`.
    if let Some(path) = baseline_path {
        let base_text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read --baseline {path}: {e}"));
        let base = ds_obs::json::parse(&base_text)
            .unwrap_or_else(|e| panic!("--baseline {path}: parse error: {e:?}"));
        let new = ds_obs::json::parse(&json).expect("own output parses");
        let mut opts = DiffOptions::default();
        if let Some(v) = ds_bench::report::flag_value("--max-drop") {
            opts.max_drop = v.parse().expect("--max-drop takes a number");
        }
        let diff = diff_documents(&base, &new, opts).expect("comparable documents");
        for line in &diff.lines {
            println!("  {line}");
        }
        if !diff.passed() {
            eprintln!("FAIL vs baseline {path}: {} regression(s)", diff.failures.len());
            for f in &diff.failures {
                eprintln!("  REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        println!("PASS vs baseline {path}");
    }

    // `--json` mirrors the measurements in the common ds-bench-result/v1
    // schema (the `--out` file keeps its historical shape for the
    // speedup tracking in DESIGN.md).
    if let Some(path) = report_path {
        let mut t = Table::new(&["workload", "committed", "cycles", "seconds", "insts/s", "cycles/s"]);
        for r in &rows {
            t.row(&[
                r.name.to_string(),
                r.committed.to_string(),
                r.cycles.to_string(),
                format!("{:.6}", r.best_secs),
                format!("{:.0}", r.committed as f64 / r.best_secs),
                format!("{:.0}", r.cycles as f64 / r.best_secs),
            ]);
        }
        let mut report = Report::new("bench_throughput");
        report
            .budget(budget)
            .table("Simulator throughput (best of 3 timed runs)", &t)
            .number("combined_insts_per_sec", combined)
            .number("combined_cycles_per_sec", combined_cycles)
            .number("speedup_vs_pre_overhaul", speedup)
            .note("wall-clock perf counters; simulated results pinned by tests/golden_stats.rs");
        for r in &rows {
            if let Some(cp) = &r.critpath {
                report.critpath(r.name, cp);
            }
            if let Some(t) = &r.timeline {
                report.timeline(r.name, t);
            }
        }
        std::fs::write(&path, report.render())
            .unwrap_or_else(|e| panic!("cannot write --json {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
