//! Figure 7: timing-simulation IPC of the six benchmarks across five
//! systems — perfect data cache, 2- and 4-node DataScalar, and the
//! traditional system with 1/2 and 1/4 of memory on-chip.

use ds_bench::{figure7_rows, Budget};
use ds_stats::{ratio, Table};

fn main() {
    let budget = Budget::from_args();
    println!(
        "Figure 7: instructions per cycle ({} instructions per run)",
        budget.max_insts
    );
    println!();
    let mut t = Table::new(&[
        "benchmark",
        "perfect",
        "DS x2",
        "DS x4",
        "trad 1/2",
        "trad 1/4",
        "DSx2/trad",
    ]);
    for r in figure7_rows(budget) {
        let speedup = if r.trad_half > 0.0 { r.ds2 / r.trad_half } else { 0.0 };
        t.row(&[
            r.name.clone(),
            ratio(r.perfect),
            ratio(r.ds2),
            ratio(r.ds4),
            ratio(r.trad_half),
            ratio(r.trad_quarter),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("{t}");
    println!("paper: DataScalar from 7% slower to 50% faster at 2 nodes, 9-100% faster");
    println!("       at 4 nodes; compress nearly doubles; perfect bounds everything;");
    println!("       traditional drops sharply from 1/2 to 1/4 on-chip");
}
