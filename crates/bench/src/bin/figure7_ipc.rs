//! Figure 7: timing-simulation IPC of the six benchmarks across five
//! systems — perfect data cache, 2- and 4-node DataScalar, and the
//! traditional system with 1/2 and 1/4 of memory on-chip.
//!
//! `--json <path>` additionally writes the table as a
//! `ds-bench-result/v1` document — instrumented builds (`--features
//! obs`) also attach per-system critical-path edge-class attributions
//! (`critpath` member, labels like `compress/ds2`) and
//! `*_communication_share` numbers for `compress` and `go`, the direct
//! answer to "is the broadcast on the critical path?" across DS,
//! traditional and perfect systems; `--trace-out <path>` (obs builds
//! only) writes a Chrome trace-event / Perfetto JSON trace of the
//! 4-node DataScalar `compress` run.

use ds_bench::report::{flag_value, Report};
use ds_bench::{figure7_rows, Budget};
use ds_stats::{ratio, Table};

fn main() {
    let budget = Budget::from_args();
    println!(
        "Figure 7: instructions per cycle ({} instructions per run)",
        budget.max_insts
    );
    println!();
    let mut t = Table::new(&[
        "benchmark",
        "perfect",
        "DS x2",
        "DS x4",
        "trad 1/2",
        "trad 1/4",
        "DSx2/trad",
    ]);
    let rows = figure7_rows(budget);
    let mut speedup_sum = 0.0;
    for r in &rows {
        let speedup = if r.trad_half > 0.0 { r.ds2 / r.trad_half } else { 0.0 };
        speedup_sum += speedup;
        t.row(&[
            r.name.clone(),
            ratio(r.perfect),
            ratio(r.ds2),
            ratio(r.ds4),
            ratio(r.trad_half),
            ratio(r.trad_quarter),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("{t}");
    println!("paper: DataScalar from 7% slower to 50% faster at 2 nodes, 9-100% faster");
    println!("       at 4 nodes; compress nearly doubles; perfect bounds everything;");
    println!("       traditional drops sharply from 1/2 to 1/4 on-chip");

    let mut report = Report::new("figure7_ipc");
    report
        .budget(budget)
        .table("Figure 7: instructions per cycle", &t)
        .number("mean_ds2_speedup_vs_trad_half", speedup_sum / rows.len().max(1) as f64);
    append_critpath(&mut report, budget);
    report.write_if_requested();

    if let Some(path) = flag_value("--trace-out") {
        write_trace(&path, budget);
    }
}

/// Attaches critical-path edge-class attributions for the paper's two
/// headline benchmarks across three of the Figure 7 systems. The
/// interesting contrast: the traditional system's request round-trips
/// sit *on* its critical path (large communication share), while the
/// DataScalar broadcast largely hides under compute.
#[cfg(feature = "obs")]
fn append_critpath(report: &mut Report, budget: ds_bench::Budget) {
    use ds_bench::{run_datascalar, run_perfect, run_traditional};
    use ds_workloads::by_name;

    for name in ["compress", "go"] {
        let w = by_name(name).expect("registered workload");
        let systems = [
            ("ds2", run_datascalar(&w, 2, budget)),
            ("trad2", run_traditional(&w, 2, budget)),
            ("perfect", run_perfect(&w, budget)),
        ];
        for (sys, r) in &systems {
            let m = r.metrics.as_ref().expect("obs builds carry metrics");
            report.critpath(&format!("{name}/{sys}"), &m.critpath);
            report.number(
                &format!("{name}_{sys}_communication_share"),
                m.critpath.communication_share(),
            );
            // Full interval timelines ride along for the DataScalar
            // systems only: they are what ds-dash renders, and the
            // single-node comparators add bulk without adding phases of
            // interest.
            if *sys == "ds2" {
                report.timeline(&format!("{name}/{sys}"), &m.timeline);
            }
        }
    }
}

#[cfg(not(feature = "obs"))]
fn append_critpath(_report: &mut Report, _budget: ds_bench::Budget) {}

/// Runs the 4-node DataScalar `compress` configuration with event
/// recording on and writes the Perfetto trace.
#[cfg(feature = "obs")]
fn write_trace(path: &str, budget: Budget) {
    use ds_bench::baseline_config;
    use ds_core::DsSystem;
    use ds_workloads::by_name;

    let w = by_name("compress").expect("registered workload");
    let prog = (w.build)(budget.scale);
    let mut sys = DsSystem::new(baseline_config(4, budget.max_insts), &prog);
    sys.run().expect("workload executes");
    std::fs::write(path, sys.perfetto_trace())
        .unwrap_or_else(|e| panic!("cannot write --trace-out {path}: {e}"));
    eprintln!("wrote {path}");
}

#[cfg(not(feature = "obs"))]
fn write_trace(_path: &str, _budget: Budget) {
    eprintln!("--trace-out needs event recording: rebuild with `--features obs`");
    std::process::exit(2);
}
