//! Ablation: BSHR capacity and access latency.
//!
//! The paper assumes a fixed BSHR (its size/latency digits were lost in
//! the source text; DESIGN.md substitution 3). This harness sweeps
//! both, reporting IPC, peak occupancy and overflows so the choice can
//! be sanity-checked.

use ds_bench::report::Report;
use ds_bench::{baseline_config, runner, Budget};
use ds_core::DsSystem;
use ds_stats::{ratio, Table};
use ds_workloads::by_name;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: BSHR geometry (DataScalar x2, compress & wave5)");
    println!();
    let names = ["compress", "wave5"];
    let progs: Vec<_> = names
        .iter()
        .map(|n| (by_name(n).expect("registered").build)(budget.scale))
        .collect();
    const GEOMS: [(usize, u64); 7] =
        [(4, 2), (16, 2), (64, 2), (128, 2), (128, 1), (128, 4), (128, 8)];
    let jobs: Vec<(usize, usize, u64)> =
        (0..names.len()).flat_map(|wi| GEOMS.map(move |(e, a)| (wi, e, a))).collect();
    let rows = runner::map(jobs, |&(wi, entries, access)| {
        let mut config = baseline_config(2, budget.max_insts);
        config.bshr_entries = entries;
        config.bshr_access_cycles = access;
        let mut sys = DsSystem::new(config, &progs[wi]);
        let r = sys.run().expect("runs");
        let occ = r.nodes.iter().map(|n| n.bshr.max_occupancy).max().unwrap_or(0);
        let ovf: u64 = r.nodes.iter().map(|n| n.bshr.overflows).sum();
        [
            entries.to_string(),
            format!("{access}cy"),
            ratio(r.ipc()),
            occ.to_string(),
            ovf.to_string(),
        ]
    });
    let mut report = Report::new("ablation_bshr");
    report.budget(budget);
    for (wi, name) in names.iter().enumerate() {
        let mut t = Table::new(&["entries", "access", "IPC", "max occupancy", "overflows"]);
        for row in &rows[wi * GEOMS.len()..(wi + 1) * GEOMS.len()] {
            t.row(row);
        }
        println!("=== {name} ===\n{t}");
        report.table(name, &t);
    }
    println!("occupancy stays far below the paper-scale 128 entries; access");
    println!("latency matters only when remote loads dominate");
    report.write_if_requested();
}
