//! Figure 1: operation of the synchronous-ESP Massive Memory Machine.
//!
//! Reproduces the paper's timeline for the reference string w1..w9 with
//! w5–w7 owned by machine 2 (0-indexed: machine 1) and everything else
//! by machine 1 (machine 0), showing pipelined broadcasts within a
//! datathread and stalls at lead changes.

use ds_bench::report::Report;
use ds_core::mmm;

fn main() {
    println!("Figure 1: ESP Massive Memory Machine timeline");
    println!("reference string: w1..w9; w5-w7 at machine 1, rest at machine 0");
    println!();
    let owners = mmm::figure1_owners();
    let timeline = mmm::simulate(&owners, 2);
    println!("{}", timeline.render());
    println!(
        "lead changes: {}   datathread runs: {:?}   mean run: {:.2}   total cycles: {}",
        timeline.lead_changes,
        timeline.runs,
        timeline.mean_run(),
        timeline.total_cycles()
    );
    println!();
    println!("contrast: the same string with every word at one machine");
    let uniform = mmm::simulate(&[0; 9], 2);
    println!(
        "  lead changes: {}   total cycles: {}",
        uniform.lead_changes,
        uniform.total_cycles()
    );

    let mut report = Report::new("figure1_mmm");
    report
        .number("lead_changes", timeline.lead_changes as f64)
        .number("mean_run", timeline.mean_run())
        .number("total_cycles", timeline.total_cycles() as f64)
        .number("uniform_lead_changes", uniform.lead_changes as f64)
        .number("uniform_total_cycles", uniform.total_cycles() as f64)
        .note("reference string w1..w9; w5-w7 at machine 1, rest at machine 0");
    report.write_if_requested();
}
