//! `ds-report` — regression-diff gate between two benchmark result
//! documents.
//!
//! ```text
//! ds-report <baseline.json> <current.json> [--max-drop F] [--max-bucket-shift F]
//! ```
//!
//! Both files must be the same shape: two `ds-bench-result/v1`
//! documents (any experiment binary's `--json` output) or two
//! `BENCH_throughput.json` documents. Prints a per-cell diff and exits
//! 0 when every gated number is within tolerance, 1 when a regression
//! threshold is breached, 2 on usage/parse errors. Truncated input is
//! never tolerated: syntactic truncation (unparseable JSON, trailing
//! garbage) exits 2, and a document that parses but lost an entry the
//! baseline has — a workload, number, table, or per-workload
//! accounting block — fails the gate (exit 1) instead of warning.

use ds_bench::regress::{diff_documents, DiffOptions};
use ds_bench::report::flag_value;
use ds_obs::json::{parse, Value};
use std::process::ExitCode;

const USAGE: &str =
    "usage: ds-report <baseline.json> <current.json> [--max-drop F] [--max-bucket-shift F]";

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: parse error: {e:?}"))
}

fn run() -> Result<bool, String> {
    let files: Vec<String> = {
        let mut args = std::env::args().skip(1).peekable();
        let mut files = Vec::new();
        while let Some(a) = args.next() {
            if a.starts_with("--") {
                // Flag values are re-read via flag_value below.
                args.next();
            } else {
                files.push(a);
            }
        }
        files
    };
    let [base_path, new_path] = files.as_slice() else {
        return Err(USAGE.to_string());
    };

    let mut opts = DiffOptions::default();
    if let Some(v) = flag_value("--max-drop") {
        opts.max_drop = v.parse().map_err(|_| format!("--max-drop: not a number: {v}"))?;
    }
    if let Some(v) = flag_value("--max-bucket-shift") {
        opts.max_bucket_shift =
            v.parse().map_err(|_| format!("--max-bucket-shift: not a number: {v}"))?;
    }

    let base = load(base_path)?;
    let new = load(new_path)?;
    let diff = diff_documents(&base, &new, opts)?;

    println!("ds-report: {base_path} -> {new_path}");
    for line in &diff.lines {
        println!("  {line}");
    }
    if diff.passed() {
        println!(
            "PASS: within tolerance (max drop {:.0}%, max bucket shift {:.0} points)",
            opts.max_drop * 100.0,
            opts.max_bucket_shift * 100.0
        );
    } else {
        println!("FAIL: {} regression(s)", diff.failures.len());
        for f in &diff.failures {
            println!("  REGRESSION: {f}");
        }
    }
    Ok(diff.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("ds-report: {e}");
            ExitCode::from(2)
        }
    }
}
