//! Figure 8: sensitivity analysis of the DataScalar experiments for go
//! and compress — IPC of all five systems while sweeping, one at a
//! time: data-cache size, memory access time, bus clock divisor, bus
//! width, and RUU entries.

use ds_bench::report::Report;
use ds_bench::sweep::{figure8_axes, sweep_point};
use ds_bench::{runner, Budget};
use ds_stats::{ratio, Table};
use ds_workloads::by_name;

fn main() {
    let mut budget = Budget::from_args();
    // 250 timing runs: trim the per-run budget to keep the figure
    // regenerable in minutes.
    budget.max_insts = budget.max_insts.min(150_000);
    println!(
        "Figure 8: sensitivity analysis ({} instructions per run)",
        budget.max_insts
    );
    let names = ["go", "compress"];
    let ws: Vec<_> = names.iter().map(|n| by_name(n).expect("registered workload")).collect();
    let axes = figure8_axes();
    // One job per (workload × axis × knob) sweep point; each runs its
    // five systems. Results come back in job order, so the printed
    // tables are identical with or without --parallel.
    let jobs: Vec<(usize, usize, usize)> = (0..ws.len())
        .flat_map(|wi| {
            axes.iter()
                .enumerate()
                .flat_map(move |(ai, (_, knobs))| (0..knobs.len()).map(move |ki| (wi, ai, ki)))
        })
        .collect();
    let points = runner::map(jobs.clone(), |&(wi, ai, ki)| {
        sweep_point(&ws[wi], axes[ai].1[ki], budget)
    });
    let mut report = Report::new("figure8_sensitivity");
    report.budget(budget);
    let mut next = 0;
    for (wi, name) in names.iter().enumerate() {
        println!("\n=== {name} ===");
        for (axis, knobs) in &axes {
            let mut t = Table::new(&[
                axis,
                "perfect",
                "DS x2",
                "DS x4",
                "trad 1/2",
                "trad 1/4",
            ]);
            for knob in knobs {
                let p = points[next];
                debug_assert_eq!(jobs[next].0, wi);
                next += 1;
                t.row(&[
                    knob.label(),
                    ratio(p.perfect),
                    ratio(p.ds2),
                    ratio(p.ds4),
                    ratio(p.trad_half),
                    ratio(p.trad_quarter),
                ]);
            }
            println!("{t}");
            report.table(&format!("{name}: {axis}"), &t);
        }
    }
    println!("paper: DataScalar consistently outperforms traditional across the sweeps;");
    println!("       the systems converge as memory access time dominates, and diverge");
    println!("       as the global bus gets slower or narrower relative to the core");
    report.write_if_requested();
}
