//! Ablation: round-robin distribution block size.
//!
//! §3.2 maximises the distribution block "to improve datathread length"
//! subject to keeping every segment spread over all nodes. This
//! harness sweeps the block size on the two-node timing machine and
//! reports IPC plus the BSHR's found-waiting rate (the runtime
//! signature of longer datathreads).

use ds_bench::report::Report;
use ds_bench::{baseline_config, runner, Budget};
use ds_core::DsSystem;
use ds_stats::{percent, ratio, Table};
use ds_workloads::by_name;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: distribution block size (DataScalar x2)");
    println!();
    let names = ["li", "compress", "mgrid"];
    let progs: Vec<_> = names
        .iter()
        .map(|n| (by_name(n).expect("registered").build)(budget.scale))
        .collect();
    const BLOCKS: [u64; 5] = [1, 2, 4, 8, 16];
    let jobs: Vec<(usize, u64)> =
        (0..names.len()).flat_map(|wi| BLOCKS.map(move |b| (wi, b))).collect();
    let rows = runner::map(jobs, |&(wi, block)| {
        let mut config = baseline_config(2, budget.max_insts);
        config.dist_block_pages = block;
        let mut sys = DsSystem::new(config, &progs[wi]);
        let r = sys.run().expect("runs");
        [
            block.to_string(),
            ratio(r.ipc()),
            r.bus.broadcasts.to_string(),
            percent(r.node_mean(|n| n.found_in_bshr_frac())),
        ]
    });
    let mut report = Report::new("ablation_blocks");
    report.budget(budget);
    for (wi, name) in names.iter().enumerate() {
        let mut t = Table::new(&["block pages", "IPC", "broadcasts", "found in BSHR"]);
        for row in &rows[wi * BLOCKS.len()..(wi + 1) * BLOCKS.len()] {
            t.row(row);
        }
        println!("=== {name} ===\n{t}");
        report.table(name, &t);
    }
    println!("bigger blocks lengthen datathreads (more consecutive misses at one");
    println!("owner) — up to the point where a hot structure lands entirely on");
    println!("one node and the other only ever waits");
    report.write_if_requested();
}
