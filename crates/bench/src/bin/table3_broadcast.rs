//! Table 3: DataScalar broadcast statistics for the two-node runs —
//! late (reparative) broadcasts, BSHR squashes, and remote loads that
//! found their data already waiting in the BSHR (datathreading
//! evidence).

use ds_bench::report::Report;
use ds_bench::{run_datascalar, Budget};
use ds_stats::{percent, Table};
use ds_workloads::figure7_set;

fn main() {
    let budget = Budget::from_args();
    println!("Table 3: DataScalar broadcast statistics (2 nodes, mean over nodes)");
    println!();
    let mut t = Table::new(&[
        "benchmark",
        "late broadcasts",
        "BSHR squashes",
        "data found in BSHR",
        "false hits",
        "false misses",
        "broadcasts",
    ]);
    for w in figure7_set() {
        let r = run_datascalar(&w, 2, budget);
        t.row(&[
            w.name.to_string(),
            percent(r.node_mean(|n| n.late_broadcast_frac())),
            percent(r.node_mean(|n| n.squash_frac())),
            percent(r.node_mean(|n| n.found_in_bshr_frac())),
            r.nodes.iter().map(|n| n.false_hits).sum::<u64>().to_string(),
            r.nodes.iter().map(|n| n.false_misses).sum::<u64>().to_string(),
            r.nodes.iter().map(|n| n.broadcasts_sent).sum::<u64>().to_string(),
        ]);
    }
    println!("{t}");
    println!("paper: late broadcasts 8-29%; squashes 0-59%; data found in BSHR 2-49%");

    let mut report = Report::new("table3_broadcast");
    report.budget(budget).table("Table 3: DataScalar broadcast statistics", &t);
    report.write_if_requested();
}
