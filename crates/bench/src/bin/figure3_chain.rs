//! Figure 3: serialized off-chip accesses for a dependent operand
//! chain — pipelined DataScalar broadcasts vs request/response per
//! operand.
//!
//! The paper's example: x1, x2, x3 on one chip, x4 on another; the
//! DataScalar system incurs 2 serialized off-chip delays, the
//! traditional system 8. The binary also sweeps chain layouts to show
//! where each system's crossings come from.

use ds_bench::report::Report;
use ds_core::datathread::{compare_chain, datascalar_crossings, mean_thread_length};
use ds_stats::Table;

fn main() {
    println!("Figure 3: serialized off-chip crossings on dependent chains");
    println!();

    // The paper's exact example.
    let owners = [0usize, 0, 0, 1];
    let c = compare_chain(&owners, usize::MAX); // traditional holds none of them
    println!("paper example (x1..x3 at node A, x4 at node B):");
    println!("  DataScalar : {} serialized off-chip delays", c.datascalar);
    println!("  traditional: {} serialized off-chip delays", c.traditional);
    println!();

    let mut t = Table::new(&[
        "chain layout",
        "threads",
        "mean thread len",
        "DS crossings",
        "trad crossings",
    ]);
    let cases: Vec<(&str, Vec<usize>)> = vec![
        ("all at one node", vec![0; 8]),
        ("two runs of four", vec![0, 0, 0, 0, 1, 1, 1, 1]),
        ("four runs of two", vec![0, 0, 1, 1, 2, 2, 3, 3]),
        ("alternating", vec![0, 1, 0, 1, 0, 1, 0, 1]),
        ("paper's fig. 3", vec![0, 0, 0, 1]),
    ];
    for (name, owners) in cases {
        let cmp = compare_chain(&owners, usize::MAX);
        t.row(&[
            name.to_string(),
            datascalar_crossings(&owners).to_string(),
            format!("{:.2}", mean_thread_length(&owners)),
            cmp.datascalar.to_string(),
            cmp.traditional.to_string(),
        ]);
    }
    println!("{t}");
    println!("(traditional column assumes no operand lands in the on-chip share,");
    println!(" as in the paper's example; each remote operand costs request+response)");

    let mut report = Report::new("figure3_chain");
    report
        .table("Figure 3: serialized off-chip crossings on dependent chains", &t)
        .number("paper_example_datascalar", c.datascalar as f64)
        .number("paper_example_traditional", c.traditional as f64);
    report.write_if_requested();
}
