//! Ablation: node-count scaling.
//!
//! The paper evaluates 2 and 4 nodes and discusses cost-effectiveness
//! at higher counts (§4.4). This harness scales the DataScalar machine
//! from 1 to 8 nodes (the traditional comparator's on-chip share
//! shrinking to match).

use ds_bench::{run_datascalar, run_traditional, Budget};
use ds_stats::{ratio, Table};
use ds_workloads::figure7_set;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: node-count scaling (DataScalar vs traditional)");
    println!();
    for w in figure7_set() {
        let mut t = Table::new(&["nodes", "DS IPC", "trad IPC", "DS/trad", "DS broadcasts"]);
        for nodes in [1usize, 2, 4, 8] {
            let ds = run_datascalar(&w, nodes, budget);
            let trad = run_traditional(&w, nodes, budget);
            t.row(&[
                nodes.to_string(),
                ratio(ds.ipc()),
                ratio(trad.ipc()),
                format!("{:.2}x", ds.ipc() / trad.ipc()),
                ds.bus.broadcasts.to_string(),
            ]);
        }
        println!("=== {} ===\n{t}", w.name);
    }
    println!("the DataScalar advantage grows as the on-chip share shrinks: the");
    println!("traditional system's remote fraction rises with n while ESP's");
    println!("broadcast count stays fixed at one per communicated miss");
}
