//! Ablation: node-count scaling.
//!
//! The paper evaluates 2 and 4 nodes and discusses cost-effectiveness
//! at higher counts (§4.4). This harness scales the DataScalar machine
//! from 1 to 8 nodes (the traditional comparator's on-chip share
//! shrinking to match).

use ds_bench::report::Report;
use ds_bench::{runner, run_datascalar, run_traditional, Budget};
use ds_stats::{ratio, Table};
use ds_workloads::figure7_set;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: node-count scaling (DataScalar vs traditional)");
    println!();
    let set = figure7_set();
    const NODES: [usize; 4] = [1, 2, 4, 8];
    let jobs: Vec<(usize, usize)> =
        (0..set.len()).flat_map(|wi| NODES.map(move |n| (wi, n))).collect();
    let rows = runner::map(jobs, |&(wi, nodes)| {
        let ds = run_datascalar(&set[wi], nodes, budget);
        let trad = run_traditional(&set[wi], nodes, budget);
        [
            nodes.to_string(),
            ratio(ds.ipc()),
            ratio(trad.ipc()),
            format!("{:.2}x", ds.ipc() / trad.ipc()),
            ds.bus.broadcasts.to_string(),
        ]
    });
    let mut report = Report::new("ablation_nodes");
    report.budget(budget);
    for (wi, w) in set.iter().enumerate() {
        let mut t = Table::new(&["nodes", "DS IPC", "trad IPC", "DS/trad", "DS broadcasts"]);
        for row in &rows[wi * NODES.len()..(wi + 1) * NODES.len()] {
            t.row(row);
        }
        println!("=== {} ===\n{t}", w.name);
        report.table(w.name, &t);
    }
    println!("the DataScalar advantage grows as the on-chip share shrinks: the");
    println!("traditional system's remote fraction rises with n while ESP's");
    println!("broadcast count stays fixed at one per communicated miss");
    report.write_if_requested();
}
