//! Table 2: approximate datathread measurements for a four-processor
//! system.
//!
//! For each benchmark: profile page accesses, replicate the most
//! heavily accessed pages (plus the text segment), distribute the
//! remaining communicated pages round-robin at the block size the
//! paper's rule picks, and measure mean datathread lengths over all /
//! text / data misses plus the mean replicated-run length.

use ds_bench::report::Report;
use ds_bench::Budget;
use ds_mem::PageTableBuilder;
use ds_stats::Table;
use ds_trace::datathread::pick_block_pages;
use ds_trace::{measure_datathreads, select_hot_pages, DatathreadConfig, PageProfile};
use ds_workloads::table1_set;

const NODES: usize = 4;

/// "-" when no runs of that kind were observed (e.g. all text
/// replicated, so no text miss ever starts or breaks a thread).
fn fmt_mean(mean: f64, runs: u64) -> String {
    if runs == 0 {
        "-".to_string()
    } else {
        format!("{mean:.1}")
    }
}
const PAGE: u64 = 4096;

fn main() {
    let budget = Budget::from_args();
    let max_insts = budget.max_insts * 10;
    println!("Table 2: approximate datathread measurements ({NODES} nodes, {PAGE}-byte pages)");
    println!();
    let mut t = Table::new(&[
        "benchmark",
        "dist (KB)",
        "repl pages",
        "text",
        "global",
        "heap",
        "stack",
        "all",
        "text-dt",
        "data-dt",
        "repl-run",
    ]);
    for w in table1_set() {
        let prog = (w.build)(budget.scale);
        // Profile and replicate the most heavily accessed pages (§3.2),
        // capped at a third of the declared pages so no segment is
        // wholly contained at one node.
        let profile = PageProfile::collect(&prog, PAGE, max_insts);
        let declared: u64 = prog
            .regions()
            .iter()
            .map(|(s, e, _)| (e - s).div_ceil(PAGE))
            .sum();
        let replicated =
            select_hot_pages(
            &profile,
            // Replication budget: half the declared pages, capped at a
            // 128 KiB per-node capacity allowance.
            (declared / 2).clamp(1, 32) as usize,
            4.0,
        );
        let block = pick_block_pages(&prog, PAGE, NODES);

        let mut ptb = PageTableBuilder::new(PAGE, NODES);
        for (s, e, seg) in prog.regions() {
            ptb.add_region(s, e, seg);
        }
        for &vpn in &replicated {
            ptb.replicate_page_of(vpn * PAGE);
        }
        ptb.distribute_round_robin(block);
        let pt = ptb.build();
        let per_seg = pt.replicated_per_segment();

        let config = DatathreadConfig { max_insts, ..Default::default() };
        let r = measure_datathreads(&prog, &pt, &config);
        t.row(&[
            w.name.to_string(),
            (block * PAGE / 1024).to_string(),
            per_seg.iter().sum::<usize>().to_string(),
            per_seg[0].to_string(),
            per_seg[1].to_string(),
            per_seg[2].to_string(),
            per_seg[3].to_string(),
            fmt_mean(r.all, r.all_runs),
            fmt_mean(r.text, r.text_runs),
            fmt_mean(r.data, r.data_runs),
            format!("{:.1}", r.replicated),
        ]);
    }
    println!("{t}");
    println!("paper: text datathreads > 10 everywhere (often 100s-1000s);");
    println!("       FP data datathreads short (< 10 for swim/applu/turb3d/mgrid/hydro2d);");
    println!("       integer codes longer (3 to > 100)");

    let mut report = Report::new("table2_datathreads");
    report.budget(budget).table("Table 2: approximate datathread measurements", &t);
    report.write_if_requested();
}
