//! Ablation: branch-prediction assumption (§4.1 / §4.2).
//!
//! The paper assumes perfect branch prediction, partly because its
//! correspondence protocol cannot yet handle speculative broadcasts.
//! Our fetch model redirects only after a mispredicted transfer
//! resolves (no wrong path is issued, so correspondence is preserved),
//! letting us measure how much of the DataScalar conclusion depends on
//! the assumption: mispredictions throttle run-ahead, which is the
//! engine of datathreading.

use ds_bench::report::Report;
use ds_bench::{baseline_config, runner, Budget};
use ds_core::{DsSystem, TraditionalConfig, TraditionalSystem};
use ds_cpu::BranchModel;
use ds_stats::{percent, ratio, Table};
use ds_workloads::figure7_set;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: branch prediction (2-node machines)");
    println!();
    let models: [(&str, BranchModel); 3] = [
        ("perfect", BranchModel::Perfect),
        ("bimodal 4k", BranchModel::TwoBit { table_bits: 12, penalty: 8 }),
        ("static BTFN", BranchModel::Static { penalty: 8 }),
    ];
    let set = figure7_set();
    let progs: Vec<_> = set.iter().map(|w| (w.build)(budget.scale)).collect();
    let jobs: Vec<(usize, usize)> =
        (0..set.len()).flat_map(|wi| (0..models.len()).map(move |mi| (wi, mi))).collect();
    let rows = runner::map(jobs, |&(wi, mi)| {
        let (name, model) = models[mi];
        let mut config = baseline_config(2, budget.max_insts);
        config.core.branch = model;
        let mut ds = DsSystem::new(config.clone(), &progs[wi]);
        let ds_r = ds.run().expect("runs");
        let mut trad = TraditionalSystem::new(&TraditionalConfig { base: config }, &progs[wi]);
        let trad_r = trad.run().expect("runs");
        let s = &ds_r.nodes[0].core;
        let rate = if s.branches == 0 {
            0.0
        } else {
            s.branch_mispredicts as f64 / s.branches as f64
        };
        [
            name.to_string(),
            ratio(ds_r.ipc()),
            ratio(trad_r.ipc()),
            format!("{:.2}x", ds_r.ipc() / trad_r.ipc()),
            percent(rate),
        ]
    });
    let mut report = Report::new("ablation_branch");
    report.budget(budget);
    for (wi, w) in set.iter().enumerate() {
        let mut t = Table::new(&["model", "DS IPC", "trad IPC", "DS/trad", "mispredict rate"]);
        for row in &rows[wi * models.len()..(wi + 1) * models.len()] {
            t.row(row);
        }
        println!("=== {} ===\n{t}", w.name);
        report.table(w.name, &t);
    }
    println!("both systems lose IPC under real prediction, and the DataScalar");
    println!("advantage persists — the paper's perfect-prediction assumption");
    println!("inflates absolute IPCs but not the comparison");
    report.write_if_requested();
}
