//! §5.1: result communication — an upper-bound evaluation.
//!
//! The paper describes (without evaluating) letting a node run a
//! private computation and broadcast only the result. This harness
//! bounds the technique's benefit: collapsing every same-owner run of
//! communicated misses to a single result broadcast.

use ds_bench::report::Report;
use ds_bench::Budget;
use ds_mem::{PageTableBuilder, Segment};
use ds_stats::{percent, ratio, Table};
use ds_trace::{measure_result_comm, ResultCommConfig};
use ds_workloads::table1_set;

const NODES: usize = 4;
const PAGE: u64 = 4096;

fn main() {
    let budget = Budget::from_args();
    println!("Section 5.1: result-communication upper bound ({NODES} nodes)");
    println!();
    let mut t = Table::new(&[
        "benchmark",
        "operand bcasts",
        "result bcasts",
        "mean run",
        "max savings",
    ]);
    for w in table1_set() {
        let prog = (w.build)(budget.scale);
        let mut ptb = PageTableBuilder::new(PAGE, NODES);
        for (s, e, seg) in prog.regions() {
            ptb.add_region(s, e, seg);
        }
        ptb.replicate_segment(Segment::Text);
        ptb.distribute_round_robin(1);
        let pt = ptb.build();
        let config = ResultCommConfig { max_insts: budget.max_insts * 10, ..Default::default() };
        let r = measure_result_comm(&prog, &pt, &config);
        t.row(&[
            w.name.to_string(),
            r.operand_broadcasts.to_string(),
            r.result_broadcasts.to_string(),
            ratio(r.mean_run()),
            percent(r.max_savings()),
        ]);
    }
    println!("{t}");
    println!("an upper bound: it assumes every same-owner run is a private");
    println!("computation whose operands are dead once the result is known");

    let mut report = Report::new("section5_result_comm");
    report.budget(budget).table("Section 5.1: result-communication upper bound", &t);
    report.write_if_requested();
}
