//! Ablation: static replication fraction.
//!
//! The paper's §2/§3.2 lever: replicating heavily-used pages trades
//! per-node memory capacity for eliminated broadcasts. This harness
//! replicates increasing fractions of each benchmark's data pages
//! (hottest first, by profile) and reports IPC and bus traffic on the
//! two-node machine.

use ds_bench::{baseline_config, Budget};
use ds_core::DsSystem;
use ds_stats::{ratio, Table};
use ds_trace::PageProfile;
use ds_workloads::by_name;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: static replication fraction (DataScalar x2)");
    println!();
    for name in ["compress", "mgrid", "go"] {
        let w = by_name(name).expect("registered");
        let prog = (w.build)(budget.scale);
        let config0 = baseline_config(2, budget.max_insts);
        let profile = PageProfile::collect(&prog, config0.page_bytes, budget.max_insts * 4);
        let ranked: Vec<u64> = profile.sorted_pages().into_iter().map(|(v, _)| v).collect();
        let mut t = Table::new(&["replicated", "IPC", "broadcasts", "bus bytes"]);
        for percent_repl in [0u64, 25, 50, 75, 100] {
            let count = (ranked.len() as u64 * percent_repl / 100) as usize;
            let mut config = config0.clone();
            config.replicated_vpns = ranked.iter().take(count).copied().collect();
            let mut sys = DsSystem::new(config, &prog);
            let r = sys.run().expect("runs");
            t.row(&[
                format!("{percent_repl}%"),
                ratio(r.ipc()),
                r.bus.broadcasts.to_string(),
                r.bus.bytes.to_string(),
            ]);
        }
        println!("=== {name} ===\n{t}");
    }
    println!("broadcasts fall monotonically with replication; IPC rises until");
    println!("the replicated capacity would no longer fit (which the model does");
    println!("not charge — the paper's capacity trade-off is the caveat)");
}
