//! Ablation: static replication fraction.
//!
//! The paper's §2/§3.2 lever: replicating heavily-used pages trades
//! per-node memory capacity for eliminated broadcasts. This harness
//! replicates increasing fractions of each benchmark's data pages
//! (hottest first, by profile) and reports IPC and bus traffic on the
//! two-node machine.

use ds_bench::report::Report;
use ds_bench::{baseline_config, runner, Budget};
use ds_core::DsSystem;
use ds_stats::{ratio, Table};
use ds_trace::PageProfile;
use ds_workloads::by_name;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: static replication fraction (DataScalar x2)");
    println!();
    let names = ["compress", "mgrid", "go"];
    let config0 = baseline_config(2, budget.max_insts);
    // Profiling each workload is itself an independent job.
    let prepped = runner::map(names.to_vec(), |name| {
        let w = by_name(name).expect("registered");
        let prog = (w.build)(budget.scale);
        let profile = PageProfile::collect(&prog, config0.page_bytes, budget.max_insts * 4);
        let ranked: Vec<u64> = profile.sorted_pages().into_iter().map(|(v, _)| v).collect();
        (prog, ranked)
    });
    const FRACTIONS: [u64; 5] = [0, 25, 50, 75, 100];
    let jobs: Vec<(usize, u64)> =
        (0..names.len()).flat_map(|wi| FRACTIONS.map(move |f| (wi, f))).collect();
    let rows = runner::map(jobs, |&(wi, percent_repl)| {
        let (prog, ranked) = &prepped[wi];
        let count = (ranked.len() as u64 * percent_repl / 100) as usize;
        let mut config = config0.clone();
        config.replicated_vpns = ranked.iter().take(count).copied().collect();
        let mut sys = DsSystem::new(config, prog);
        let r = sys.run().expect("runs");
        [
            format!("{percent_repl}%"),
            ratio(r.ipc()),
            r.bus.broadcasts.to_string(),
            r.bus.bytes.to_string(),
        ]
    });
    let mut report = Report::new("ablation_replication");
    report.budget(budget);
    for (wi, name) in names.iter().enumerate() {
        let mut t = Table::new(&["replicated", "IPC", "broadcasts", "bus bytes"]);
        for row in &rows[wi * FRACTIONS.len()..(wi + 1) * FRACTIONS.len()] {
            t.row(row);
        }
        println!("=== {name} ===\n{t}");
        report.table(name, &t);
    }
    println!("broadcasts fall monotonically with replication; IPC rises until");
    println!("the replicated capacity would no longer fit (which the model does");
    println!("not charge — the paper's capacity trade-off is the caveat)");
    report.write_if_requested();
}
