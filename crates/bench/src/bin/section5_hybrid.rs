//! §5.2: hybrid parallel / DataScalar execution.
//!
//! The paper argues that running serial sections under SPSD while
//! parallel sections run partitioned improves scalability. This
//! harness measures the serial-section DataScalar speedup from the
//! actual timing simulator (compress and go, Figure 7 configuration)
//! and feeds it into the Amdahl-style hybrid model, sweeping parallel
//! fraction and node count.

use ds_bench::report::Report;
use ds_bench::{run_datascalar, run_traditional, Budget};
use ds_core::hybrid;
use ds_stats::{ratio, Table};
use ds_workloads::by_name;

fn main() {
    let budget = Budget::from_args();
    println!("Section 5.2: hybrid parallel/DataScalar scalability");
    println!();
    let mut report = Report::new("section5_hybrid");
    report.budget(budget);
    for name in ["compress", "go"] {
        let w = by_name(name).expect("registered");
        let ds = run_datascalar(&w, 2, budget).ipc();
        let trad = run_traditional(&w, 2, budget).ipc();
        let s = ds / trad;
        println!(
            "=== {name}: measured serial-section DataScalar speedup s = {s:.2} \
             (DS x2 {ds:.2} IPC vs traditional {trad:.2} IPC) ==="
        );
        for p in [0.5, 0.8, 0.95] {
            let mut t = Table::new(&["nodes", "pure parallel", "hybrid", "gain"]);
            for pt in hybrid::sweep(p, s, &[2, 4, 8, 16, 32]) {
                t.row(&[
                    pt.nodes.to_string(),
                    ratio(pt.parallel),
                    ratio(pt.hybrid),
                    format!("{:+.0}%", (pt.hybrid / pt.parallel - 1.0) * 100.0),
                ]);
            }
            println!("parallel fraction p = {p}:\n{t}");
            report.table(&format!("{name}: parallel fraction p = {p}"), &t);
        }
        report.number(&format!("{name}_serial_speedup"), s);
        if let Some(n) = hybrid::max_cost_effective_nodes(0.8, s, 0.2, 64) {
            println!(
                "cost-effectiveness (processor = 20% of node cost, p = 0.8): \
                 worthwhile up to {n} nodes\n"
            );
        }
    }
    println!("the gain column is the paper's §5.2 claim made quantitative:");
    println!("SPSD-accelerated serial sections lift the Amdahl asymptote by the");
    println!("measured serial speedup");
    report.write_if_requested();
}
