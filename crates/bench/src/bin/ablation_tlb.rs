//! Ablation: address-translation cost.
//!
//! The paper implements translation through a single-level page table
//! (§4.2) but does not model a TLB. This harness checks how sensitive
//! the headline comparison is to that simplification by giving both
//! systems a D-TLB of varying size (misses pay a local page-table
//! walk).

use ds_bench::report::Report;
use ds_bench::{baseline_config, runner, Budget};
use ds_core::{DsSystem, TraditionalConfig, TraditionalSystem};
use ds_mem::TlbConfig;
use ds_stats::{ratio, Table};
use ds_workloads::by_name;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: D-TLB size (2-node machines, 9-cycle walk)");
    println!();
    let names = ["compress", "wave5"];
    let progs: Vec<_> = names
        .iter()
        .map(|n| (by_name(n).expect("registered").build)(budget.scale))
        .collect();
    const SIZES: [Option<usize>; 4] = [None, Some(16), Some(64), Some(256)];
    let jobs: Vec<(usize, usize)> =
        (0..names.len()).flat_map(|wi| (0..SIZES.len()).map(move |si| (wi, si))).collect();
    let rows = runner::map(jobs, |&(wi, si)| {
        let entries = SIZES[si];
        let mut config = baseline_config(2, budget.max_insts);
        config.tlb = entries.map(|n| TlbConfig {
            entries: n,
            assoc: n,
            page_bytes: config.page_bytes,
        });
        let mut ds = DsSystem::new(config.clone(), &progs[wi]);
        let ds_r = ds.run().expect("runs");
        let mut trad = TraditionalSystem::new(&TraditionalConfig { base: config }, &progs[wi]);
        let trad_r = trad.run().expect("runs");
        [
            entries.map_or("perfect".to_string(), |n| n.to_string()),
            ratio(ds_r.ipc()),
            ratio(trad_r.ipc()),
            format!("{:.2}x", ds_r.ipc() / trad_r.ipc()),
        ]
    });
    let mut report = Report::new("ablation_tlb");
    report.budget(budget);
    for (wi, name) in names.iter().enumerate() {
        let mut t = Table::new(&["TLB", "DS IPC", "trad IPC", "DS/trad"]);
        for row in &rows[wi * SIZES.len()..(wi + 1) * SIZES.len()] {
            t.row(row);
        }
        println!("=== {name} ===\n{t}");
        report.table(name, &t);
    }
    println!("translation cost hits both systems alike: the DataScalar/");
    println!("traditional ratio is insensitive to the paper's free-translation");
    println!("simplification");
    report.write_if_requested();
}
