//! Ablation: interconnect technology (§4.4).
//!
//! The paper evaluates a bus, envisions a ring ("because of the
//! high-performance capability"), and notes that free-space optics make
//! broadcasts essentially free. This harness runs the Figure 7
//! benchmarks on all three: the evaluated bus, the slotted ring, and an
//! "optical" fabric modelled as a core-clocked 64-byte-wide bus.

use ds_bench::report::Report;
use ds_bench::{baseline_config, runner, Budget};
use ds_core::DsSystem;
use ds_net::FabricKind;
use ds_stats::{ratio, Table};
use ds_workloads::figure7_set;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: interconnect technology (DataScalar x4)");
    println!();
    let mut t = Table::new(&["benchmark", "bus IPC", "ring IPC", "optical IPC", "ring/bus"]);
    let set = figure7_set();
    let progs: Vec<_> = set.iter().map(|w| (w.build)(budget.scale)).collect();
    // Variants: the evaluated bus, the ring, and the "optical" bus.
    const VARIANTS: [(FabricKind, bool); 3] =
        [(FabricKind::Bus, false), (FabricKind::Ring, false), (FabricKind::Bus, true)];
    let jobs: Vec<(usize, usize)> =
        (0..set.len()).flat_map(|wi| (0..VARIANTS.len()).map(move |vi| (wi, vi))).collect();
    let ipcs = runner::map(jobs, |&(wi, vi)| {
        let (kind, optical) = VARIANTS[vi];
        let mut config = baseline_config(4, budget.max_insts);
        config.interconnect = kind;
        if optical {
            // Free-space optics: broadcasts at core speed and full
            // line width.
            config.bus.clock_divisor = 1;
            config.bus.width_bytes = 64;
        }
        let mut sys = DsSystem::new(config, &progs[wi]);
        sys.run().expect("runs").ipc()
    });
    for (wi, w) in set.iter().enumerate() {
        let (bus, ring, optical) = (ipcs[wi * 3], ipcs[wi * 3 + 1], ipcs[wi * 3 + 2]);
        t.row(&[
            w.name.to_string(),
            ratio(bus),
            ratio(ring),
            ratio(optical),
            format!("{:.2}x", ring / bus),
        ]);
    }
    println!("{t}");
    let mut report = Report::new("ablation_interconnect");
    report.budget(budget).table("Ablation: interconnect technology (DataScalar x4)", &t);
    report.write_if_requested();
    println!("at four nodes the cut-through ring roughly matches the bus: it");
    println!("pipelines broadcasts but each one occupies n-1 links and the");
    println!("farthest node waits extra hops — the ordering/latency complication");
    println!("the paper flags in its ring discussion. Optics removes the");
    println!("bottleneck entirely, which is why the paper calls free-broadcast");
    println!("media an excellent match for large DataScalar systems");
}
