//! Table 1: off-chip data traffic reduced by ESP.
//!
//! For each of the fourteen SPEC95-analog benchmarks, simulates the
//! paper's 64 KiB two-way write-allocate write-back L1 and reports the
//! fraction of off-chip traffic ESP eliminates, in bytes and in
//! transactions (the paper's two rows). Pass `--quick` for a reduced
//! instruction budget.

use ds_bench::report::Report;
use ds_bench::Budget;
use ds_stats::{percent, Table};
use ds_trace::{measure_traffic, TrafficConfig};
use ds_workloads::table1_set;

fn main() {
    let budget = Budget::from_args();
    println!("Table 1: off-chip data traffic reduced by ESP");
    println!(
        "(64 KiB 2-way write-allocate write-back L1, {} instructions max)",
        budget.max_insts * 10
    );
    println!();
    let mut t = Table::new(&["benchmark", "traffic (bytes)", "transactions", "fills", "writebacks"]);
    let config = TrafficConfig {
        // Trace experiments are functional-only, so afford 10x the
        // timing budget.
        max_insts: budget.max_insts * 10,
        ..Default::default()
    };
    for w in table1_set() {
        let prog = (w.build)(budget.scale);
        let r = measure_traffic(&prog, &config);
        t.row(&[
            w.name.to_string(),
            percent(r.bytes_eliminated()),
            percent(r.transactions_eliminated()),
            r.fills.to_string(),
            r.writebacks.to_string(),
        ]);
    }
    println!("{t}");
    println!("paper: traffic 25-50% eliminated; transactions 50-75% (never below 50%)");

    let mut report = Report::new("table1_traffic");
    report.budget(budget).table("Table 1: off-chip data traffic reduced by ESP", &t);
    report.write_if_requested();
}
