//! Ablation: D-cache write policy under ESP.
//!
//! §4.2: "we believe that this write [-no-allocate] policy is superior
//! to write-allocate in an ESP-based system (with a write-allocate
//! protocol, a write miss requires sending an inter-processor message,
//! only to overwrite the received data)". This harness measures both
//! policies on the two-node DataScalar machine.

use ds_bench::{baseline_config, Budget};
use ds_core::DsSystem;
use ds_mem::WritePolicy;
use ds_stats::{ratio, Table};
use ds_workloads::figure7_set;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: write-no-allocate vs write-allocate (DataScalar x2)");
    println!();
    let mut t = Table::new(&[
        "benchmark",
        "no-alloc IPC",
        "alloc IPC",
        "no-alloc bcasts",
        "alloc bcasts",
    ]);
    for w in figure7_set() {
        let prog = (w.build)(budget.scale);
        let run = |policy: WritePolicy| {
            let mut config = baseline_config(2, budget.max_insts);
            config.dcache.write_policy = policy;
            let mut sys = DsSystem::new(config, &prog);
            sys.run().expect("runs")
        };
        let noalloc = run(WritePolicy::WriteBackNoAllocate);
        let alloc = run(WritePolicy::WriteBackAllocate);
        t.row(&[
            w.name.to_string(),
            ratio(noalloc.ipc()),
            ratio(alloc.ipc()),
            noalloc.bus.broadcasts.to_string(),
            alloc.bus.broadcasts.to_string(),
        ]);
    }
    println!("{t}");
    println!("write-allocate turns every store miss into a broadcast whose data");
    println!("is immediately overwritten — the paper's argument for no-allocate");
}
