//! Ablation: D-cache write policy under ESP.
//!
//! §4.2: "we believe that this write [-no-allocate] policy is superior
//! to write-allocate in an ESP-based system (with a write-allocate
//! protocol, a write miss requires sending an inter-processor message,
//! only to overwrite the received data)". This harness measures both
//! policies on the two-node DataScalar machine.

use ds_bench::report::Report;
use ds_bench::{baseline_config, runner, Budget};
use ds_core::DsSystem;
use ds_mem::WritePolicy;
use ds_stats::{ratio, Table};
use ds_workloads::figure7_set;

fn main() {
    let budget = Budget::from_args();
    println!("Ablation: write-no-allocate vs write-allocate (DataScalar x2)");
    println!();
    let mut t = Table::new(&[
        "benchmark",
        "no-alloc IPC",
        "alloc IPC",
        "no-alloc bcasts",
        "alloc bcasts",
    ]);
    let set = figure7_set();
    let progs: Vec<_> = set.iter().map(|w| (w.build)(budget.scale)).collect();
    const POLICIES: [WritePolicy; 2] =
        [WritePolicy::WriteBackNoAllocate, WritePolicy::WriteBackAllocate];
    let jobs: Vec<(usize, usize)> =
        (0..set.len()).flat_map(|wi| (0..POLICIES.len()).map(move |pi| (wi, pi))).collect();
    let results = runner::map(jobs, |&(wi, pi)| {
        let mut config = baseline_config(2, budget.max_insts);
        config.dcache.write_policy = POLICIES[pi];
        let mut sys = DsSystem::new(config, &progs[wi]);
        sys.run().expect("runs")
    });
    for (wi, w) in set.iter().enumerate() {
        let (noalloc, alloc) = (&results[wi * 2], &results[wi * 2 + 1]);
        t.row(&[
            w.name.to_string(),
            ratio(noalloc.ipc()),
            ratio(alloc.ipc()),
            noalloc.bus.broadcasts.to_string(),
            alloc.bus.broadcasts.to_string(),
        ]);
    }
    println!("{t}");
    println!("write-allocate turns every store miss into a broadcast whose data");
    println!("is immediately overwritten — the paper's argument for no-allocate");

    let mut report = Report::new("ablation_write_policy");
    report.budget(budget).table("Ablation: write-no-allocate vs write-allocate", &t);
    report.write_if_requested();
}
