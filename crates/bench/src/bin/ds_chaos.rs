//! `ds-chaos` — the fault-injection matrix proving the hardened ESP
//! protocol recovers from every scheduled fault.
//!
//! ```text
//! ds-chaos [--quick] [--parallel] [--workload NAME] [--json out.json]
//! ```
//!
//! Runs one fault-free baseline per fabric, then the chaos grid: drop,
//! delay, duplicate, reorder, node-stall and seeded-random plans on the
//! bus and the ring, each with BSHR timeouts armed. For every plan the
//! run must (a) finish without tripping the forward-progress watchdog
//! and (b) commit the same instruction stream and end with the same
//! canonical D-cache contents as the fault-free baseline — ESP
//! broadcasts carry no data values, so faults may cost cycles but can
//! never change architectural state (DESIGN.md §14).
//!
//! Every run goes to *natural completion* (Tiny scale, no instruction
//! cap): a capped run stops once the slowest node crosses the cap,
//! which leaves the leaders' overshoot — and hence their canonical
//! cache contents — dependent on fault timing. Whole-program runs make
//! the equality check exact. `--quick` trims the grid instead of the
//! program.
//!
//! `--json` writes a `ds-chaos-result/v1` document (validated by
//! `obs_validate`); the process exits non-zero when any run diverges
//! or deadlocks, so the binary doubles as the CI chaos gate.

use ds_bench::report::flag_value;
use ds_bench::{baseline_config, runner};
use ds_core::{DsConfig, DsSystem};
use ds_net::{FabricKind, FaultKind, FaultPlan, FaultRule, FaultStats, StallRule};
use ds_stats::Table;
use ds_workloads::by_name;
use std::process::ExitCode;

const NODES: usize = 4;

/// One cell of the chaos grid: a named plan on one fabric.
struct PlanSpec {
    name: &'static str,
    fabric: FabricKind,
    plan: FaultPlan,
    /// Part of the `--quick` subset.
    quick: bool,
}

impl std::fmt::Debug for PlanSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The grid. Drop rules are unbounded — recovery must come from the
/// timeout/retransmit/degrade ladder, not from the plan running out of
/// budget; delay/duplicate/reorder rules are unbounded for the same
/// reason. Seeded plans exercise mixed faults plus node stalls.
fn chaos_grid() -> Vec<PlanSpec> {
    let msg_rules = |rules: Vec<FaultRule>| FaultPlan { rules, stalls: Vec::new() };
    vec![
        PlanSpec {
            name: "bus/drop-every-7",
            fabric: FabricKind::Bus,
            plan: msg_rules(vec![FaultRule::broadcasts(FaultKind::Drop, 7, u64::MAX)]),
            quick: true,
        },
        PlanSpec {
            name: "bus/delay-300-every-5",
            fabric: FabricKind::Bus,
            plan: msg_rules(vec![FaultRule::broadcasts(FaultKind::Delay(300), 5, u64::MAX)]),
            quick: true,
        },
        PlanSpec {
            name: "bus/duplicate-every-3",
            fabric: FabricKind::Bus,
            plan: msg_rules(vec![FaultRule::broadcasts(FaultKind::Duplicate(64), 3, u64::MAX)]),
            quick: false,
        },
        PlanSpec {
            name: "bus/reorder-every-11",
            fabric: FabricKind::Bus,
            plan: msg_rules(vec![FaultRule::broadcasts(FaultKind::Reorder, 11, u64::MAX)]),
            quick: false,
        },
        PlanSpec {
            name: "bus/stall-node1-400",
            fabric: FabricKind::Bus,
            plan: FaultPlan {
                rules: Vec::new(),
                stalls: vec![StallRule { node: 1, at: 5_000, cycles: 400 }],
            },
            quick: false,
        },
        PlanSpec {
            name: "bus/seeded-42",
            fabric: FabricKind::Bus,
            plan: FaultPlan::seeded(42, NODES, 6),
            quick: true,
        },
        PlanSpec {
            name: "bus/seeded-1997",
            fabric: FabricKind::Bus,
            plan: FaultPlan::seeded(1997, NODES, 6),
            quick: false,
        },
        PlanSpec {
            name: "ring/drop-every-7",
            fabric: FabricKind::Ring,
            plan: msg_rules(vec![FaultRule::broadcasts(FaultKind::Drop, 7, u64::MAX)]),
            quick: true,
        },
        PlanSpec {
            name: "ring/seeded-42",
            fabric: FabricKind::Ring,
            plan: FaultPlan::seeded(42, NODES, 6),
            quick: false,
        },
    ]
}

/// What one run of the matrix produced.
struct RunOutcome {
    cycles: u64,
    committed: u64,
    faults: FaultStats,
    lines: Vec<Vec<(u64, bool)>>,
    watchdog_fired: bool,
}

fn chaos_config(fabric: FabricKind) -> DsConfig {
    let mut c = baseline_config(NODES, 0);
    // Natural completion: the equality check needs every node to commit
    // the identical whole program (see the module docs).
    c.max_insts = None;
    c.interconnect = fabric;
    c
}

fn run_plan(config: DsConfig, prog: &ds_asm::Program) -> RunOutcome {
    let mut sys = DsSystem::new(config, prog);
    let r = sys.run().expect("workload executes");
    RunOutcome {
        cycles: r.cycles,
        committed: r.committed,
        faults: sys.fault_stats().copied().unwrap_or_default(),
        lines: sys.nodes().iter().map(|n| n.canonical_cache_lines()).collect(),
        watchdog_fired: r.deadlock.is_some(),
    }
}

fn render_json(
    workload: &str,
    baseline: &RunOutcome,
    rows: &[(String, RunOutcome, bool)],
) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(1024);
    s.push_str("{\n  \"schema\": \"ds-chaos-result/v1\",\n");
    let _ = writeln!(s, "  \"workload\": \"{workload}\",");
    let _ = writeln!(
        s,
        "  \"baseline\": {{\"cycles\": {}, \"committed\": {}}},",
        baseline.cycles, baseline.committed
    );
    s.push_str("  \"runs\": [\n");
    for (i, (plan, o, matches)) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"plan\": \"{plan}\", \"cycles\": {}, \"committed\": {}, \
             \"faults\": {{\"dropped\": {}, \"delayed\": {}, \"duplicated\": {}, \
             \"reordered\": {}}}, \"matches_baseline\": {matches}, \
             \"watchdog_fired\": {}}}",
            o.cycles,
            o.committed,
            o.faults.dropped,
            o.faults.delayed,
            o.faults.duplicated,
            o.faults.reordered,
            o.watchdog_fired
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let workload = flag_value("--workload").unwrap_or_else(|| "compress".to_string());
    let Some(w) = by_name(&workload) else {
        eprintln!("ds-chaos: unknown workload {workload:?}");
        return ExitCode::from(2);
    };
    let prog = (w.build)(ds_workloads::Scale::Tiny);

    println!("ds-chaos: fault-injection matrix ({workload}, {NODES} nodes)");
    println!();

    // Fault-free baselines, one per fabric: timing (and hence cycle
    // counts) differ across fabrics, so each faulted run is compared
    // against its own fabric's clean run.
    let baselines: Vec<RunOutcome> = [FabricKind::Bus, FabricKind::Ring]
        .iter()
        .map(|&f| run_plan(chaos_config(f), &prog))
        .collect();
    let baseline_of = |f: FabricKind| match f {
        FabricKind::Bus => &baselines[0],
        FabricKind::Ring => &baselines[1],
    };

    let mut grid = chaos_grid();
    if quick {
        grid.retain(|s| s.quick);
    }
    let outcomes = runner::map(grid.iter().collect(), |spec| {
        let mut config = chaos_config(spec.fabric);
        config.fault_plan = spec.plan.clone();
        config.bshr_timeout_cycles = Some(2_000);
        config.bshr_retry_budget = 3;
        config.watchdog_cycles = 500_000;
        run_plan(config, &prog)
    });

    let mut t = Table::new(&[
        "plan",
        "cycles",
        "slowdown",
        "dropped",
        "delayed",
        "dup",
        "reord",
        "state",
    ]);
    let mut rows: Vec<(String, RunOutcome, bool)> = Vec::with_capacity(grid.len());
    let mut failures = 0usize;
    for (spec, o) in grid.iter().zip(outcomes) {
        let base = baseline_of(spec.fabric);
        let matches = o.committed == base.committed && o.lines == base.lines;
        let ok = matches && !o.watchdog_fired;
        if !ok {
            failures += 1;
        }
        t.row(&[
            spec.name.to_string(),
            o.cycles.to_string(),
            format!("{:.2}x", o.cycles as f64 / base.cycles as f64),
            o.faults.dropped.to_string(),
            o.faults.delayed.to_string(),
            o.faults.duplicated.to_string(),
            o.faults.reordered.to_string(),
            if o.watchdog_fired {
                "DEADLOCK".to_string()
            } else if matches {
                "ok".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
        rows.push((spec.name.to_string(), o, matches));
    }
    println!("{t}");
    println!(
        "baseline: bus {} cycles / ring {} cycles, {} instructions",
        baselines[0].cycles, baselines[1].cycles, baselines[0].committed
    );
    println!("broadcasts carry no data values, so every plan must converge to the");
    println!("fault-free architectural state; only the cycle counts may move.");

    if let Some(path) = flag_value("--json") {
        let doc = render_json(&workload, &baselines[0], &rows);
        std::fs::write(&path, doc)
            .unwrap_or_else(|e| panic!("cannot write --json {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if failures > 0 {
        eprintln!("ds-chaos: {failures} of {} plans diverged or deadlocked", rows.len());
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
