//! Criterion bench for the Table 3 pipeline: a two-node DataScalar
//! timing run with broadcast/BSHR statistics collection.

use criterion::{criterion_group, criterion_main, Criterion};
use ds_bench::{run_datascalar, Budget};
use ds_workloads::by_name;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_broadcast");
    group.sample_size(10);
    for name in ["compress", "wave5"] {
        let w = by_name(name).expect("registered");
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = run_datascalar(black_box(&w), 2, Budget::quick());
                assert!(r.committed > 0);
                black_box(r)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
