//! Criterion bench for the Figure 7 pipeline: one five-system IPC
//! comparison row.

use criterion::{criterion_group, criterion_main, Criterion};
use ds_bench::{figure7_row, run_datascalar, run_traditional, Budget};
use ds_workloads::by_name;
use std::hint::black_box;

fn bench_figure7(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_ipc");
    group.sample_size(10);
    group.bench_function("compress_full_row", |b| {
        let w = by_name("compress").expect("registered");
        b.iter(|| black_box(figure7_row(&w, Budget::quick())))
    });
    group.bench_function("go_datascalar_x2", |b| {
        let w = by_name("go").expect("registered");
        b.iter(|| black_box(run_datascalar(&w, 2, Budget::quick())))
    });
    group.bench_function("go_traditional_half", |b| {
        let w = by_name("go").expect("registered");
        b.iter(|| black_box(run_traditional(&w, 2, Budget::quick())))
    });
    group.finish();
}

criterion_group!(benches, bench_figure7);
criterion_main!(benches);
