//! Criterion bench for the Table 1 pipeline: ESP traffic measurement
//! (functional cache simulation) per benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use ds_trace::{measure_traffic, TrafficConfig};
use ds_workloads::{by_name, Scale};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_traffic");
    group.sample_size(10);
    for name in ["compress", "mgrid", "li"] {
        let w = by_name(name).expect("registered");
        let prog = (w.build)(Scale::Tiny);
        let config = TrafficConfig { max_insts: 200_000, ..Default::default() };
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = measure_traffic(black_box(&prog), &config);
                assert!(r.transactions_eliminated() >= 0.5 - 1e-9);
                black_box(r)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
