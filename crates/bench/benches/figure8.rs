//! Criterion bench for the Figure 8 pipeline: one sensitivity sweep
//! point (all five systems at one knob setting).

use criterion::{criterion_group, criterion_main, Criterion};
use ds_bench::sweep::{sweep_point, Knob};
use ds_bench::Budget;
use ds_workloads::by_name;
use std::hint::black_box;

fn bench_figure8(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8_sensitivity");
    group.sample_size(10);
    let w = by_name("go").expect("registered");
    for (label, knob) in [
        ("bus_divisor_20", Knob::BusClock(20)),
        ("dcache_4k", Knob::CacheSize(4096)),
        ("ruu_64", Knob::RuuEntries(64)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(sweep_point(&w, knob, Budget::quick())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure8);
criterion_main!(benches);
