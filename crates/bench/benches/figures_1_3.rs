//! Criterion bench for the Figure 1 (MMM timeline) and Figure 3
//! (crossing-count) models.

use criterion::{criterion_group, criterion_main, Criterion};
use ds_core::{datathread, mmm};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_1_and_3");
    group.bench_function("mmm_long_reference_string", |b| {
        let owners: Vec<usize> = (0..10_000).map(|i| (i / 7) % 4).collect();
        b.iter(|| black_box(mmm::simulate(black_box(&owners), 2)))
    });
    group.bench_function("chain_crossings", |b| {
        let owners: Vec<usize> = (0..10_000).map(|i| (i / 3) % 4).collect();
        b.iter(|| {
            let c = datathread::compare_chain(black_box(&owners), 0);
            black_box(c)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
