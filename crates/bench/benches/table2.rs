//! Criterion bench for the Table 2 pipeline: page profiling,
//! replication selection, and datathread measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use ds_mem::{PageTableBuilder, Segment};
use ds_trace::{
    measure_datathreads, select_hot_pages, DatathreadConfig, PageProfile,
};
use ds_workloads::{by_name, Scale};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_datathreads");
    group.sample_size(10);
    for name in ["compress", "swim"] {
        let w = by_name(name).expect("registered");
        let prog = (w.build)(Scale::Tiny);
        group.bench_function(name, |b| {
            b.iter(|| {
                let profile = PageProfile::collect(&prog, 4096, 150_000);
                let hot = select_hot_pages(&profile, 16, 4.0);
                let mut ptb = PageTableBuilder::new(4096, 4);
                for (s, e, seg) in prog.regions() {
                    ptb.add_region(s, e, seg);
                }
                ptb.replicate_segment(Segment::Text);
                for &vpn in &hot {
                    ptb.replicate_page_of(vpn * 4096);
                }
                ptb.distribute_round_robin(1);
                let pt = ptb.build();
                let cfg = DatathreadConfig { max_insts: 150_000, ..Default::default() };
                black_box(measure_datathreads(&prog, &pt, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
