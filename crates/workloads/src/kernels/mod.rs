//! The fifteen SPEC95-analog kernels.
//!
//! Each module exposes a `WORKLOAD` registration and a `build(Scale)`
//! function. Shared emission helpers live in [`util`].

pub mod applu;
pub mod compress;
pub mod fpppp;
pub mod gcc;
pub mod go;
pub mod hydro2d;
pub mod li;
pub mod m88ksim;
pub mod mgrid;
pub mod perl;
pub mod swim;
pub mod tomcatv;
pub mod turb3d;
pub mod util;
pub mod vortex;
pub mod wave5;

#[cfg(test)]
pub(crate) mod testutil {
    use ds_asm::Program;
    use ds_cpu::FuncCore;
    use ds_mem::MemImage;

    /// Runs a kernel functionally; returns (checksum, icount, memory).
    pub fn run(prog: &Program, max: u64) -> (u64, u64, MemImage) {
        let mut mem = MemImage::new();
        prog.load(&mut mem);
        let mut cpu = FuncCore::with_stack(prog.entry, prog.stack_top);
        cpu.run(&mut mem, max).unwrap();
        assert!(cpu.halted(), "kernel did not halt in {max} instructions");
        let result = prog.symbol("result").expect("kernels expose `result`");
        (mem.read_u64(result), cpu.icount(), mem)
    }
}
