//! `gcc` — branchy graph walk (SPEC95 126.gcc analog).
//!
//! gcc's RTL passes walk pointer-rich IR graphs with data-dependent
//! control flow. The kernel builds a random directed graph of 40-byte
//! nodes (a tag plus four edge pointers) and runs depth-first searches
//! from several roots with an explicit stack, a visited table, and a
//! tag-dependent switch in the visit — heavy on hard-to-predict
//! branches and dependent loads.

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Inst, Opcode};
use rand::Rng;

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "gcc",
    analog: "126.gcc",
    class: WorkloadClass::Int,
    description: "DFS over a pointer-rich graph with a tag switch",
    build,
};

fn params(scale: Scale) -> (usize, usize) {
    // (nodes, dfs roots)
    match scale {
        Scale::Tiny => (1500, 8),
        Scale::Small => (8000, 16),
        Scale::Full => (40000, 24),
    }
}

const NODE_BYTES: u64 = 40; // tag + 4 edges

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (nodes, roots) = params(scale);
    let mut b = ProgBuilder::new();

    // Graph in a side table the program copies into its "heap".
    let pool = b.space(nodes as u64 * NODE_BYTES);
    let pool_base = b.addr_of(pool);
    let mut r = util::rng(0x6cc);
    let mut words = vec![0u64; nodes * 5];
    for i in 0..nodes {
        words[i * 5] = r.gen_range(0..4); // tag
        for e in 0..4 {
            // ~1/5 null edges keep the DFS from visiting everything at
            // once; forward+backward edges make it cyclic.
            words[i * 5 + 1 + e] = if r.gen_range(0..5) == 0 {
                0
            } else {
                pool_base + r.gen_range(0..nodes as u64) * NODE_BYTES
            };
        }
    }
    let init = b.dwords(&words);
    let visited = b.space(nodes as u64 + 8); // byte flags (rounded up)
    // Worst case every edge of every node is pushed before any pop.
    let stack = b.space(8 * (4 * nodes as u64 + 64));

    // Copy the side table into the pool.
    b.la(reg::S0, init);
    b.la(reg::S1, pool);
    counted_loop(&mut b, reg::T0, (nodes * 5) as i64, |b| {
        load(b, Opcode::Ld, reg::T1, reg::S0, 0);
        store(b, Opcode::Sd, reg::T1, reg::S1, 0);
        addi(b, reg::S0, reg::S0, 8);
        addi(b, reg::S1, reg::S1, 8);
    });

    b.li(reg::S6, 0); // checksum
    b.la(reg::S5, visited);
    b.li(reg::S7, pool_base as i64);

    // For each root: clear visited, DFS.
    let mut root_ids: Vec<u64> = (0..roots as u64).map(|k| k * (nodes as u64 / roots as u64)).collect();
    root_ids.dedup();
    for &root in &root_ids {
        // Clear the visited table.
        b.la(reg::T1, visited);
        counted_loop(&mut b, reg::T0, (nodes as i64 + 7) / 8 + 1, |b| {
            store(b, Opcode::Sd, reg::ZERO, reg::T1, 0);
            addi(b, reg::T1, reg::T1, 8);
        });
        // Push the root.
        b.la(reg::S2, stack); // stack pointer (grows up)
        b.li(reg::T2, (pool_base + root * NODE_BYTES) as i64);
        store(&mut b, Opcode::Sd, reg::T2, reg::S2, 0);
        addi(&mut b, reg::S2, reg::S2, 8);

        let loop_top = b.here();
        let done = b.label();
        let skip = b.label();
        // Pop.
        addi(&mut b, reg::S2, reg::S2, -8);
        load(&mut b, Opcode::Ld, reg::T2, reg::S2, 0); // node ptr
        // visited? index = (ptr - pool)/40
        rrr(&mut b, Opcode::Sub, reg::T3, reg::T2, reg::S7);
        b.li(reg::T4, NODE_BYTES as i64);
        rrr(&mut b, Opcode::Div, reg::T3, reg::T3, reg::T4);
        rrr(&mut b, Opcode::Add, reg::T3, reg::T3, reg::S5);
        load(&mut b, Opcode::Lbu, reg::T5, reg::T3, 0);
        b.bnez(reg::T5, skip);
        b.li(reg::T5, 1);
        store(&mut b, Opcode::Sb, reg::T5, reg::T3, 0);
        // Visit: tag switch.
        load(&mut b, Opcode::Ld, reg::T6, reg::T2, 0); // tag
        let c1 = b.label();
        let c2 = b.label();
        let visit_done = b.label();
        b.li(reg::T7, 1);
        b.br(Opcode::Beq, reg::T6, reg::T7, c1);
        b.li(reg::T7, 2);
        b.br(Opcode::Beq, reg::T6, reg::T7, c2);
        addi(&mut b, reg::S6, reg::S6, 1); // tags 0, 3
        b.j(visit_done);
        b.bind(c1);
        b.inst(Inst::rri(Opcode::Slli, reg::T7, reg::S6, 1));
        rrr(&mut b, Opcode::Xor, reg::S6, reg::S6, reg::T7);
        b.j(visit_done);
        b.bind(c2);
        addi(&mut b, reg::S6, reg::S6, 5);
        b.bind(visit_done);
        // Push non-null edges.
        for e in 0..4 {
            let no_edge = b.label();
            load(&mut b, Opcode::Ld, reg::T6, reg::T2, 8 * (e + 1));
            b.beqz(reg::T6, no_edge);
            store(&mut b, Opcode::Sd, reg::T6, reg::S2, 0);
            addi(&mut b, reg::S2, reg::S2, 8);
            b.bind(no_edge);
        }
        b.bind(skip);
        // Stack empty?
        b.la(reg::T6, stack);
        b.br(Opcode::Beq, reg::S2, reg::T6, done);
        b.j(loop_top);
        b.bind(done);
    }

    finish_with_result(&mut b, reg::S6);
    b.finish().expect("gcc assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 10_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 30_000);
    }

    #[test]
    fn visited_table_is_fully_marked_after_last_root() {
        // At least the last root itself must be marked.
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 10_000_000);
        let visited = prog.data_base + 1500 * NODE_BYTES + (1500 * 5 * 8);
        let marked: u64 = (0..1500).map(|i| mem.read_u8(visited + i) as u64).sum();
        assert!(marked > 0, "DFS marked nothing");
    }
}
