//! `wave5` — particle-in-cell gather/scatter (SPEC95 146.wave5 analog).
//!
//! wave5 is a plasma PIC code: particles gather field values at their
//! (data-dependent) grid cells, update their state, and scatter charge
//! back. The kernel keeps a particle table and a power-of-two field
//! grid; every iteration does an indexed gather, an FP update, an index
//! advance, and an indexed scatter — the irregular, data-dependent
//! addressing that distinguishes wave5 from the dense stencils.

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Inst, Opcode};

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "wave5",
    analog: "146.wave5",
    class: WorkloadClass::Fp,
    description: "particle-in-cell gather/scatter over a field grid",
    build,
};

fn params(scale: Scale) -> (usize, usize, i64) {
    // (particles, grid cells (pow2), iterations)
    match scale {
        Scale::Tiny => (1500, 1 << 11, 3),
        Scale::Small => (8000, 1 << 12, 4),
        Scale::Full => (32000, 1 << 14, 5),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (particles, cells, iters) = params(scale);
    let mask = (cells as i64 - 1) * 8; // byte-offset mask (cell-aligned)
    let mut b = ProgBuilder::new();

    // Particle table: [cell byte-offset (u64), velocity (f64)] pairs.
    // Positions are cell-sorted (PIC codes periodically sort particles
    // precisely to recover this locality), so consecutive gathers hit
    // nearby grid cells.
    let mut cells_sorted = util::random_u64s(0x3a7e5, particles, cells as u64);
    cells_sorted.sort_unstable();
    let mut ptab = Vec::with_capacity(particles * 2);
    for (i, c) in cells_sorted.iter().enumerate() {
        ptab.push(c * 8);
        ptab.push((0.25 + (i % 7) as f64 * 0.1).to_bits());
    }
    let ptab = b.dwords(&ptab);
    let field: Vec<f64> = util::random_f64s(0x3a7e6, cells).iter().map(|v| v * 0.1).collect();
    let field = b.doubles(&field);
    let consts = b.doubles(&[0.01, 0.02, 4.0]);

    b.la(reg::T0, consts);
    load(&mut b, Opcode::Fld, 0, reg::T0, 0); // c1
    load(&mut b, Opcode::Fld, 10, reg::T0, 8); // c2
    load(&mut b, Opcode::Fld, 11, reg::T0, 16); // index scale
    b.la(reg::S1, field);
    b.li(reg::S3, mask);

    counted_loop(&mut b, reg::S4, iters, |b| {
        b.la(reg::S0, ptab);
        counted_loop(b, reg::S2, particles as i64, |b| {
            load(b, Opcode::Ld, reg::T1, reg::S0, 0); // cell offset
            rrr(b, Opcode::Add, reg::T2, reg::S1, reg::T1);
            load(b, Opcode::Fld, 1, reg::T2, 0); // gather field
            load(b, Opcode::Fld, 2, reg::S0, 8); // velocity
            rrr(b, Opcode::Fmul, 3, 1, 0);
            rrr(b, Opcode::Fadd, 2, 2, 3); // vel += c1*field
            store(b, Opcode::Fsd, 2, reg::S0, 8);
            // advance cell: offset = (offset + 8*int(vel*16) + 8) & mask
            rrr(b, Opcode::Fmul, 4, 2, 11);
            b.inst(Inst::rri(Opcode::Fcvtwd, reg::T3, 4, 0));
            b.inst(Inst::rri(Opcode::Slli, reg::T3, reg::T3, 3));
            rrr(b, Opcode::Add, reg::T1, reg::T1, reg::T3);
            addi(b, reg::T1, reg::T1, 8);
            rrr(b, Opcode::And, reg::T1, reg::T1, reg::S3);
            store(b, Opcode::Sd, reg::T1, reg::S0, 0);
            // scatter: field[cell] += c2 * vel
            rrr(b, Opcode::Add, reg::T2, reg::S1, reg::T1);
            load(b, Opcode::Fld, 5, reg::T2, 0);
            rrr(b, Opcode::Fmul, 6, 2, 10);
            rrr(b, Opcode::Fadd, 5, 5, 6);
            store(b, Opcode::Fsd, 5, reg::T2, 0);
            addi(b, reg::S0, reg::S0, 16);
        });
    });

    // Checksum: sum the particle table words (positions + velocities).
    b.la(reg::S0, ptab);
    util::emit_sum_words(&mut b, reg::S0, (particles * 2) as i64, reg::S5, reg::T1, reg::T0);
    finish_with_result(&mut b, reg::S5);
    b.finish().expect("wave5 assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 3_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 20_000);
    }

    #[test]
    fn particle_offsets_stay_in_grid() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 3_000_000);
        let ptab = prog.data_base;
        for i in 0..1500u64 {
            let off = mem.read_u64(ptab + 16 * i);
            assert!(off < (1 << 11) * 8, "particle {i} escaped: {off}");
            assert_eq!(off % 8, 0);
            let vel = mem.read_f64(ptab + 16 * i + 8);
            assert!(vel.is_finite());
        }
    }
}
