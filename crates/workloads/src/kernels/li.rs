//! `li` — cons-cell pointer chasing (SPEC95 130.li analog).
//!
//! xlisp's hot loops walk cons cells. The kernel builds a pool of
//! 16-byte cells `(car, cdr)` whose `cdr` pointers follow a *shuffled*
//! permutation of the pool (so consecutive chases touch unrelated
//! lines), then traverses the list repeatedly summing `car`s — the
//! serial dependent-address chain of Figure 3, and the workload whose
//! datathread length the paper finds high because most of its small
//! data set can be replicated.

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Opcode};
use rand::seq::SliceRandom;

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "li",
    analog: "130.li",
    class: WorkloadClass::Int,
    description: "shuffled cons-cell list traversal (pointer chasing)",
    build,
};

fn params(scale: Scale) -> (usize, i64) {
    // (cells, traversals)
    match scale {
        Scale::Tiny => (2000, 6),
        Scale::Small => (8000, 12),
        Scale::Full => (32000, 25),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (cells, traversals) = params(scale);
    let mut b = ProgBuilder::new();

    // Lay the pool out in memory, then link it in shuffled order.
    let pool = b.space((cells * 16) as u64);
    let pool_base = b.addr_of(pool);
    let mut order: Vec<u64> = (0..cells as u64).collect();
    order.shuffle(&mut util::rng(0x11_59));
    let mut cell_words = vec![0u64; cells * 2];
    for w in 0..cells {
        let this = order[w] as usize;
        let next = if w + 1 < cells { pool_base + order[w + 1] * 16 } else { 0 };
        cell_words[this * 2] = (this as u64).wrapping_mul(2654435761) & 0xffff; // car
        cell_words[this * 2 + 1] = next; // cdr
    }
    // Overwrite the pool with initialised cells (space() reserved the
    // room; rewrite it as data by emitting the words afterwards is not
    // possible, so the program initialises from a side table instead).
    let init = b.dwords(&cell_words);
    let head = pool_base + order[0] * 16;

    // Copy the side table into the pool (realistic: lisp heaps are
    // built by the program, not the loader).
    b.la(reg::S0, init);
    b.la(reg::S1, pool);
    counted_loop(&mut b, reg::T0, (cells * 2) as i64, |b| {
        load(b, Opcode::Ld, reg::T1, reg::S0, 0);
        b.inst(ds_isa::Inst::store(Opcode::Sd, reg::T1, reg::S1, 0));
        addi(b, reg::S0, reg::S0, 8);
        addi(b, reg::S1, reg::S1, 8);
    });

    // Traverse.
    b.li(reg::S6, 0); // checksum
    counted_loop(&mut b, reg::S4, traversals, |b| {
        b.li(reg::S2, head as i64);
        let chase = b.here();
        load(b, Opcode::Ld, reg::T2, reg::S2, 0); // car
        rrr(b, Opcode::Add, reg::S6, reg::S6, reg::T2);
        load(b, Opcode::Ld, reg::S2, reg::S2, 8); // cdr
        b.bnez(reg::S2, chase);
    });

    finish_with_result(&mut b, reg::S6);
    b.finish().expect("li assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_expected_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 3_000_000);
        // Independently compute the expected sum of cars.
        let per_pass: u64 =
            (0..2000u64).map(|i| i.wrapping_mul(2654435761) & 0xffff).sum();
        assert_eq!(checksum, per_pass * 6);
        assert!(icount > 30_000);
    }

    #[test]
    fn chain_visits_every_cell() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 3_000_000);
        // Walk the chain in the final memory image and count cells.
        let mut order = (0..2000u64).collect::<Vec<_>>();
        order.shuffle(&mut util::rng(0x11_59));
        let mut p = prog.data_base + order[0] * 16;
        let mut seen = 0;
        while p != 0 {
            seen += 1;
            p = mem.read_u64(p + 8);
            assert!(seen <= 2000, "cycle in the list");
        }
        assert_eq!(seen, 2000);
    }
}
