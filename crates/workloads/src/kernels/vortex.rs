//! `vortex` — object-database transactions (SPEC95 147.vortex analog).
//!
//! Vortex is an OO database. The kernel keeps a table of 64-byte
//! records and a sorted `(key, record-pointer)` index; each transaction
//! binary-searches the index, follows the pointer, reads several
//! fields, computes, and writes one field back — dependent loads
//! through an index plus record updates.

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Inst, Opcode};
use rand::Rng;

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "vortex",
    analog: "147.vortex",
    class: WorkloadClass::Int,
    description: "indexed record store: binary search, read, update",
    build,
};

fn params(scale: Scale) -> (usize, usize) {
    // (records, transactions)
    match scale {
        Scale::Tiny => (2000, 3000),
        Scale::Small => (8000, 15000),
        Scale::Full => (32000, 80000),
    }
}

const REC_BYTES: u64 = 64;

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (nrec, ntx) = params(scale);
    let mut b = ProgBuilder::new();
    let mut r = util::rng(0x0507e);

    // Records: key in word 0, payload words 1..7.
    let mut keys: Vec<u64> = (0..nrec as u64).map(|i| i * 7 + 3).collect();
    let mut rec_words = Vec::with_capacity(nrec * 8);
    for &k in &keys {
        rec_words.push(k);
        for w in 0..7 {
            rec_words.push(k.wrapping_mul(w + 2) & 0xffff);
        }
    }
    let records = b.dwords(&rec_words);
    let rec_base = b.addr_of(records);
    // Sorted index: (key, ptr) pairs.
    let mut idx_words = Vec::with_capacity(nrec * 2);
    for (i, &k) in keys.iter().enumerate() {
        idx_words.push(k);
        idx_words.push(rec_base + i as u64 * REC_BYTES);
    }
    let index = b.dwords(&idx_words);
    // Transaction stream: random existing keys.
    keys.sort_unstable();
    let tx: Vec<u64> = (0..ntx).map(|_| keys[r.gen_range(0..nrec)]).collect();
    let txs = b.dwords(&tx);

    b.la(reg::S0, txs);
    b.li(reg::S1, b.addr_of(index) as i64);
    b.li(reg::S6, 0); // checksum

    counted_loop(&mut b, reg::S4, ntx as i64, |b| {
        load(b, Opcode::Ld, reg::T0, reg::S0, 0); // target key
        // Binary search: lo = 0, hi = nrec.
        b.li(reg::T1, 0);
        b.li(reg::T2, nrec as i64);
        let search = b.here();
        let found = b.label();
        let go_right = b.label();
        // mid = (lo + hi) / 2
        rrr(b, Opcode::Add, reg::T3, reg::T1, reg::T2);
        b.inst(Inst::rri(Opcode::Srli, reg::T3, reg::T3, 1));
        // entry = index + mid*16
        b.inst(Inst::rri(Opcode::Slli, reg::T4, reg::T3, 4));
        rrr(b, Opcode::Add, reg::T4, reg::T4, reg::S1);
        load(b, Opcode::Ld, reg::T5, reg::T4, 0); // key at mid
        b.br(Opcode::Beq, reg::T5, reg::T0, found);
        b.br(Opcode::Blt, reg::T5, reg::T0, go_right);
        b.mv(reg::T2, reg::T3); // hi = mid
        b.j(search);
        b.bind(go_right);
        addi(b, reg::T3, reg::T3, 1);
        b.mv(reg::T1, reg::T3); // lo = mid + 1
        b.j(search);
        b.bind(found);
        // Load the record, combine fields, update field 7.
        load(b, Opcode::Ld, reg::T6, reg::T4, 8); // record ptr
        load(b, Opcode::Ld, reg::T1, reg::T6, 8);
        load(b, Opcode::Ld, reg::T2, reg::T6, 16);
        load(b, Opcode::Ld, reg::T3, reg::T6, 24);
        rrr(b, Opcode::Add, reg::T1, reg::T1, reg::T2);
        rrr(b, Opcode::Xor, reg::T1, reg::T1, reg::T3);
        store(b, Opcode::Sd, reg::T1, reg::T6, 56);
        rrr(b, Opcode::Add, reg::S6, reg::S6, reg::T1);
        addi(b, reg::S0, reg::S0, 8);
    });

    finish_with_result(&mut b, reg::S6);
    b.finish().expect("vortex assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 10_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 50_000);
    }

    #[test]
    fn updates_land_in_field_seven() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 10_000_000);
        // Some record's last field must differ from its generated value.
        let mut changed = 0;
        for i in 0..2000u64 {
            let key = i * 7 + 3;
            let gen = key.wrapping_mul(8) & 0xffff;
            let now = mem.read_u64(prog.data_base + i * REC_BYTES + 56);
            if now != gen {
                changed += 1;
            }
        }
        assert!(changed > 100, "only {changed} records updated");
    }
}
