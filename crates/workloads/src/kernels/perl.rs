//! `perl` — chained hash table (SPEC95 134.perl analog).
//!
//! Perl scripts live in hash tables. The kernel inserts a key set into
//! a bucket-chained table (writing node fields and bucket heads), then
//! performs repeated lookups that walk the chains — a mix of hashing
//! arithmetic, dependent pointer loads, and branchy compare loops.

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Inst, Opcode};

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "perl",
    analog: "134.perl",
    class: WorkloadClass::Int,
    description: "bucket-chained hash table, insert then lookup",
    build,
};

fn params(scale: Scale) -> (usize, usize, i64) {
    // (keys, buckets (pow2), lookup passes)
    match scale {
        Scale::Tiny => (1200, 1 << 8, 4),
        Scale::Small => (6000, 1 << 10, 6),
        Scale::Full => (30000, 1 << 12, 8),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (nkeys, buckets, passes) = params(scale);
    let mut b = ProgBuilder::new();

    let keys = b.dwords(&util::random_u64s(0x9e71, nkeys, u64::MAX));
    let table = b.space((buckets * 8) as u64); // bucket heads
    let pool = b.space((nkeys * 24) as u64); // nodes: key, val, next

    b.la(reg::S0, keys);
    b.la(reg::S1, table);
    b.la(reg::S2, pool);
    b.li(reg::S3, (buckets - 1) as i64);

    // Insert phase.
    b.li(reg::S5, 0); // node index
    counted_loop(&mut b, reg::S4, nkeys as i64, |b| {
        load(b, Opcode::Ld, reg::T0, reg::S0, 0); // key
        // h = (key ^ (key >> 17)) & mask
        b.inst(Inst::rri(Opcode::Srli, reg::T1, reg::T0, 17));
        rrr(b, Opcode::Xor, reg::T1, reg::T0, reg::T1);
        rrr(b, Opcode::And, reg::T1, reg::T1, reg::S3);
        b.inst(Inst::rri(Opcode::Slli, reg::T1, reg::T1, 3));
        rrr(b, Opcode::Add, reg::T1, reg::T1, reg::S1); // &bucket
        // node init
        store(b, Opcode::Sd, reg::T0, reg::S2, 0); // key
        store(b, Opcode::Sd, reg::S5, reg::S2, 8); // val = index
        load(b, Opcode::Ld, reg::T2, reg::T1, 0); // old head
        store(b, Opcode::Sd, reg::T2, reg::S2, 16); // next
        store(b, Opcode::Sd, reg::S2, reg::T1, 0); // head = node
        addi(b, reg::S5, reg::S5, 1);
        addi(b, reg::S0, reg::S0, 8);
        addi(b, reg::S2, reg::S2, 24);
    });

    // Lookup phase.
    b.li(reg::S6, 0); // checksum
    counted_loop(&mut b, reg::S7, passes, |b| {
        b.la(reg::S0, keys);
        counted_loop(b, reg::S4, nkeys as i64, |b| {
            load(b, Opcode::Ld, reg::T0, reg::S0, 0);
            b.inst(Inst::rri(Opcode::Srli, reg::T1, reg::T0, 17));
            rrr(b, Opcode::Xor, reg::T1, reg::T0, reg::T1);
            rrr(b, Opcode::And, reg::T1, reg::T1, reg::S3);
            b.inst(Inst::rri(Opcode::Slli, reg::T1, reg::T1, 3));
            rrr(b, Opcode::Add, reg::T1, reg::T1, reg::S1);
            load(b, Opcode::Ld, reg::T2, reg::T1, 0); // p = head
            let walk = b.here();
            let found = b.label();
            load(b, Opcode::Ld, reg::T3, reg::T2, 0); // p->key
            b.br(Opcode::Beq, reg::T3, reg::T0, found);
            load(b, Opcode::Ld, reg::T2, reg::T2, 16); // p = p->next
            b.bnez(reg::T2, walk);
            b.bind(found);
            // On hit: add val; a fallen-through miss adds the last
            // node's val (keys are all present, so this is always a
            // hit in practice — but the walk code is branchy either
            // way).
            load(b, Opcode::Ld, reg::T4, reg::T2, 8);
            rrr(b, Opcode::Add, reg::S6, reg::S6, reg::T4);
            addi(b, reg::S0, reg::S0, 8);
        });
    });

    finish_with_result(&mut b, reg::S6);
    b.finish().expect("perl assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_expected_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 5_000_000);
        // Every key is found, so each pass sums 0..nkeys (assuming the
        // random keys are distinct, which the seed guarantees here).
        let per_pass: u64 = (0..1200u64).sum();
        assert_eq!(checksum, per_pass * 4);
        assert!(icount > 50_000);
    }

    #[test]
    fn keys_are_distinct() {
        let mut ks = util::random_u64s(0x9e71, 1200, u64::MAX);
        ks.sort_unstable();
        ks.dedup();
        assert_eq!(ks.len(), 1200, "seed produced duplicate keys");
    }
}
