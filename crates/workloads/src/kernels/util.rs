//! Shared emission helpers for the workload kernels.

use ds_asm::{DataRef, Label, ProgBuilder};
use ds_isa::{reg, Inst, Opcode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for input-data generation. Every kernel derives
/// its inputs from a fixed per-kernel seed so runs are reproducible.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Generates `n` pseudo-random `u64` values in `[0, bound)`.
pub fn random_u64s(seed: u64, n: usize, bound: u64) -> Vec<u64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..bound)).collect()
}

/// Generates `n` doubles in `[0, 1)`.
pub fn random_f64s(seed: u64, n: usize) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0.0..1.0)).collect()
}

/// A counted loop skeleton: emits
/// `li counter, n; top: ...body...; addi counter, -1; bnez counter, top`.
///
/// The body is emitted by the callback. `counter` must not be clobbered
/// by the body.
pub fn counted_loop(
    b: &mut ProgBuilder,
    counter: u8,
    n: i64,
    body: impl FnOnce(&mut ProgBuilder),
) {
    b.li(counter, n);
    let top = b.here();
    body(b);
    b.inst(Inst::rri(Opcode::Addi, counter, counter, -1));
    b.bnez(counter, top);
}

/// Emits the standard epilogue: stores `value_reg` to a fresh `result`
/// dword, publishes the `result` symbol, and halts.
pub fn finish_with_result(b: &mut ProgBuilder, value_reg: u8) {
    let result = b.dwords(&[0]);
    let addr = b.addr_of(result);
    b.symbol("result", addr);
    b.li(reg::K0, addr as i64);
    b.inst(Inst::store(Opcode::Sd, value_reg, reg::K0, 0));
    b.halt();
}

/// Emits a loop summing `count` u64 words starting at the address in
/// `base_reg` (clobbered) into `acc_reg` (initialised to zero), using
/// `tmp_reg` as scratch.
pub fn emit_sum_words(
    b: &mut ProgBuilder,
    base_reg: u8,
    count: i64,
    acc_reg: u8,
    tmp_reg: u8,
    counter_reg: u8,
) {
    b.li(acc_reg, 0);
    counted_loop(b, counter_reg, count, |b| {
        b.inst(Inst::load(Opcode::Ld, tmp_reg, base_reg, 0));
        b.inst(Inst::rrr(Opcode::Add, acc_reg, acc_reg, tmp_reg));
        b.inst(Inst::rri(Opcode::Addi, base_reg, base_reg, 8));
    });
}

/// Convenience: `la` into `rd` then returns the same builder (for data
/// allocated with a known ref).
pub fn la(b: &mut ProgBuilder, rd: u8, d: DataRef) {
    b.la(rd, d);
}

/// Emits `rd = rs + imm` (wrapper, for symmetry in kernel code).
pub fn addi(b: &mut ProgBuilder, rd: u8, rs: u8, imm: i32) {
    b.inst(Inst::rri(Opcode::Addi, rd, rs, imm));
}

/// Emits a three-register op.
pub fn rrr(b: &mut ProgBuilder, op: Opcode, rd: u8, rs: u8, rt: u8) {
    b.inst(Inst::rrr(op, rd, rs, rt));
}

/// Emits a load.
pub fn load(b: &mut ProgBuilder, op: Opcode, rd: u8, base: u8, disp: i32) {
    b.inst(Inst::load(op, rd, base, disp));
}

/// Emits a store.
pub fn store(b: &mut ProgBuilder, op: Opcode, value: u8, base: u8, disp: i32) {
    b.inst(Inst::store(op, value, base, disp));
}

/// A bound label pair for while-style loops: `(top, exit)`.
pub struct LoopLabels {
    /// Branch target at the top of the loop.
    pub top: Label,
    /// Exit label (bind after the loop).
    pub exit: Label,
}

/// Starts a while-style loop; the caller emits the guard and body and
/// finally binds `exit`.
pub fn open_loop(b: &mut ProgBuilder) -> LoopLabels {
    let top = b.here();
    let exit = b.label();
    LoopLabels { top, exit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_cpu::FuncCore;
    use ds_mem::MemImage;

    fn run(b: &ProgBuilder) -> (FuncCore, MemImage, ds_asm::Program) {
        let prog = b.finish().unwrap();
        let mut mem = MemImage::new();
        prog.load(&mut mem);
        let mut cpu = FuncCore::with_stack(prog.entry, prog.stack_top);
        cpu.run(&mut mem, 1_000_000).unwrap();
        assert!(cpu.halted());
        (cpu, mem, prog)
    }

    #[test]
    fn counted_loop_iterates_n_times() {
        let mut b = ProgBuilder::new();
        b.li(reg::S0, 0);
        counted_loop(&mut b, reg::T0, 7, |b| {
            addi(b, reg::S0, reg::S0, 1);
        });
        finish_with_result(&mut b, reg::S0);
        let (_, mem, prog) = run(&b);
        assert_eq!(mem.read_u64(prog.symbol("result").unwrap()), 7);
    }

    #[test]
    fn sum_words_sums() {
        let mut b = ProgBuilder::new();
        let xs = b.dwords(&[1, 2, 3, 4, 5]);
        b.la(reg::S0, xs);
        emit_sum_words(&mut b, reg::S0, 5, reg::S1, reg::T1, reg::T0);
        finish_with_result(&mut b, reg::S1);
        let (_, mem, prog) = run(&b);
        assert_eq!(mem.read_u64(prog.symbol("result").unwrap()), 15);
    }

    #[test]
    fn random_data_is_deterministic() {
        assert_eq!(random_u64s(42, 10, 100), random_u64s(42, 10, 100));
        assert_ne!(random_u64s(42, 10, 1 << 40), random_u64s(43, 10, 1 << 40));
        let f = random_f64s(7, 5);
        assert_eq!(f, random_f64s(7, 5));
        assert!(f.iter().all(|&x| (0.0..1.0).contains(&x)));
    }
}
