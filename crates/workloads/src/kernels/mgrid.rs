//! `mgrid` — 3-D multigrid smoother (SPEC95 107.mgrid analog).
//!
//! A 7-point stencil over an N³ double grid: plane strides of `N²·8`
//! bytes and row strides of `N·8` bytes give the long-strided accesses
//! that characterise mgrid (and defeat a small direct-mapped cache).

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Opcode};

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "mgrid",
    analog: "107.mgrid",
    class: WorkloadClass::Fp,
    description: "3-D 7-point stencil with plane-sized strides",
    build,
};

fn params(scale: Scale) -> (usize, i64) {
    match scale {
        Scale::Tiny => (10, 2),
        Scale::Small => (20, 3),
        Scale::Full => (32, 4),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (n, iters) = params(scale);
    let row = (n * 8) as i32;
    let plane = (n * n * 8) as i32;
    let mut b = ProgBuilder::new();
    let grid_a = b.doubles(&util::random_f64s(0x36721d, n * n * n));
    let grid_b = b.space((n * n * n * 8) as u64);
    let consts = b.doubles(&[0.5, 1.0 / 12.0]);

    b.la(reg::S0, grid_a);
    b.la(reg::S1, grid_b);
    b.la(reg::T0, consts);
    load(&mut b, Opcode::Fld, 0, reg::T0, 0); // w0
    load(&mut b, Opcode::Fld, 10, reg::T0, 8); // w1

    counted_loop(&mut b, reg::S4, iters, |b| {
        // Walk interior planes.
        addi(b, reg::T1, reg::S0, plane + row + 8);
        addi(b, reg::T2, reg::S1, plane + row + 8);
        counted_loop(b, reg::S2, (n - 2) as i64, |b| {
            counted_loop(b, reg::S3, (n - 2) as i64, |b| {
                counted_loop(b, reg::T0, (n - 2) as i64, |b| {
                    load(b, Opcode::Fld, 1, reg::T1, -8);
                    load(b, Opcode::Fld, 2, reg::T1, 8);
                    load(b, Opcode::Fld, 3, reg::T1, -row);
                    load(b, Opcode::Fld, 4, reg::T1, row);
                    load(b, Opcode::Fld, 5, reg::T1, -plane);
                    load(b, Opcode::Fld, 6, reg::T1, plane);
                    load(b, Opcode::Fld, 7, reg::T1, 0);
                    rrr(b, Opcode::Fadd, 1, 1, 2);
                    rrr(b, Opcode::Fadd, 3, 3, 4);
                    rrr(b, Opcode::Fadd, 5, 5, 6);
                    rrr(b, Opcode::Fadd, 1, 1, 3);
                    rrr(b, Opcode::Fadd, 1, 1, 5);
                    rrr(b, Opcode::Fmul, 1, 1, 10);
                    rrr(b, Opcode::Fmul, 7, 7, 0);
                    rrr(b, Opcode::Fadd, 1, 1, 7);
                    store(b, Opcode::Fsd, 1, reg::T2, 0);
                    addi(b, reg::T1, reg::T1, 8);
                    addi(b, reg::T2, reg::T2, 8);
                });
                addi(b, reg::T1, reg::T1, 16);
                addi(b, reg::T2, reg::T2, 16);
            });
            // Skip the two border rows of the next plane.
            addi(b, reg::T1, reg::T1, 2 * row);
            addi(b, reg::T2, reg::T2, 2 * row);
        });
        b.mv(reg::T5, reg::S0);
        b.mv(reg::S0, reg::S1);
        b.mv(reg::S1, reg::T5);
    });

    util::emit_sum_words(&mut b, reg::S0, (n * n * n) as i64, reg::S5, reg::T1, reg::T0);
    finish_with_result(&mut b, reg::S5);
    b.finish().expect("mgrid assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 3_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 15_000);
    }

    #[test]
    fn values_stay_bounded() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 3_000_000);
        for i in 0..(10 * 10 * 10) {
            let v = mem.read_f64(prog.data_base + 8 * i);
            assert!(v.is_finite() && v.abs() < 10.0, "grid[{i}] = {v}");
        }
    }
}
