//! `hydro2d` — 2-D hydrodynamics stencil (SPEC95 104.hydro2d analog).
//!
//! A Laplacian-diffusion update of a density grid with a per-cell
//! coefficient grid: `E = D + C ⊙ laplacian(D)`, double-buffered.
//! Three array streams (source, coefficients, destination) model
//! hydro2d's Navier-Stokes difference equations.

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Opcode};

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "hydro2d",
    analog: "104.hydro2d",
    class: WorkloadClass::Fp,
    description: "2-D diffusion stencil with a coefficient grid",
    build,
};

fn params(scale: Scale) -> (usize, i64) {
    match scale {
        Scale::Tiny => (24, 2),
        Scale::Small => (80, 3),
        Scale::Full => (128, 5),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (n, iters) = params(scale);
    let row = (n * 8) as i32;
    let mut b = ProgBuilder::new();
    let grid_d = b.doubles(&util::random_f64s(0x4d50, n * n));
    let grid_c: Vec<f64> = util::random_f64s(0x4d51, n * n).iter().map(|v| v * 0.2).collect();
    let grid_c = b.doubles(&grid_c);
    let grid_e = b.space((n * n * 8) as u64);

    b.la(reg::S0, grid_d); // src
    b.la(reg::S1, grid_c); // coefficients
    b.la(reg::S2, grid_e); // dst

    counted_loop(&mut b, reg::S4, iters, |b| {
        addi(b, reg::T1, reg::S0, row + 8);
        addi(b, reg::T2, reg::S1, row + 8);
        addi(b, reg::T3, reg::S2, row + 8);
        counted_loop(b, reg::S3, (n - 2) as i64, |b| {
            counted_loop(b, reg::T0, (n - 2) as i64, |b| {
                load(b, Opcode::Fld, 1, reg::T1, -8);
                load(b, Opcode::Fld, 2, reg::T1, 8);
                load(b, Opcode::Fld, 3, reg::T1, -row);
                load(b, Opcode::Fld, 4, reg::T1, row);
                load(b, Opcode::Fld, 5, reg::T1, 0); // centre
                rrr(b, Opcode::Fadd, 1, 1, 2);
                rrr(b, Opcode::Fadd, 3, 3, 4);
                rrr(b, Opcode::Fadd, 1, 1, 3);
                // lap = sum - 4*centre  (4*c = c+c, twice)
                rrr(b, Opcode::Fadd, 6, 5, 5);
                rrr(b, Opcode::Fadd, 6, 6, 6);
                rrr(b, Opcode::Fsub, 1, 1, 6);
                load(b, Opcode::Fld, 7, reg::T2, 0); // coefficient
                rrr(b, Opcode::Fmul, 1, 1, 7);
                rrr(b, Opcode::Fadd, 1, 1, 5);
                store(b, Opcode::Fsd, 1, reg::T3, 0);
                addi(b, reg::T1, reg::T1, 8);
                addi(b, reg::T2, reg::T2, 8);
                addi(b, reg::T3, reg::T3, 8);
            });
            addi(b, reg::T1, reg::T1, 16);
            addi(b, reg::T2, reg::T2, 16);
            addi(b, reg::T3, reg::T3, 16);
        });
        // Swap D and E.
        b.mv(reg::T5, reg::S0);
        b.mv(reg::S0, reg::S2);
        b.mv(reg::S2, reg::T5);
    });

    util::emit_sum_words(&mut b, reg::S0, (n * n) as i64, reg::S5, reg::T1, reg::T0);
    finish_with_result(&mut b, reg::S5);
    b.finish().expect("hydro2d assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 3_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 15_000);
    }

    #[test]
    fn diffusion_preserves_finiteness() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 3_000_000);
        let base = prog.data_base;
        for i in 0..(24 * 24) {
            assert!(mem.read_f64(base + 8 * i).is_finite());
        }
    }
}
