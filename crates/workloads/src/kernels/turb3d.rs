//! `turb3d` — FFT-style butterfly passes (SPEC95 125.turb3d analog).
//!
//! turb3d spends its time in 3-D FFTs. The kernel sweeps a
//! power-of-two array with doubling strides —
//! `X[i] += w · X[i + stride]` for `stride = 1, 2, 4, …` — producing
//! the power-of-two-strided access pattern (and direct-mapped conflict
//! behaviour) of an FFT without the bookkeeping.

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Inst, Opcode};

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "turb3d",
    analog: "125.turb3d",
    class: WorkloadClass::Fp,
    description: "butterfly sweeps with doubling power-of-two strides",
    build,
};

fn params(scale: Scale) -> (usize, i64) {
    // (log2 array length, passes)
    match scale {
        Scale::Tiny => (10, 2),
        Scale::Small => (14, 3),
        Scale::Full => (15, 4),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (logn, passes) = params(scale);
    let n = 1usize << logn;
    let mut b = ProgBuilder::new();
    let data: Vec<f64> = util::random_f64s(0x70b3d, n).iter().map(|v| v - 0.5).collect();
    let xs = b.doubles(&data);
    let consts = b.doubles(&[0.375]);

    b.la(reg::T0, consts);
    load(&mut b, Opcode::Fld, 0, reg::T0, 0); // w

    counted_loop(&mut b, reg::S4, passes, |b| {
        // stride (in bytes) doubles each stage: 8, 16, ..., n*4.
        b.li(reg::S0, 8);
        b.li(reg::S1, (n as i64) * 8 / 2); // max stride bytes
        let stage_top = b.here();
        {
            b.la(reg::T1, xs);
            // elements to process: n - stride_elems
            b.li(reg::T2, (n as i64) * 8);
            rrr(b, Opcode::Sub, reg::T2, reg::T2, reg::S0);
            b.inst(Inst::rri(Opcode::Srli, reg::T2, reg::T2, 3)); // count
            let inner = b.here();
            {
                rrr(b, Opcode::Add, reg::T3, reg::T1, reg::S0); // partner addr
                load(b, Opcode::Fld, 1, reg::T1, 0);
                load(b, Opcode::Fld, 2, reg::T3, 0);
                rrr(b, Opcode::Fmul, 2, 2, 0);
                rrr(b, Opcode::Fadd, 1, 1, 2);
                store(b, Opcode::Fsd, 1, reg::T1, 0);
                addi(b, reg::T1, reg::T1, 8);
                addi(b, reg::T2, reg::T2, -1);
            }
            b.bnez(reg::T2, inner);
            // stride *= 2; loop while stride <= max
            rrr(b, Opcode::Add, reg::S0, reg::S0, reg::S0);
        }
        b.br(Opcode::Bge, reg::S1, reg::S0, stage_top);
    });

    b.la(reg::S2, xs);
    util::emit_sum_words(&mut b, reg::S2, n as i64, reg::S5, reg::T1, reg::T0);
    finish_with_result(&mut b, reg::S5);
    b.finish().expect("turb3d assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 3_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 15_000);
    }

    #[test]
    fn butterfly_results_stay_finite() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 3_000_000);
        for i in 0..(1u64 << 10) {
            let v = mem.read_f64(prog.data_base + 8 * i);
            assert!(v.is_finite(), "X[{i}] = {v}");
        }
    }
}
