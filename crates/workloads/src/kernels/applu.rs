//! `applu` — SSOR solver sweep (SPEC95 110.applu analog).
//!
//! A lower-triangular SSOR-style sweep with loop-carried dependences:
//! `X[i][j] = 0.5·(X[i-1][j] + X[i][j-1]) + R[i][j]`. The dependence on
//! the freshly written west and north neighbours serialises the sweep,
//! modelling applu's wavefront structure.

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Opcode};

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "applu",
    analog: "110.applu",
    class: WorkloadClass::Fp,
    description: "SSOR wavefront sweep with loop-carried dependences",
    build,
};

fn params(scale: Scale) -> (usize, i64) {
    match scale {
        Scale::Tiny => (32, 3),
        Scale::Small => (96, 3),
        Scale::Full => (192, 5),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (n, iters) = params(scale);
    let row = (n * 8) as i32;
    let mut b = ProgBuilder::new();
    let grid_x = b.doubles(&util::random_f64s(0xa991, n * n));
    let grid_r: Vec<f64> = util::random_f64s(0xa992, n * n).iter().map(|v| v * 0.01).collect();
    let grid_r = b.doubles(&grid_r);
    let consts = b.doubles(&[0.5, 0.9]);

    b.la(reg::S0, grid_x);
    b.la(reg::S1, grid_r);
    b.la(reg::T0, consts);
    load(&mut b, Opcode::Fld, 0, reg::T0, 0); // 0.5
    load(&mut b, Opcode::Fld, 10, reg::T0, 8); // damping

    counted_loop(&mut b, reg::S4, iters, |b| {
        addi(b, reg::T1, reg::S0, row + 8);
        addi(b, reg::T2, reg::S1, row + 8);
        counted_loop(b, reg::S2, (n - 2) as i64, |b| {
            counted_loop(b, reg::T0, (n - 2) as i64, |b| {
                load(b, Opcode::Fld, 1, reg::T1, -row); // north (this sweep)
                load(b, Opcode::Fld, 2, reg::T1, -8); // west (this sweep)
                rrr(b, Opcode::Fadd, 3, 1, 2);
                rrr(b, Opcode::Fmul, 3, 3, 0);
                load(b, Opcode::Fld, 4, reg::T2, 0);
                rrr(b, Opcode::Fadd, 3, 3, 4);
                rrr(b, Opcode::Fmul, 3, 3, 10); // damp to keep bounded
                store(b, Opcode::Fsd, 3, reg::T1, 0);
                addi(b, reg::T1, reg::T1, 8);
                addi(b, reg::T2, reg::T2, 8);
            });
            addi(b, reg::T1, reg::T1, 16);
            addi(b, reg::T2, reg::T2, 16);
        });
    });

    util::emit_sum_words(&mut b, reg::S0, (n * n) as i64, reg::S5, reg::T1, reg::T0);
    finish_with_result(&mut b, reg::S5);
    b.finish().expect("applu assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 3_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 15_000);
    }

    #[test]
    fn wavefront_stays_bounded() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 3_000_000);
        for i in 0..(32 * 32) {
            let v = mem.read_f64(prog.data_base + 8 * i);
            assert!(v.is_finite() && v.abs() < 100.0, "X[{i}] = {v}");
        }
    }
}
