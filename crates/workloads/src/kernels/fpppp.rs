//! `fpppp` — enormous straight-line FP blocks (SPEC95 145.fpppp
//! analog).
//!
//! fpppp (Gaussian two-electron integrals) is famous for basic blocks
//! of hundreds of FP instructions and a text footprint that overwhelms
//! small I-caches. The kernel generates one deterministic ~3000-
//! instruction straight-line block of loads, multiplies, adds and
//! stores over a small working array, called repeatedly — text-bound,
//! exactly as the paper observes (fpppp replicates text heavily and
//! shows code-datathread behaviour).

use super::util::{self, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Opcode};
use rand::Rng;

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "fpppp",
    analog: "145.fpppp",
    class: WorkloadClass::Fp,
    description: "3000-instruction straight-line FP blocks (text-heavy)",
    build,
};

fn params(scale: Scale) -> (usize, i64) {
    // (block length in instruction groups, repetitions)
    match scale {
        Scale::Tiny => (750, 8),
        Scale::Small => (750, 120),
        Scale::Full => (750, 800),
    }
}

const ARRAY_LEN: usize = 128;

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (groups, reps) = params(scale);
    let mut b = ProgBuilder::new();
    let data: Vec<f64> =
        util::random_f64s(0xf9999, ARRAY_LEN).iter().map(|v| 0.5 + v * 0.5).collect();
    let arr = b.doubles(&data);

    // The huge basic block lives in a function.
    let block = b.label();
    let entry = b.label();
    b.j(entry);
    b.bind(block);
    {
        // Deterministic pseudo-random instruction soup: each "group" is
        // fld / fmul / fadd / fsd touching rotating array slots. The
        // multiply-by-<1 then add keeps everything bounded.
        let mut r = util::rng(0xf0f0);
        b.la(reg::T0, arr);
        for g in 0..groups {
            let src = (r.gen_range(0..ARRAY_LEN) * 8) as i32;
            let dst = ((g * 37) % ARRAY_LEN * 8) as i32;
            let fa = 1 + (g % 10) as u8;
            let fb = 11 + (g % 9) as u8;
            load(&mut b, Opcode::Fld, fa, reg::T0, src);
            rrr(&mut b, Opcode::Fmul, fb, fa, 0); // scale down
            rrr(&mut b, Opcode::Fadd, fb, fb, 21);
            store(&mut b, Opcode::Fsd, fb, reg::T0, dst);
        }
        b.ret();
    }
    b.bind(entry);
    // f0 = 0.5 (damping), f21 = 0.125 (offset).
    let consts = b.doubles(&[0.5, 0.125]);
    b.la(reg::T1, consts);
    load(&mut b, Opcode::Fld, 0, reg::T1, 0);
    load(&mut b, Opcode::Fld, 21, reg::T1, 8);
    counted_loop(&mut b, reg::S4, reps, |b| {
        b.call(block);
    });

    b.la(reg::S0, arr);
    util::emit_sum_words(&mut b, reg::S0, ARRAY_LEN as i64, reg::S5, reg::T1, reg::T0);
    finish_with_result(&mut b, reg::S5);
    b.finish().expect("fpppp assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 3_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 20_000);
    }

    #[test]
    fn text_exceeds_a_16k_icache() {
        let prog = build(Scale::Tiny);
        assert!(
            prog.text_bytes() > 16 * 1024,
            "fpppp must be text-heavy, got {} bytes",
            prog.text_bytes()
        );
    }

    #[test]
    fn array_stays_bounded() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 3_000_000);
        for i in 0..ARRAY_LEN as u64 {
            let v = mem.read_f64(prog.data_base + 8 * i);
            assert!(v.is_finite() && v.abs() <= 2.0, "arr[{i}] = {v}");
        }
    }
}
