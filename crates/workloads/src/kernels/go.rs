//! `go` — board-position evaluation (SPEC95 099.go analog).
//!
//! go (the game player) is dominated by branchy integer pattern
//! evaluation over a small board — the paper's example of a code with a
//! small data set and hard control flow. The kernel sweeps a padded
//! 19×19 board, scoring each point from its four neighbours with a
//! stone-colour switch, mutating occasional points between passes, and
//! accumulating per-point scores.

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Opcode};
use rand::Rng;

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "go",
    analog: "099.go",
    class: WorkloadClass::Int,
    description: "branchy 19x19 board evaluation passes",
    build,
};

const SIDE: usize = 21; // 19 + sentinel border
const BOARD_BYTES: usize = SIDE * SIDE;

fn params(scale: Scale) -> (i64, usize) {
    // (evaluation passes, boards in the game-tree pool)
    match scale {
        Scale::Tiny => (60, 8),
        Scale::Small => (400, 80),
        Scale::Full => (2500, 200),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (passes, nboards) = params(scale);
    let mut b = ProgBuilder::new();
    let mut r = util::rng(0x60);

    // A pool of candidate positions (the "game tree"); each pass
    // evaluates one. Board bytes: 0 empty, 1 black, 2 white; border 3.
    let mut boards = vec![0u8; BOARD_BYTES * nboards];
    for (i, cell) in boards.iter_mut().enumerate() {
        let p = i % BOARD_BYTES;
        let (row, col) = (p / SIDE, p % SIDE);
        *cell = if row == 0 || col == 0 || row == SIDE - 1 || col == SIDE - 1 {
            3
        } else {
            [0, 0, 1, 2][r.gen_range(0..4usize)]
        };
    }
    let boards = b.bytes(&boards);
    let scores = b.space((SIDE * SIDE * 8) as u64);

    b.la(reg::S0, boards);
    b.la(reg::S1, scores);
    b.li(reg::S6, 0); // checksum
    b.li(reg::S5, 0); // current board offset
    b.li(reg::S7, (BOARD_BYTES * nboards) as i64); // pool size

    counted_loop(&mut b, reg::S4, passes, |b| {
        // Walk the interior points of the current board.
        rrr(b, Opcode::Add, reg::T1, reg::S0, reg::S5);
        addi(b, reg::T1, reg::T1, (SIDE + 1) as i32);
        addi(b, reg::T2, reg::S1, ((SIDE + 1) * 8) as i32);
        counted_loop(b, reg::S2, (SIDE - 2) as i64, |b| {
            counted_loop(b, reg::S3, (SIDE - 2) as i64, |b| {
                load(b, Opcode::Lbu, reg::T0, reg::T1, 0); // stone
                load(b, Opcode::Lbu, reg::T3, reg::T1, -1); // west
                load(b, Opcode::Lbu, reg::T4, reg::T1, 1); // east
                load(b, Opcode::Lbu, reg::T5, reg::T1, -(SIDE as i32)); // north
                load(b, Opcode::Lbu, reg::T6, reg::T1, SIDE as i32); // south
                let empty = b.label();
                let stone = b.label();
                let scored = b.label();
                b.beqz(reg::T0, empty);
                b.j(stone);
                // Empty point: score = number of adjacent black stones
                // minus white (liberty-flavoured pattern count).
                b.bind(empty);
                b.li(reg::T7, 0);
                for n in [reg::T3, reg::T4, reg::T5, reg::T6] {
                    let not_black = b.label();
                    let done_n = b.label();
                    b.li(reg::T8, 1);
                    b.br(Opcode::Bne, n, reg::T8, not_black);
                    addi(b, reg::T7, reg::T7, 2);
                    b.j(done_n);
                    b.bind(not_black);
                    b.li(reg::T8, 2);
                    let skip = b.label();
                    b.br(Opcode::Bne, n, reg::T8, skip);
                    addi(b, reg::T7, reg::T7, -1);
                    b.bind(skip);
                    b.bind(done_n);
                }
                b.j(scored);
                // Stone: count same-colour neighbours (chain strength)
                // and liberties (empty neighbours).
                b.bind(stone);
                b.li(reg::T7, 0);
                for n in [reg::T3, reg::T4, reg::T5, reg::T6] {
                    let not_same = b.label();
                    b.br(Opcode::Bne, n, reg::T0, not_same);
                    addi(b, reg::T7, reg::T7, 3);
                    b.bind(not_same);
                    let not_empty = b.label();
                    b.bnez(n, not_empty);
                    addi(b, reg::T7, reg::T7, 1);
                    b.bind(not_empty);
                }
                b.bind(scored);
                // scores[p] += score; checksum += score.
                load(b, Opcode::Ld, reg::T8, reg::T2, 0);
                rrr(b, Opcode::Add, reg::T8, reg::T8, reg::T7);
                store(b, Opcode::Sd, reg::T8, reg::T2, 0);
                rrr(b, Opcode::Add, reg::S6, reg::S6, reg::T7);
                // Occasionally flip a point: if (score + pass) % 13 == 0
                // rotate its colour — keeps passes from being identical.
                rrr(b, Opcode::Add, reg::T8, reg::T7, reg::S4);
                b.li(reg::T9, 13);
                rrr(b, Opcode::Rem, reg::T8, reg::T8, reg::T9);
                let no_flip = b.label();
                b.bnez(reg::T8, no_flip);
                addi(b, reg::T0, reg::T0, 1);
                b.li(reg::T9, 3);
                rrr(b, Opcode::Rem, reg::T0, reg::T0, reg::T9);
                store(b, Opcode::Sb, reg::T0, reg::T1, 0);
                b.bind(no_flip);
                addi(b, reg::T1, reg::T1, 1);
                addi(b, reg::T2, reg::T2, 8);
            });
            addi(b, reg::T1, reg::T1, 2);
            addi(b, reg::T2, reg::T2, 16);
        });
        // Advance to the next board in the pool (wrapping).
        addi(b, reg::S5, reg::S5, BOARD_BYTES as i32);
        let no_wrap = b.label();
        b.br(Opcode::Blt, reg::S5, reg::S7, no_wrap);
        b.li(reg::S5, 0);
        b.bind(no_wrap);
    });

    finish_with_result(&mut b, reg::S6);
    b.finish().expect("go assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 5_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 50_000);
    }

    #[test]
    fn board_cells_stay_valid() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 5_000_000);
        for i in 0..(BOARD_BYTES * 8) as u64 {
            let c = mem.read_u8(prog.data_base + i);
            assert!(c <= 3, "board byte {i} = {c}");
        }
    }

    #[test]
    fn data_set_is_small_relative_to_other_benchmarks() {
        // go's defining property: a small data set (Table 2 replicates
        // most of it), though big enough to exercise the 16 KiB L1.
        let prog = build(Scale::Tiny);
        assert!(prog.data.len() < 64 * 1024, "go data should stay small");
    }
}
