//! `swim` — shallow-water stencil (SPEC95 102.swim analog).
//!
//! Three N×N grids (u, v, p) updated from each other's neighbours, the
//! classic shallow-water equations structure. The three interleaved
//! array streams at matching offsets are exactly the access pattern the
//! paper credits with *cutting* datathreads in the FP codes
//! ("interleaved accesses to arrays residing at different processors,
//! e.g. `c[i] = a[i] + b[i]`").

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Opcode};

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "swim",
    analog: "102.swim",
    class: WorkloadClass::Fp,
    description: "shallow-water stencil over three interleaved grids",
    build,
};

fn params(scale: Scale) -> (usize, i64) {
    match scale {
        Scale::Tiny => (24, 2),
        Scale::Small => (80, 3),
        Scale::Full => (128, 5),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (n, iters) = params(scale);
    let row = (n * 8) as i32;
    let mut b = ProgBuilder::new();
    let grid_u = b.doubles(&util::random_f64s(0x57171, n * n));
    let grid_v = b.doubles(&util::random_f64s(0x57172, n * n));
    let grid_p = b.doubles(&util::random_f64s(0x57173, n * n));
    let consts = b.doubles(&[0.05, 0.02]);

    b.la(reg::S0, grid_u);
    b.la(reg::S1, grid_v);
    b.la(reg::S2, grid_p);
    b.la(reg::T0, consts);
    load(&mut b, Opcode::Fld, 0, reg::T0, 0); // f0 = c1
    load(&mut b, Opcode::Fld, 10, reg::T0, 8); // f10 = c2

    counted_loop(&mut b, reg::S4, iters, |b| {
        addi(b, reg::T1, reg::S0, row + 8); // &u[1][1]
        addi(b, reg::T2, reg::S1, row + 8); // &v[1][1]
        addi(b, reg::T3, reg::S2, row + 8); // &p[1][1]
        counted_loop(b, reg::S3, (n - 2) as i64, |b| {
            counted_loop(b, reg::T0, (n - 2) as i64, |b| {
                // u += c1 * (p[j+1] - p[j-1]) + c2 * v
                load(b, Opcode::Fld, 1, reg::T3, 8);
                load(b, Opcode::Fld, 2, reg::T3, -8);
                rrr(b, Opcode::Fsub, 3, 1, 2);
                rrr(b, Opcode::Fmul, 3, 3, 0);
                load(b, Opcode::Fld, 4, reg::T2, 0);
                rrr(b, Opcode::Fmul, 5, 4, 10);
                rrr(b, Opcode::Fadd, 3, 3, 5);
                load(b, Opcode::Fld, 6, reg::T1, 0);
                rrr(b, Opcode::Fadd, 6, 6, 3);
                store(b, Opcode::Fsd, 6, reg::T1, 0);
                // v += c1 * (p[i+1] - p[i-1]) + c2 * u
                load(b, Opcode::Fld, 1, reg::T3, row);
                load(b, Opcode::Fld, 2, reg::T3, -row);
                rrr(b, Opcode::Fsub, 3, 1, 2);
                rrr(b, Opcode::Fmul, 3, 3, 0);
                rrr(b, Opcode::Fmul, 5, 6, 10);
                rrr(b, Opcode::Fadd, 3, 3, 5);
                load(b, Opcode::Fld, 7, reg::T2, 0);
                rrr(b, Opcode::Fadd, 7, 7, 3);
                store(b, Opcode::Fsd, 7, reg::T2, 0);
                // p -= c2 * (u[j+1] - u[j-1] + v[i+1] - v[i-1])
                load(b, Opcode::Fld, 1, reg::T1, 8);
                load(b, Opcode::Fld, 2, reg::T1, -8);
                rrr(b, Opcode::Fsub, 3, 1, 2);
                load(b, Opcode::Fld, 4, reg::T2, row);
                load(b, Opcode::Fld, 5, reg::T2, -row);
                rrr(b, Opcode::Fsub, 4, 4, 5);
                rrr(b, Opcode::Fadd, 3, 3, 4);
                rrr(b, Opcode::Fmul, 3, 3, 10);
                load(b, Opcode::Fld, 8, reg::T3, 0);
                rrr(b, Opcode::Fsub, 8, 8, 3);
                store(b, Opcode::Fsd, 8, reg::T3, 0);
                addi(b, reg::T1, reg::T1, 8);
                addi(b, reg::T2, reg::T2, 8);
                addi(b, reg::T3, reg::T3, 8);
            });
            // Skip the two border columns.
            addi(b, reg::T1, reg::T1, 16);
            addi(b, reg::T2, reg::T2, 16);
            addi(b, reg::T3, reg::T3, 16);
        });
    });

    util::emit_sum_words(&mut b, reg::S2, (n * n) as i64, reg::S5, reg::T1, reg::T0);
    finish_with_result(&mut b, reg::S5);
    b.finish().expect("swim assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 3_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 20_000);
    }

    #[test]
    fn grids_stay_finite() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 3_000_000);
        let base = prog.data_base;
        for i in 0..(3 * 24 * 24) {
            let v = mem.read_f64(base + 8 * i);
            assert!(v.is_finite(), "grid word {i} became {v}");
        }
    }
}
