//! `compress` — LZW-style hash compression loop (SPEC95 129.compress
//! analog).
//!
//! compress is the paper's star benchmark: it "issues almost as many
//! stores as loads, which never have to go off-chip in a DataScalar
//! system", nearly doubling IPC over the traditional machine. The
//! kernel consumes a byte stream, maintains a rolling code, probes an
//! open hash table of (key, code) pairs, inserts on miss, and writes an
//! output byte per input byte — keeping the store:load ratio close to
//! compress's.

use super::util::{self, addi, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Inst, Opcode};
use rand::Rng;

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "compress",
    analog: "129.compress",
    class: WorkloadClass::Int,
    description: "LZW hash loop, ~1 store per load",
    build,
};

fn params(scale: Scale) -> (usize, usize) {
    // (input bytes, hash-table slots (pow2))
    match scale {
        Scale::Tiny => (3000, 1 << 10),
        Scale::Small => (24000, 1 << 13),
        Scale::Full => (120_000, 1 << 14),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (len, slots) = params(scale);
    let mut b = ProgBuilder::new();

    // Skewed input: long runs plus noise, like text being compressed.
    let mut r = util::rng(0xc0405);
    let mut input = Vec::with_capacity(len);
    let mut current = b'a';
    for _ in 0..len {
        if r.gen_range(0..8) == 0 {
            current = r.gen_range(b'a'..=b'z');
        }
        input.push(current);
    }
    let input = b.bytes(&input);
    let table = b.space((slots * 16) as u64); // (key, code) pairs
    let output = b.space(len as u64);
    let output_addr = b.addr_of(output);
    b.symbol("output", output_addr);

    b.la(reg::S0, input);
    b.la(reg::S1, table);
    b.la(reg::S2, output);
    b.li(reg::S3, len as i64); // remaining
    b.li(reg::S4, (slots - 1) as i64); // hash mask
    b.li(reg::S5, 0); // rolling state
    b.li(reg::S6, 0); // checksum accumulator
    b.li(reg::S7, 0); // next code

    let top = b.here();
    let miss = b.label();
    let next = b.label();
    {
        load(&mut b, Opcode::Lbu, reg::T0, reg::S0, 0); // c = *in
        // state = ((state << 5) ^ c)
        b.inst(Inst::rri(Opcode::Slli, reg::T1, reg::S5, 5));
        rrr(&mut b, Opcode::Xor, reg::S5, reg::T1, reg::T0);
        // h = state & mask; entry = table + h*16
        rrr(&mut b, Opcode::And, reg::T2, reg::S5, reg::S4);
        b.inst(Inst::rri(Opcode::Slli, reg::T2, reg::T2, 4));
        rrr(&mut b, Opcode::Add, reg::T2, reg::T2, reg::S1);
        load(&mut b, Opcode::Ld, reg::T3, reg::T2, 0); // key
        b.br(Opcode::Bne, reg::T3, reg::S5, miss);
        // Hit: emit the stored code's low byte.
        load(&mut b, Opcode::Ld, reg::T4, reg::T2, 8);
        b.j(next);
        b.bind(miss);
        // Miss: install (state, next_code), emit the literal.
        store(&mut b, Opcode::Sd, reg::S5, reg::T2, 0);
        store(&mut b, Opcode::Sd, reg::S7, reg::T2, 8);
        addi(&mut b, reg::S7, reg::S7, 1);
        b.mv(reg::T4, reg::T0);
        b.bind(next);
        store(&mut b, Opcode::Sb, reg::T4, reg::S2, 0);
        rrr(&mut b, Opcode::Add, reg::S6, reg::S6, reg::T4);
        addi(&mut b, reg::S0, reg::S0, 1);
        addi(&mut b, reg::S2, reg::S2, 1);
        addi(&mut b, reg::S3, reg::S3, -1);
    }
    b.bnez(reg::S3, top);

    finish_with_result(&mut b, reg::S6);
    b.finish().expect("compress assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;
    use ds_cpu::{FuncCore, TraceSource};
    use ds_mem::MemImage;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 3_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 30_000);
    }

    #[test]
    fn store_to_load_ratio_is_high() {
        // The paper's compress observation needs stores ~= loads.
        let prog = build(Scale::Tiny);
        let mut mem = MemImage::new();
        prog.load(&mut mem);
        let mut trace = TraceSource::new(FuncCore::with_stack(prog.entry, prog.stack_top), mem);
        let (mut loads, mut stores) = (0u64, 0u64);
        let mut i = 0;
        while let Some(rec) = trace.get(i).unwrap() {
            if rec.is_load() {
                loads += 1;
            } else if rec.is_store() {
                stores += 1;
            }
            i += 1;
            trace.trim(i);
        }
        let ratio = stores as f64 / loads as f64;
        assert!(ratio > 0.5, "stores/loads = {ratio:.2}, want compress-like (> 0.5)");
    }

    #[test]
    fn output_is_produced() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 3_000_000);
        let out_base = prog.symbol("output").unwrap();
        let some: u64 = (0..100).map(|i| mem.read_u8(out_base + i) as u64).sum();
        assert!(some > 0, "no output written at {out_base:#x}");
    }
}
