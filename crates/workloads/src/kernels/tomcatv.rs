//! `tomcatv` — 2-D mesh relaxation (SPEC95 101.tomcatv analog).
//!
//! Two N×N double-precision grids; each iteration computes a four-point
//! average of one grid's interior into the other, then swaps roles.
//! The two interleaved grid streams and row-strided neighbours model
//! tomcatv's vectorisable mesh-generation sweeps.

use super::util::{self, addi, counted_loop, finish_with_result, load, rrr, store};
use crate::{Scale, Workload, WorkloadClass};
use ds_asm::{ProgBuilder, Program};
use ds_isa::{reg, Opcode};

/// Registration.
pub const WORKLOAD: Workload = Workload {
    name: "tomcatv",
    analog: "101.tomcatv",
    class: WorkloadClass::Fp,
    description: "2-D mesh relaxation over two interleaved grids",
    build,
};

fn params(scale: Scale) -> (usize, i64) {
    match scale {
        Scale::Tiny => (24, 2),
        Scale::Small => (96, 3),
        Scale::Full => (128, 6),
    }
}

/// Builds the kernel at `scale`.
pub fn build(scale: Scale) -> Program {
    let (n, iters) = params(scale);
    let row = (n * 8) as i32;
    let mut b = ProgBuilder::new();
    let grid_a = b.doubles(&util::random_f64s(0x70_c47, n * n));
    let grid_b = b.space((n * n * 8) as u64);
    let consts = b.doubles(&[0.25]);

    b.la(reg::S0, grid_a); // src
    b.la(reg::S1, grid_b); // dst
    b.la(reg::T0, consts);
    load(&mut b, Opcode::Fld, 0, reg::T0, 0); // f0 = 0.25

    counted_loop(&mut b, reg::S4, iters, |b| {
        // Row pointers start at row 1.
        addi(b, reg::T1, reg::S0, row);
        addi(b, reg::T2, reg::S1, row);
        counted_loop(b, reg::S2, (n - 2) as i64, |b| {
            addi(b, reg::T3, reg::T1, 8);
            addi(b, reg::T4, reg::T2, 8);
            counted_loop(b, reg::T0, (n - 2) as i64, |b| {
                load(b, Opcode::Fld, 1, reg::T3, -8); // west
                load(b, Opcode::Fld, 2, reg::T3, 8); // east
                load(b, Opcode::Fld, 3, reg::T3, -row); // north
                load(b, Opcode::Fld, 4, reg::T3, row); // south
                rrr(b, Opcode::Fadd, 5, 1, 2);
                rrr(b, Opcode::Fadd, 6, 3, 4);
                rrr(b, Opcode::Fadd, 5, 5, 6);
                rrr(b, Opcode::Fmul, 5, 5, 0);
                store(b, Opcode::Fsd, 5, reg::T4, 0);
                addi(b, reg::T3, reg::T3, 8);
                addi(b, reg::T4, reg::T4, 8);
            });
            addi(b, reg::T1, reg::T1, row);
            addi(b, reg::T2, reg::T2, row);
        });
        // Swap src and dst.
        b.mv(reg::T5, reg::S0);
        b.mv(reg::S0, reg::S1);
        b.mv(reg::S1, reg::T5);
    });

    // Checksum: integer-sum the final grid's raw bits.
    util::emit_sum_words(&mut b, reg::S0, (n * n) as i64, reg::S5, reg::T1, reg::T0);
    finish_with_result(&mut b, reg::S5);
    b.finish().expect("tomcatv assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run;

    #[test]
    fn halts_with_nonzero_checksum() {
        let prog = build(Scale::Tiny);
        let (checksum, icount, _) = run(&prog, 2_000_000);
        assert_ne!(checksum, 0);
        assert!(icount > 10_000, "only {icount} instructions");
    }

    #[test]
    fn interior_is_smoothed_and_bounded() {
        let prog = build(Scale::Tiny);
        let (_, _, mem) = run(&prog, 2_000_000);
        // All grid values must remain finite and within [0, 1].
        let base = prog.data_base;
        for i in 0..(24 * 24) {
            let v = mem.read_f64(base + 8 * i);
            assert!(v.is_finite() && (0.0..=1.0).contains(&v), "grid[{i}] = {v}");
        }
    }
}
