//! Synthetic SPEC95-stand-in workloads for the DataScalar
//! reproduction.
//!
//! The paper evaluates unmodified SPEC95 binaries; those are
//! proprietary and need a C toolchain for a new ISA, so this crate
//! provides fifteen hand-built DS-1 kernels, one per benchmark the
//! paper uses, each engineered to reproduce the *memory behaviour* the
//! paper's analysis leans on (see `DESIGN.md`, substitution 1):
//!
//! | kernel | SPEC95 analog | behaviour captured |
//! |---|---|---|
//! | `tomcatv` | 101.tomcatv | 2-D mesh relaxation, two interleaved grids |
//! | `swim` | 102.swim | shallow-water stencil over three grids |
//! | `hydro2d` | 104.hydro2d | 2-D hydrodynamics stencil |
//! | `mgrid` | 107.mgrid | 3-D 7-point stencil, plane-strided |
//! | `applu` | 110.applu | SSOR sweep with loop-carried dependences |
//! | `m88ksim` | 124.m88ksim | bytecode interpreter, dispatch table |
//! | `turb3d` | 125.turb3d | FFT-style butterflies, power-of-two strides |
//! | `gcc` | 126.gcc | branchy graph walk with an explicit stack |
//! | `compress` | 129.compress | LZW hash loop, ~1 store per load |
//! | `li` | 130.li | cons-cell pointer chasing |
//! | `perl` | 134.perl | string hash table, insert/lookup mix |
//! | `fpppp` | 145.fpppp | huge straight-line FP blocks (text-heavy) |
//! | `wave5` | 146.wave5 | particle-in-cell gather/scatter |
//! | `vortex` | 147.vortex | record/index database transactions |
//! | `go` | 099.go | board evaluation, branchy integer, small data |
//!
//! Every kernel is deterministic (inputs are generated with a fixed
//! seed), halts, and leaves a checksum in memory at the `result`
//! symbol so simulators can be cross-checked.
//!
//! # Examples
//!
//! ```
//! use ds_workloads::{by_name, Scale};
//!
//! let w = by_name("compress").unwrap();
//! let prog = (w.build)(Scale::Tiny);
//! assert!(prog.symbol("result").is_some());
//! ```

mod kernels;

pub use kernels::*;

use ds_asm::Program;

/// Problem-size scaling of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Seconds-fast functional runs (unit tests): ~10⁴–10⁵ instructions.
    Tiny,
    /// Timing-simulation size: ~10⁵–10⁶ instructions, working sets past
    /// the L1.
    Small,
    /// Full experiment size: multi-million instructions.
    Full,
}

/// Integer or floating-point benchmark (SPEC's CINT/CFP split; the
/// paper discusses the two classes separately in Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Integer benchmark.
    Int,
    /// Floating-point benchmark.
    Fp,
}

/// A registered workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name (the SPEC95 benchmark's name).
    pub name: &'static str,
    /// The SPEC95 benchmark it stands in for.
    pub analog: &'static str,
    /// CINT or CFP.
    pub class: WorkloadClass,
    /// One-line description of the memory behaviour it models.
    pub description: &'static str,
    /// Builds the program at a given scale.
    pub build: fn(Scale) -> Program,
}

/// All fifteen workloads, in the paper's Table 1 order plus `go`.
pub fn all() -> Vec<Workload> {
    vec![
        kernels::tomcatv::WORKLOAD,
        kernels::swim::WORKLOAD,
        kernels::hydro2d::WORKLOAD,
        kernels::mgrid::WORKLOAD,
        kernels::applu::WORKLOAD,
        kernels::m88ksim::WORKLOAD,
        kernels::turb3d::WORKLOAD,
        kernels::gcc::WORKLOAD,
        kernels::compress::WORKLOAD,
        kernels::li::WORKLOAD,
        kernels::perl::WORKLOAD,
        kernels::fpppp::WORKLOAD,
        kernels::wave5::WORKLOAD,
        kernels::vortex::WORKLOAD,
        kernels::go::WORKLOAD,
    ]
}

/// The six benchmarks of the paper's timing experiments (Figure 7):
/// go, mgrid, applu, compress, turb3d, wave5.
pub fn figure7_set() -> Vec<Workload> {
    ["go", "mgrid", "applu", "compress", "turb3d", "wave5"]
        .iter()
        .map(|n| by_name(n).expect("figure-7 kernel registered"))
        .collect()
}

/// The fourteen benchmarks of Table 1/Table 2 (everything but `go`).
pub fn table1_set() -> Vec<Workload> {
    all().into_iter().filter(|w| w.name != "go").collect()
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_cpu::FuncCore;
    use ds_mem::MemImage;

    /// Runs a program functionally to completion; returns the checksum
    /// at `result` and the instruction count.
    pub(crate) fn run_checksum(prog: &Program, max: u64) -> (u64, u64) {
        let mut mem = MemImage::new();
        prog.load(&mut mem);
        let mut cpu = FuncCore::with_stack(prog.entry, prog.stack_top);
        cpu.run(&mut mem, max).unwrap();
        assert!(cpu.halted(), "workload did not halt within {max} instructions");
        let result = prog.symbol("result").expect("workloads expose `result`");
        (mem.read_u64(result), cpu.icount())
    }

    #[test]
    fn registry_is_complete_and_unique() {
        let ws = all();
        assert_eq!(ws.len(), 15);
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "duplicate workload names");
        assert_eq!(figure7_set().len(), 6);
        assert_eq!(table1_set().len(), 14);
        assert!(by_name("compress").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_workload_halts_at_tiny_scale() {
        for w in all() {
            let prog = (w.build)(Scale::Tiny);
            let (checksum, icount) = run_checksum(&prog, 3_000_000);
            assert!(icount > 1_000, "{} too small ({icount} insts)", w.name);
            // Checksums must be stable across runs (determinism).
            let (checksum2, icount2) = run_checksum(&prog, 3_000_000);
            assert_eq!(checksum, checksum2, "{} nondeterministic", w.name);
            assert_eq!(icount, icount2);
        }
    }

    #[test]
    fn scales_are_ordered() {
        for w in ["compress", "mgrid", "li"] {
            let w = by_name(w).unwrap();
            let (_, tiny) = run_checksum(&(w.build)(Scale::Tiny), 10_000_000);
            let (_, small) = run_checksum(&(w.build)(Scale::Small), 50_000_000);
            assert!(
                small > tiny,
                "{}: Small ({small}) should run longer than Tiny ({tiny})",
                w.name
            );
        }
    }

    #[test]
    fn classes_match_spec() {
        assert_eq!(by_name("compress").unwrap().class, WorkloadClass::Int);
        assert_eq!(by_name("go").unwrap().class, WorkloadClass::Int);
        assert_eq!(by_name("tomcatv").unwrap().class, WorkloadClass::Fp);
        assert_eq!(by_name("wave5").unwrap().class, WorkloadClass::Fp);
    }
}
