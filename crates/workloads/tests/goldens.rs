//! Golden checksums: every kernel's Tiny-scale result and instruction
//! count, pinned. Any change to a kernel's code, its input generation,
//! or the functional semantics of the ISA shows up here first —
//! protecting the cross-simulator equivalence suite's reference values.

use ds_cpu::FuncCore;
use ds_mem::MemImage;
use ds_workloads::{by_name, Scale};

// Regenerated for the vendored deterministic RNG (see crates/compat/rand):
// the offline stand-in pins a different stream than upstream rand, so any
// RNG-derived workload input changed once. Regenerate with
// `cargo test -p ds-workloads --test goldens -- --ignored --nocapture`.
const GOLDENS: &[(&str, u64, u64)] = &[
    ("tomcatv", 0xb0b108cfaacb4a7b, 15798),
    ("swim", 0x28ae8420a908825d, 37048),
    ("hydro2d", 0xb0addc7ef7fb4f59, 22531),
    ("mgrid", 0x6b569d1c24df72fa, 26227),
    ("applu", 0xb199266a3eff3e3, 37996),
    ("m88ksim", 0x4ec689b8f8beb22d, 151314),
    ("turb3d", 0x6fd47a15049011d5, 171163),
    ("gcc", 0x86ccf07fdb357ce, 719857),
    ("compress", 0xcdb1a, 52985),
    ("li", 0x17748690, 72026),
    ("perl", 0x2be8a0, 131435),
    ("fpppp", 0xe800000000000000, 24691),
    ("wave5", 0x424f9a304efa40f1, 114025),
    ("vortex", 0x48fbce3, 315819),
    ("go", 0x114c7, 737639),
];

#[test]
fn every_workload_matches_its_golden_checksum() {
    for &(name, want_sum, want_insts) in GOLDENS {
        let w = by_name(name).expect("registered workload");
        let prog = (w.build)(Scale::Tiny);
        let mut mem = MemImage::new();
        prog.load(&mut mem);
        let mut cpu = FuncCore::with_stack(prog.entry, prog.stack_top);
        cpu.run(&mut mem, 50_000_000).expect("executes");
        assert!(cpu.halted(), "{name} did not halt");
        let got = mem.read_u64(prog.symbol("result").expect("result symbol"));
        assert_eq!(
            got, want_sum,
            "{name}: checksum changed ({got:#x} vs {want_sum:#x}) — \
             if intentional, regenerate the goldens"
        );
        assert_eq!(cpu.icount(), want_insts, "{name}: instruction count changed");
    }
}

/// Prints a fresh golden table; run with `-- --ignored --nocapture`
/// after an intentional input-generation change and paste over GOLDENS.
#[test]
#[ignore]
fn print_golden_table() {
    for w in ds_workloads::all() {
        let prog = (w.build)(Scale::Tiny);
        let mut mem = MemImage::new();
        prog.load(&mut mem);
        let mut cpu = FuncCore::with_stack(prog.entry, prog.stack_top);
        cpu.run(&mut mem, 50_000_000).expect("executes");
        assert!(cpu.halted(), "{} did not halt", w.name);
        let got = mem.read_u64(prog.symbol("result").expect("result symbol"));
        println!("    (\"{}\", {:#x}, {}),", w.name, got, cpu.icount());
    }
}

#[test]
fn goldens_cover_the_whole_registry() {
    let mut names: Vec<&str> = GOLDENS.iter().map(|g| g.0).collect();
    names.sort_unstable();
    let mut all: Vec<&str> = ds_workloads::all().iter().map(|w| w.name).collect();
    all.sort_unstable();
    assert_eq!(names, all, "golden table out of sync with the registry");
}
