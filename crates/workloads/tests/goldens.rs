//! Golden checksums: every kernel's Tiny-scale result and instruction
//! count, pinned. Any change to a kernel's code, its input generation,
//! or the functional semantics of the ISA shows up here first —
//! protecting the cross-simulator equivalence suite's reference values.

use ds_cpu::FuncCore;
use ds_mem::MemImage;
use ds_workloads::{by_name, Scale};

const GOLDENS: &[(&str, u64, u64)] = &[
    ("tomcatv", 0xaf0008a054c3bbc9, 15798),
    ("swim", 0x25d1ddb07dd5d6e9, 37048),
    ("hydro2d", 0xb00829cc1fc273e7, 22531),
    ("mgrid", 0x6d8cc7ef949a98c2, 26227),
    ("applu", 0xff60eac42c30c7ae, 37996),
    ("m88ksim", 0xa5495110d51c1db3, 151392),
    ("turb3d", 0x68968940b84d5314, 171163),
    ("gcc", 0x811bf25606541722, 712585),
    ("compress", 0x10a48a, 52699),
    ("li", 0x17748690, 72026),
    ("perl", 0x2be8a0, 130859),
    ("fpppp", 0xe800000000000000, 24691),
    ("wave5", 0x424eb54d4059ea66, 114025),
    ("vortex", 0x48e76ab, 315531),
    ("go", 0x10d3e, 739234),
];

#[test]
fn every_workload_matches_its_golden_checksum() {
    for &(name, want_sum, want_insts) in GOLDENS {
        let w = by_name(name).expect("registered workload");
        let prog = (w.build)(Scale::Tiny);
        let mut mem = MemImage::new();
        prog.load(&mut mem);
        let mut cpu = FuncCore::with_stack(prog.entry, prog.stack_top);
        cpu.run(&mut mem, 50_000_000).expect("executes");
        assert!(cpu.halted(), "{name} did not halt");
        let got = mem.read_u64(prog.symbol("result").expect("result symbol"));
        assert_eq!(
            got, want_sum,
            "{name}: checksum changed ({got:#x} vs {want_sum:#x}) — \
             if intentional, regenerate the goldens"
        );
        assert_eq!(cpu.icount(), want_insts, "{name}: instruction count changed");
    }
}

#[test]
fn goldens_cover_the_whole_registry() {
    let mut names: Vec<&str> = GOLDENS.iter().map(|g| g.0).collect();
    names.sort_unstable();
    let mut all: Vec<&str> = ds_workloads::all().iter().map(|w| w.name).collect();
    all.sort_unstable();
    assert_eq!(names, all, "golden table out of sync with the registry");
}
