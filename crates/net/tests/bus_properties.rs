//! Property tests over the global bus: conservation (every enqueued
//! message is delivered exactly the right number of times), ordering,
//! and accounting.

use ds_net::{Bus, BusConfig, Delivery, Message, MsgKind, PortId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct MsgSpec {
    src: PortId,
    dest: Option<PortId>,
    payload: u64,
    enqueue_at: u64,
}

fn msg_strategy(ports: usize) -> impl Strategy<Value = MsgSpec> {
    (0..ports, prop::option::of(0..ports), 0u64..128, 0u64..200).prop_filter_map(
        "dest != src for point-to-point",
        move |(src, dest, payload, enqueue_at)| {
            if dest == Some(src) {
                return None;
            }
            Some(MsgSpec { src, dest, payload, enqueue_at })
        },
    )
}

fn drive(ports: usize, width: u64, divisor: u64, specs: &[MsgSpec]) -> (Vec<Delivery>, Bus) {
    let mut bus = Bus::new(BusConfig { ports, width_bytes: width, clock_divisor: divisor, header_bytes: 8 });
    let mut sorted: Vec<(usize, &MsgSpec)> = specs.iter().enumerate().collect();
    sorted.sort_by_key(|&(i, s)| (s.enqueue_at, i));
    let mut deliveries = Vec::new();
    let mut cursor = 0;
    let mut now = 0u64;
    // Run until everything drains (bounded by a generous budget).
    while (cursor < sorted.len() || !bus.is_idle()) && now < 2_000_000 {
        while cursor < sorted.len() && sorted[cursor].1.enqueue_at <= now {
            let (i, s) = sorted[cursor];
            bus.enqueue(Message {
                src: s.src,
                dest: s.dest,
                kind: if s.dest.is_some() { MsgKind::Response } else { MsgKind::Broadcast },
                line_addr: i as u64 * 64,
                payload_bytes: s.payload,
                seq: i as u64,
                enqueued_at: s.enqueue_at,
            });
            cursor += 1;
        }
        deliveries.extend(bus.step(now));
        now += 1;
    }
    (deliveries, bus)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_message_is_delivered_exactly_once_per_recipient(
        ports in 2usize..6,
        width in prop_oneof![Just(4u64), Just(8), Just(16)],
        divisor in 1u64..12,
        specs in prop::collection::vec(msg_strategy(6), 1..40),
    ) {
        let specs: Vec<MsgSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.src %= ports;
                s.dest = s.dest.map(|d| d % ports).filter(|&d| d != s.src);
                s
            })
            .collect();
        let (deliveries, bus) = drive(ports, width, divisor, &specs);
        prop_assert!(bus.is_idle(), "bus failed to drain");
        // Count deliveries per message id.
        for (i, s) in specs.iter().enumerate() {
            let got: Vec<&Delivery> =
                deliveries.iter().filter(|d| d.msg.seq == i as u64).collect();
            match s.dest {
                Some(d) => {
                    prop_assert_eq!(got.len(), 1, "msg {} point-to-point", i);
                    prop_assert_eq!(got[0].dest, d);
                }
                None => {
                    prop_assert_eq!(got.len(), ports - 1, "msg {} broadcast fan-out", i);
                    let mut dests: Vec<usize> = got.iter().map(|d| d.dest).collect();
                    dests.sort_unstable();
                    dests.dedup();
                    prop_assert_eq!(dests.len(), ports - 1);
                    prop_assert!(!dests.contains(&s.src));
                }
            }
        }
        prop_assert_eq!(bus.stats().transactions, specs.len() as u64);
    }

    #[test]
    fn same_source_messages_deliver_in_fifo_order(
        count in 2usize..20,
        divisor in 1u64..8,
    ) {
        let specs: Vec<MsgSpec> = (0..count)
            .map(|_| MsgSpec { src: 0, dest: Some(1), payload: 32, enqueue_at: 0 })
            .collect();
        let (deliveries, _) = drive(2, 8, divisor, &specs);
        let seqs: Vec<u64> = deliveries.iter().map(|d| d.msg.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seqs, sorted, "per-port FIFO violated");
    }

    #[test]
    fn bytes_accounting_matches_payloads(
        specs in prop::collection::vec(msg_strategy(3), 1..20),
    ) {
        let specs: Vec<MsgSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.src %= 3;
                s.dest = s.dest.map(|d| d % 3).filter(|&d| d != s.src);
                s
            })
            .collect();
        let (_, bus) = drive(3, 8, 2, &specs);
        let expected: u64 = specs.iter().map(|s| s.payload + 8).sum();
        prop_assert_eq!(bus.stats().bytes, expected);
    }

    #[test]
    fn deliveries_never_precede_enqueue_plus_transfer(
        specs in prop::collection::vec(msg_strategy(4), 1..25),
        divisor in 1u64..6,
    ) {
        let specs: Vec<MsgSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.src %= 4;
                s.dest = s.dest.map(|d| d % 4).filter(|&d| d != s.src);
                s
            })
            .collect();
        let (deliveries, bus) = drive(4, 8, divisor, &specs);
        for d in &deliveries {
            let min_transfer = bus.transfer_cycles(d.msg.payload_bytes);
            prop_assert!(
                d.at >= d.msg.enqueued_at + min_transfer,
                "delivery at {} before enqueue {} + transfer {}",
                d.at, d.msg.enqueued_at, min_transfer
            );
        }
    }
}
