//! Interconnect abstraction: bus or ring.
//!
//! §4.4 surveys three technologies for the DataScalar interconnect:
//! buses (broadcasts implicit, but not scalable), rings (SCI-style,
//! pipelined, broadcasts observed in different orders), and free-space
//! optics (broadcasts essentially free — expressible here as a very
//! wide, core-clocked bus). [`Fabric`] lets the system models swap
//! among them without caring which is underneath.

use crate::ring::{Ring, RingConfig};
use crate::{Bus, BusConfig, BusStats, Cycle, Delivery, Message};

/// Which interconnect to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricKind {
    /// A single shared bus (the paper's evaluated configuration).
    #[default]
    Bus,
    /// A unidirectional slotted ring (the paper's envisioned
    /// high-performance fabric).
    Ring,
}

/// A bus or ring behind one interface.
//
// The instrumented bus carries its probe's recorder inline (event ring +
// critical-path window headers), so the variants differ in size; one
// `Fabric` exists per system and is never moved per cycle, so boxing the
// large variant would buy nothing but an extra indirection on the hot
// `step` path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Fabric {
    /// Shared-bus fabric.
    Bus(Bus),
    /// Slotted-ring fabric.
    Ring(Ring),
}

impl Fabric {
    /// Builds the fabric of `kind` from shared geometry. Rings need at
    /// least two ports; degenerate single-node systems fall back to a
    /// bus (which never carries traffic there anyway).
    pub fn new(kind: FabricKind, config: BusConfig) -> Self {
        match kind {
            FabricKind::Ring if config.ports >= 2 => Fabric::Ring(Ring::new(RingConfig {
                ports: config.ports,
                width_bytes: config.width_bytes,
                clock_divisor: config.clock_divisor,
                header_bytes: config.header_bytes,
            })),
            _ => Fabric::Bus(Bus::new(config)),
        }
    }

    /// Queues a message at its source port.
    pub fn enqueue(&mut self, msg: Message) {
        match self {
            Fabric::Bus(b) => b.enqueue(msg),
            Fabric::Ring(r) => r.enqueue(msg),
        }
    }

    /// Advances one core cycle.
    pub fn step(&mut self, now: Cycle) -> Vec<Delivery> {
        match self {
            Fabric::Bus(b) => b.step(now),
            Fabric::Ring(r) => r.step(now),
        }
    }

    /// Advances one core cycle, filling `out` with the deliveries
    /// completing now (cleared first; allocation-free once grown).
    pub fn step_into(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        match self {
            Fabric::Bus(b) => b.step_into(now, out),
            Fabric::Ring(r) => r.step_into(now, out),
        }
    }

    /// Earliest future cycle at which stepping the fabric can change
    /// its state or deliver anything, absent new enqueues —
    /// `Cycle::MAX` when idle. The fabric's contribution to the
    /// system-wide event horizon.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        match self {
            Fabric::Bus(b) => b.next_event(now),
            Fabric::Ring(r) => r.next_event(now),
        }
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        match self {
            Fabric::Bus(b) => b.is_idle(),
            Fabric::Ring(r) => r.is_idle(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        match self {
            Fabric::Bus(b) => b.stats(),
            Fabric::Ring(r) => r.stats(),
        }
    }

    /// The recorded grant events (instrumented builds only; the ring
    /// fabric is not yet instrumented and reports no events).
    #[cfg(feature = "obs")]
    pub fn events(&self) -> Option<&ds_obs::EventRing> {
        match self {
            Fabric::Bus(b) => Some(b.events()),
            Fabric::Ring(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgKind;

    fn bmsg(src: usize) -> Message {
        Message {
            src,
            dest: None,
            kind: MsgKind::Broadcast,
            line_addr: 0,
            payload_bytes: 32,
            seq: 0,
            enqueued_at: 0,
        }
    }

    #[test]
    fn both_kinds_deliver_broadcasts_to_all_peers() {
        for kind in [FabricKind::Bus, FabricKind::Ring] {
            let mut f = Fabric::new(
                kind,
                BusConfig { ports: 3, width_bytes: 8, clock_divisor: 1, header_bytes: 8 },
            );
            f.enqueue(bmsg(0));
            let mut got = 0;
            for now in 0..100 {
                got += f.step(now).len();
            }
            assert_eq!(got, 2, "{kind:?}");
            assert!(f.is_idle());
            assert_eq!(f.stats().broadcasts, 1);
        }
    }

    #[test]
    fn single_port_ring_falls_back_to_bus() {
        let f = Fabric::new(FabricKind::Ring, BusConfig { ports: 1, ..Default::default() });
        assert!(matches!(f, Fabric::Bus(_)));
    }

    #[test]
    fn ring_broadcast_latency_beats_bus_for_nearest_neighbour() {
        let config = BusConfig { ports: 4, width_bytes: 8, clock_divisor: 1, header_bytes: 8 };
        let first_arrival = |mut f: Fabric| -> u64 {
            f.enqueue(bmsg(0));
            for now in 0..1000 {
                if let Some(d) = f.step(now).first() {
                    return d.at;
                }
            }
            panic!("no delivery");
        };
        let bus = first_arrival(Fabric::new(FabricKind::Bus, config));
        let ring = first_arrival(Fabric::new(FabricKind::Ring, config));
        assert!(ring <= bus, "nearest ring neighbour ({ring}) vs bus ({bus})");
    }
}
