//! Interconnect abstraction: bus or ring, plus optional fault injection.
//!
//! §4.4 surveys three technologies for the DataScalar interconnect:
//! buses (broadcasts implicit, but not scalable), rings (SCI-style,
//! pipelined, broadcasts observed in different orders), and free-space
//! optics (broadcasts essentially free — expressible here as a very
//! wide, core-clocked bus). [`Fabric`] lets the system models swap
//! among them without caring which is underneath. When a non-empty
//! [`FaultPlan`] is supplied, a [`FaultInjector`] sits between the
//! interconnect model and its deliveries; with an empty plan no
//! injector exists and the fabric behaves byte-identically to the
//! un-hardened build.

use crate::chaos::{FaultInjector, FaultPlan, FaultStats};
use crate::ring::{Ring, RingConfig};
use crate::{Bus, BusConfig, BusStats, Cycle, Delivery, Message};

/// Which interconnect to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricKind {
    /// A single shared bus (the paper's evaluated configuration).
    #[default]
    Bus,
    /// A unidirectional slotted ring (the paper's envisioned
    /// high-performance fabric).
    Ring,
}

/// The underlying interconnect model.
//
// The instrumented bus carries its probe's recorder inline (event ring +
// critical-path window headers), so the variants differ in size; one
// `Fabric` exists per system and is never moved per cycle, so boxing the
// large variant would buy nothing but an extra indirection on the hot
// `step` path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum FabricInner {
    /// Shared-bus fabric.
    Bus(Bus),
    /// Slotted-ring fabric.
    Ring(Ring),
}

/// A bus or ring behind one interface, optionally faulted by ds-chaos.
#[derive(Debug, Clone)]
pub struct Fabric {
    inner: FabricInner,
    /// Present only under a non-empty fault plan; boxed because the
    /// fault path is rare and the common case should not pay its
    /// footprint.
    chaos: Option<Box<FaultInjector>>,
}

impl Fabric {
    /// Builds a fault-free fabric of `kind` from shared geometry. Rings
    /// need at least two ports; degenerate single-node systems fall
    /// back to a bus (which never carries traffic there anyway).
    pub fn new(kind: FabricKind, config: BusConfig) -> Self {
        let inner = match kind {
            FabricKind::Ring if config.ports >= 2 => FabricInner::Ring(Ring::new(RingConfig {
                ports: config.ports,
                width_bytes: config.width_bytes,
                clock_divisor: config.clock_divisor,
                header_bytes: config.header_bytes,
            })),
            _ => FabricInner::Bus(Bus::new(config)),
        };
        Fabric { inner, chaos: None }
    }

    /// Builds a fabric with `plan`'s message faults injected at the
    /// delivery boundary. An empty plan constructs no injector at all.
    pub fn with_chaos(kind: FabricKind, config: BusConfig, plan: &FaultPlan) -> Self {
        let mut f = Fabric::new(kind, config);
        if !plan.is_empty() {
            f.chaos = Some(Box::new(FaultInjector::new(plan)));
        }
        f
    }

    /// The underlying interconnect model.
    pub fn inner(&self) -> &FabricInner {
        &self.inner
    }

    /// Fault-injection statistics (`None` without an active plan).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.chaos.as_deref().map(FaultInjector::stats)
    }

    /// Queues a message at its source port.
    pub fn enqueue(&mut self, msg: Message) {
        match &mut self.inner {
            FabricInner::Bus(b) => b.enqueue(msg),
            FabricInner::Ring(r) => r.enqueue(msg),
        }
    }

    /// Advances one core cycle. Test-only convenience — the cycle loop
    /// calls `step_into` with a reused buffer.
    pub fn step(&mut self, now: Cycle) -> Vec<Delivery> {
        // ds-lint: allow(a1) returning convenience wrapper; sim uses step_into
        let mut out = Vec::new();
        self.step_into(now, &mut out);
        out
    }

    /// Advances one core cycle, filling `out` with the deliveries
    /// completing now (cleared first; allocation-free once grown).
    /// Under an active fault plan the injector rewrites the batch —
    /// dropping, deferring, duplicating or reordering deliveries.
    pub fn step_into(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        match &mut self.inner {
            FabricInner::Bus(b) => b.step_into(now, out),
            FabricInner::Ring(r) => r.step_into(now, out),
        }
        if let Some(ch) = &mut self.chaos {
            ch.inject_step(now, out);
        }
    }

    /// Earliest future cycle at which stepping the fabric can change
    /// its state or deliver anything, absent new enqueues —
    /// `Cycle::MAX` when idle. The fabric's contribution to the
    /// system-wide event horizon; includes the injector's deferred
    /// releases so cycle skipping never jumps over a fault.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        let mut horizon = match &self.inner {
            FabricInner::Bus(b) => b.next_event(now),
            FabricInner::Ring(r) => r.next_event(now),
        };
        if let Some(ch) = &self.chaos {
            horizon = horizon.min(ch.next_event(now));
        }
        horizon
    }

    /// True when nothing is queued, in flight, or deferred by a fault.
    pub fn is_idle(&self) -> bool {
        let inner_idle = match &self.inner {
            FabricInner::Bus(b) => b.is_idle(),
            FabricInner::Ring(r) => r.is_idle(),
        };
        inner_idle && self.chaos.as_ref().is_none_or(|ch| ch.is_idle())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        match &self.inner {
            FabricInner::Bus(b) => b.stats(),
            FabricInner::Ring(r) => r.stats(),
        }
    }

    /// Appends every queued, in-flight, or fault-deferred message to
    /// `out` (deadlock-report introspection; cold path).
    pub fn pending_into(&self, out: &mut Vec<Message>) {
        match &self.inner {
            FabricInner::Bus(b) => b.pending_into(out),
            FabricInner::Ring(r) => r.pending_into(out),
        }
        if let Some(ch) = &self.chaos {
            ch.pending_into(out);
        }
    }

    /// The recorded grant events (instrumented builds only; the ring
    /// fabric is not yet instrumented and reports no events).
    #[cfg(feature = "obs")]
    pub fn events(&self) -> Option<&ds_obs::EventRing> {
        match &self.inner {
            FabricInner::Bus(b) => Some(b.events()),
            FabricInner::Ring(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultKind, FaultRule};
    use crate::MsgKind;

    fn bmsg(src: usize) -> Message {
        Message {
            src,
            dest: None,
            kind: MsgKind::Broadcast,
            line_addr: 0,
            payload_bytes: 32,
            seq: 0,
            enqueued_at: 0,
        }
    }

    #[test]
    fn both_kinds_deliver_broadcasts_to_all_peers() {
        for kind in [FabricKind::Bus, FabricKind::Ring] {
            let mut f = Fabric::new(
                kind,
                BusConfig { ports: 3, width_bytes: 8, clock_divisor: 1, header_bytes: 8 },
            );
            f.enqueue(bmsg(0));
            let mut got = 0;
            for now in 0..100 {
                got += f.step(now).len();
            }
            assert_eq!(got, 2, "{kind:?}");
            assert!(f.is_idle());
            assert_eq!(f.stats().broadcasts, 1);
        }
    }

    #[test]
    fn single_port_ring_falls_back_to_bus() {
        let f = Fabric::new(FabricKind::Ring, BusConfig { ports: 1, ..Default::default() });
        assert!(matches!(f.inner(), FabricInner::Bus(_)));
    }

    #[test]
    fn ring_broadcast_latency_beats_bus_for_nearest_neighbour() {
        let config = BusConfig { ports: 4, width_bytes: 8, clock_divisor: 1, header_bytes: 8 };
        let first_arrival = |mut f: Fabric| -> u64 {
            f.enqueue(bmsg(0));
            for now in 0..1000 {
                if let Some(d) = f.step(now).first() {
                    return d.at;
                }
            }
            panic!("no delivery");
        };
        let bus = first_arrival(Fabric::new(FabricKind::Bus, config));
        let ring = first_arrival(Fabric::new(FabricKind::Ring, config));
        assert!(ring <= bus, "nearest ring neighbour ({ring}) vs bus ({bus})");
    }

    #[test]
    fn empty_plan_builds_no_injector() {
        let f = Fabric::with_chaos(FabricKind::Bus, BusConfig::default(), &FaultPlan::default());
        assert!(f.fault_stats().is_none());
    }

    #[test]
    fn chaos_drops_broadcasts_on_both_fabrics() {
        let plan = FaultPlan {
            rules: vec![FaultRule::broadcasts(FaultKind::Drop, 1, u64::MAX)],
            stalls: Vec::new(),
        };
        for kind in [FabricKind::Bus, FabricKind::Ring] {
            let mut f = Fabric::with_chaos(
                kind,
                BusConfig { ports: 3, width_bytes: 8, clock_divisor: 1, header_bytes: 8 },
                &plan,
            );
            f.enqueue(bmsg(0));
            let mut got = 0;
            for now in 0..100 {
                got += f.step(now).len();
            }
            assert_eq!(got, 0, "{kind:?}: every delivery dropped");
            assert!(f.is_idle());
            assert_eq!(f.fault_stats().unwrap().dropped, 2, "{kind:?}");
        }
    }

    #[test]
    fn chaos_delay_holds_fabric_busy_until_release() {
        let plan = FaultPlan {
            rules: vec![FaultRule::broadcasts(FaultKind::Delay(40), 1, u64::MAX)],
            stalls: Vec::new(),
        };
        let mut f = Fabric::with_chaos(
            FabricKind::Bus,
            BusConfig { ports: 2, width_bytes: 8, clock_divisor: 1, header_bytes: 8 },
            &plan,
        );
        f.enqueue(bmsg(0));
        let mut arrivals = Vec::new();
        let mut now = 0;
        while now < 200 {
            arrivals.extend(f.step(now).iter().map(|d| d.at));
            if f.is_idle() {
                break;
            }
            let horizon = f.next_event(now);
            assert!(horizon > now, "horizon advances");
            now = horizon.min(now + 1).max(now + 1);
        }
        assert_eq!(arrivals.len(), 1);
        assert!(arrivals[0] >= 45, "base transfer (5) plus injected delay (40)");
        assert!(f.is_idle());
    }

    #[test]
    fn pending_into_reports_deferred_messages() {
        let plan = FaultPlan {
            rules: vec![FaultRule::broadcasts(FaultKind::Delay(1000), 1, u64::MAX)],
            stalls: Vec::new(),
        };
        let mut f = Fabric::with_chaos(
            FabricKind::Bus,
            BusConfig { ports: 2, width_bytes: 8, clock_divisor: 1, header_bytes: 8 },
            &plan,
        );
        f.enqueue(bmsg(0));
        for now in 0..20 {
            f.step(now);
        }
        let mut pending = Vec::new();
        f.pending_into(&mut pending);
        assert_eq!(pending.len(), 1, "the deferred broadcast is visible");
        assert_eq!(pending[0].kind, MsgKind::Broadcast);
    }
}
