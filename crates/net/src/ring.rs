//! A unidirectional slotted ring interconnect.
//!
//! §4.4: "We envision a ring interconnect because of the
//! high-performance capability" — on a ring (e.g. the SCI the paper
//! cites), "operations are observed by all nodes if the sender is
//! responsible for removing its own message", which makes broadcast
//! nearly free structurally but introduces exactly the complication the
//! paper calls out: operands originating at different processors are
//! received at other nodes in **different orders**.
//!
//! The model is cut-through (SCI-style): the first link transfer costs
//! the full serialisation time, after which the head forwards one link
//! per link cycle, delivering a copy at every node it passes
//! (broadcast) or only at the destination (point-to-point). The sender
//! removes its own message after a full circuit. Each link reserves
//! bandwidth for the whole message, so unlike the bus, `N` messages can
//! be in flight simultaneously — the ring pipelines.

use crate::{BusStats, Cycle, Delivery, Message, MsgKind, PortId};
use std::collections::VecDeque;

/// Ring geometry and clocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Number of nodes on the ring.
    pub ports: usize,
    /// Link width in bytes per link cycle.
    pub width_bytes: u64,
    /// Core cycles per link cycle.
    pub clock_divisor: u64,
    /// Address/tag header bytes per message.
    pub header_bytes: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig { ports: 2, width_bytes: 8, clock_divisor: 10, header_bytes: 8 }
    }
}

#[derive(Debug, Clone)]
struct Flit {
    msg: Message,
    /// Node the message is currently *at* (just arrived / originated).
    at: PortId,
    /// Hops completed so far.
    hops: usize,
    /// Cycle at which it finishes the next hop.
    next_hop_done: Cycle,
}

/// The ring fabric.
///
/// # Examples
///
/// ```
/// use ds_net::{Message, MsgKind, Ring, RingConfig};
///
/// let mut ring = Ring::new(RingConfig { ports: 4, width_bytes: 8, clock_divisor: 1, header_bytes: 8 });
/// ring.enqueue(Message {
///     src: 0, dest: None, kind: MsgKind::Broadcast,
///     line_addr: 0, payload_bytes: 32, seq: 0, enqueued_at: 0,
/// });
/// let mut arrivals = 0;
/// for now in 0..100 {
///     arrivals += ring.step(now).len();
/// }
/// assert_eq!(arrivals, 3, "all three other nodes hear the broadcast");
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    config: RingConfig,
    /// Messages waiting at each node for its outgoing link.
    queues: Vec<VecDeque<Message>>,
    /// Cycle each node's outgoing link frees up.
    link_free: Vec<Cycle>,
    in_flight: Vec<Flit>,
    /// Reused per-step staging buffer (keeps the hot loop allocation
    /// free).
    scratch: Vec<Flit>,
    stats: BusStats,
}

impl Ring {
    /// Builds an idle ring.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration.
    pub fn new(config: RingConfig) -> Self {
        assert!(config.ports >= 2, "a ring needs at least two nodes");
        assert!(config.width_bytes > 0 && config.clock_divisor > 0);
        Ring {
            queues: vec![VecDeque::new(); config.ports],
            link_free: vec![0; config.ports],
            in_flight: Vec::new(),
            scratch: Vec::new(),
            config,
            stats: BusStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RingConfig {
        &self.config
    }

    /// Core cycles one hop takes for a `payload`-byte message.
    pub fn hop_cycles(&self, payload_bytes: u64) -> Cycle {
        (payload_bytes + self.config.header_bytes)
            .div_ceil(self.config.width_bytes)
            * self.config.clock_divisor
    }

    /// Queues a message at its source node.
    ///
    /// # Panics
    ///
    /// Panics on invalid ports.
    pub fn enqueue(&mut self, msg: Message) {
        assert!(msg.src < self.config.ports, "bad source port");
        if let Some(d) = msg.dest {
            assert!(d < self.config.ports, "bad destination port");
            assert!(
                d != msg.src,
                "self-addressed message would circle the ring undelivered"
            );
        }
        self.queues[msg.src].push_back(msg);
    }

    /// True when nothing is queued or circulating.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty() && self.queues.iter().all(|q| q.is_empty())
    }

    /// Accumulated statistics (hop-level busy accounting).
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Advances one core cycle; returns deliveries completing now.
    ///
    /// Convenience wrapper over [`Ring::step_into`] — hot loops should
    /// pass a reused buffer to `step_into` instead.
    pub fn step(&mut self, now: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.step_into(now, &mut out);
        out
    }

    /// Advances one core cycle, clearing `out` and filling it with the
    /// deliveries completing now — no allocation once the buffers have
    /// grown.
    pub fn step_into(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        out.clear();
        let ports = self.config.ports;
        // Advance in-flight messages that complete a hop this cycle.
        // `scratch` takes the flits; survivors go back into `in_flight`
        // in the same order.
        let mut flits = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut flits, &mut self.in_flight);
        debug_assert!(self.in_flight.is_empty());
        for mut flit in flits.drain(..) {
            if flit.next_hop_done > now {
                self.in_flight.push(flit);
                continue;
            }
            // Completed the hop to the next node.
            flit.at = (flit.at + 1) % ports;
            flit.hops += 1;
            let back_home = flit.at == flit.msg.src;
            match flit.msg.dest {
                None => {
                    if !back_home {
                        out.push(Delivery { dest: flit.at, msg: flit.msg, at: now });
                    }
                }
                Some(d) => {
                    if flit.at == d {
                        out.push(Delivery { dest: d, msg: flit.msg, at: now });
                    }
                }
            }
            // The sender removes its own message after a full circuit
            // (SCI-style); point-to-point messages still circle back so
            // the sender can observe completion.
            if back_home {
                continue;
            }
            // Cut-through: the head forwards after one link cycle,
            // but the link stays reserved for the full serialisation
            // time behind it.
            let transfer = self.hop_cycles(flit.msg.payload_bytes);
            let start = self.link_free[flit.at].max(now);
            self.link_free[flit.at] = start + transfer;
            flit.next_hop_done = start + self.config.clock_divisor;
            self.in_flight.push(flit);
        }
        self.scratch = flits;
        // Inject new messages where the outgoing link is free.
        for port in 0..ports {
            if self.link_free[port] > now {
                continue;
            }
            let Some(msg) = self.queues[port].pop_front() else { continue };
            let hop = self.hop_cycles(msg.payload_bytes);
            self.link_free[port] = now + hop;
            self.account(&msg, now, hop);
            self.in_flight.push(Flit { msg, at: port, hops: 0, next_hop_done: now + hop });
        }
    }

    /// Earliest future cycle (strictly after `now`) at which stepping
    /// the ring can change its state or deliver anything, assuming no
    /// new messages are enqueued in between — the min over every
    /// circulating flit's next hop completion and, for each node with
    /// queued messages, the cycle its outgoing link frees up.
    /// `Cycle::MAX` when idle. Called after the step at `now`.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        let mut horizon = Cycle::MAX;
        for flit in &self.in_flight {
            horizon = horizon.min(flit.next_hop_done);
        }
        for (port, queue) in self.queues.iter().enumerate() {
            if !queue.is_empty() {
                horizon = horizon.min(self.link_free[port].max(now + 1));
            }
        }
        horizon.max(now + 1)
    }

    fn account(&mut self, msg: &Message, now: Cycle, hop: Cycle) {
        let s = &mut self.stats;
        s.transactions += 1;
        s.bytes += msg.payload_bytes + self.config.header_bytes;
        // A full circuit of hops.
        s.busy_cycles += hop * self.config.ports as u64;
        s.queue_delay_cycles += now.saturating_sub(msg.enqueued_at);
        match msg.kind {
            MsgKind::Broadcast => s.broadcasts += 1,
            MsgKind::Request => s.requests += 1,
            MsgKind::Response => s.responses += 1,
            MsgKind::WriteBack | MsgKind::WriteThrough => s.writes += 1,
            MsgKind::RetransmitReq => s.retransmits += 1,
        }
    }

    /// Appends every queued or circulating message to `out`
    /// (deadlock-report introspection; cold path).
    pub fn pending_into(&self, out: &mut Vec<Message>) {
        for flit in &self.in_flight {
            out.push(flit.msg);
        }
        for q in &self.queues {
            for m in q {
                out.push(*m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: PortId, dest: Option<PortId>, seq: u64) -> Message {
        Message {
            src,
            dest,
            kind: if dest.is_some() { MsgKind::Response } else { MsgKind::Broadcast },
            line_addr: 0x1000,
            payload_bytes: 32,
            seq,
            enqueued_at: 0,
        }
    }

    fn run(ring: &mut Ring, cycles: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for now in 0..cycles {
            out.extend(ring.step(now));
        }
        out
    }

    #[test]
    fn broadcast_reaches_every_other_node_in_ring_order() {
        let mut ring =
            Ring::new(RingConfig { ports: 4, width_bytes: 8, clock_divisor: 1, header_bytes: 8 });
        ring.enqueue(msg(1, None, 0));
        let got = run(&mut ring, 100);
        let dests: Vec<usize> = got.iter().map(|d| d.dest).collect();
        assert_eq!(dests, vec![2, 3, 0], "downstream ring order from node 1");
        assert!(ring.is_idle());
    }

    #[test]
    fn neighbours_hear_broadcasts_sooner_than_distant_nodes() {
        let mut ring =
            Ring::new(RingConfig { ports: 4, width_bytes: 8, clock_divisor: 1, header_bytes: 8 });
        ring.enqueue(msg(0, None, 0));
        let got = run(&mut ring, 100);
        // First hop serialises the whole 40-byte message (5 cycles);
        // the head then cuts through one link per cycle.
        assert_eq!(got[0].at, 5);
        assert_eq!(got[1].at, 6);
        assert_eq!(got[2].at, 7);
    }

    #[test]
    fn point_to_point_delivers_only_at_destination() {
        let mut ring =
            Ring::new(RingConfig { ports: 4, width_bytes: 8, clock_divisor: 1, header_bytes: 8 });
        ring.enqueue(msg(0, Some(2), 0));
        let got = run(&mut ring, 100);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].dest, 2);
        assert_eq!(got[0].at, 6, "serialise + one cut-through hop");
        assert!(ring.is_idle(), "message removed after the circuit");
    }

    #[test]
    fn ring_pipelines_multiple_messages() {
        // Two nodes broadcasting simultaneously on a 4-ring: both
        // finish far sooner than serialised bus transfers would.
        let mut ring =
            Ring::new(RingConfig { ports: 4, width_bytes: 8, clock_divisor: 1, header_bytes: 8 });
        ring.enqueue(msg(0, None, 0));
        ring.enqueue(msg(2, None, 1));
        let got = run(&mut ring, 200);
        assert_eq!(got.len(), 6);
        let last = got.iter().map(|d| d.at).max().unwrap();
        assert!(last <= 25, "pipelined circuits, finished at {last}");
    }

    #[test]
    fn messages_from_different_sources_arrive_in_different_orders() {
        // The paper's §4.4 complication: node 1 and node 3 observe the
        // same pair of broadcasts in opposite orders.
        let mut ring =
            Ring::new(RingConfig { ports: 4, width_bytes: 8, clock_divisor: 1, header_bytes: 8 });
        ring.enqueue(msg(0, None, 100));
        ring.enqueue(msg(2, None, 200));
        let got = run(&mut ring, 200);
        let order_at = |node: usize| -> Vec<u64> {
            got.iter().filter(|d| d.dest == node).map(|d| d.msg.seq).collect()
        };
        assert_eq!(order_at(1), vec![100, 200]);
        assert_eq!(order_at(3), vec![200, 100]);
    }

    #[test]
    fn link_contention_serialises_at_the_busy_node() {
        let mut ring =
            Ring::new(RingConfig { ports: 2, width_bytes: 8, clock_divisor: 1, header_bytes: 8 });
        ring.enqueue(msg(0, None, 0));
        ring.enqueue(msg(0, None, 1));
        let got = run(&mut ring, 100);
        assert_eq!(got.len(), 2);
        assert!(got[1].at >= got[0].at + 5, "same outgoing link");
    }

    #[test]
    fn next_event_matches_naive_stepping() {
        let mut ring =
            Ring::new(RingConfig { ports: 4, width_bytes: 8, clock_divisor: 3, header_bytes: 8 });
        ring.enqueue(msg(0, None, 0));
        ring.enqueue(msg(2, None, 1));
        let mut horizon = 0;
        for now in 0..300u64 {
            let got = ring.step(now);
            if !got.is_empty() {
                assert!(now >= horizon, "delivery at {now} inside skippable range (horizon {horizon})");
            }
            horizon = ring.next_event(now);
            assert!(horizon > now, "horizon must be in the future");
        }
        assert!(ring.is_idle());
        assert_eq!(ring.next_event(300), Cycle::MAX, "idle ring has no events");
    }

    #[test]
    fn stats_accumulate() {
        let mut ring = Ring::new(RingConfig::default());
        ring.enqueue(msg(0, None, 0));
        ring.enqueue(msg(1, Some(0), 1));
        run(&mut ring, 1000);
        let s = ring.stats();
        assert_eq!(s.transactions, 2);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.responses, 1);
        assert_eq!(s.bytes, 80);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_ring_rejected() {
        Ring::new(RingConfig { ports: 1, ..Default::default() });
    }
}
