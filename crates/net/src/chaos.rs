//! ds-chaos: deterministic fault injection at the fabric boundary.
//!
//! A [`FaultPlan`] schedules message faults (drop, delay, duplicate,
//! reorder) and node stalls by cycle window, source port, and message
//! kind. The plan is pure data: the fabric applies message rules
//! through a [`FaultInjector`] sitting between the interconnect model
//! and its deliveries, and `ds_core::Node` applies stall rules to its
//! own tick. Everything is deterministic — a seeded plan plus a fixed
//! configuration reproduces the same faulted run bit for bit, across
//! the serial, parallel, skipping and non-skipping engines.
//!
//! With an empty plan the system never constructs an injector, so the
//! fault path costs nothing and golden results stay byte-identical.
//!
//! Reordering is modelled as *reorder-by-deferral*: a matched delivery
//! is held back and released after the next delivery batch (or after a
//! bounded number of cycles, preserving liveness), so a later message
//! overtakes it. This is exactly the §4.4 ring complication — operands
//! from different senders observed in different orders — made
//! injectable on any fabric.

use crate::{Cycle, Delivery, MsgKind, PortId};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};
use std::collections::BinaryHeap;

/// Cycles a reorder-deferred delivery is held at most before it is
/// force-released (liveness bound; see module docs).
const REORDER_HOLD_MAX: u64 = 64;

/// What to do with a matched message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silently discard the delivery.
    Drop,
    /// Hold the delivery back for this many cycles.
    Delay(u64),
    /// Deliver normally *and* deliver a copy this many cycles later.
    Duplicate(u64),
    /// Defer the delivery past the next delivery batch so a later
    /// message overtakes it.
    Reorder,
}

/// One message-fault rule. A delivery matches when the current cycle is
/// inside `[from, to)`, the sender matches `src` (or `src` is `None`),
/// and the message kind matches `msg` (or `msg` is `None`). Among
/// matches, the rule fires on every `every`-th one, at most `max_fires`
/// times total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// The fault applied on a fire.
    pub kind: FaultKind,
    /// First cycle (inclusive) the rule is armed.
    pub from: Cycle,
    /// First cycle (exclusive) the rule is disarmed; `Cycle::MAX` keeps
    /// it armed forever.
    pub to: Cycle,
    /// Match only messages sent from this port (`None` = any).
    pub src: Option<PortId>,
    /// Match only this message kind (`None` = any).
    pub msg: Option<MsgKind>,
    /// Fire on every n-th matching delivery (1 = every match).
    pub every: u64,
    /// Total fire budget (`u64::MAX` = unbounded).
    pub max_fires: u64,
}

impl FaultRule {
    /// A rule matching every broadcast, armed forever, firing on every
    /// `every`-th match up to `max_fires` times.
    pub fn broadcasts(kind: FaultKind, every: u64, max_fires: u64) -> Self {
        FaultRule {
            kind,
            from: 0,
            to: Cycle::MAX,
            src: None,
            msg: Some(MsgKind::Broadcast),
            every,
            max_fires,
        }
    }
}

/// Stall one node's tick: the node's core does not step for
/// `[at, at + cycles)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallRule {
    /// The stalled node.
    pub node: PortId,
    /// First stalled cycle.
    pub at: Cycle,
    /// Stall length in cycles.
    pub cycles: u64,
}

/// A complete, deterministic fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Message-fault rules, first match wins.
    pub rules: Vec<FaultRule>,
    /// Node-stall rules.
    pub stalls: Vec<StallRule>,
}

impl FaultPlan {
    /// True when the plan injects nothing (the default): the system
    /// skips injector construction entirely and behaves byte-identically
    /// to a build without ds-chaos.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.stalls.is_empty()
    }

    /// A deterministic pseudo-random plan for an `nodes`-node machine:
    /// `rule_count` bounded-budget message rules plus up to one stall
    /// per node. The same `(seed, nodes, rule_count)` triple always
    /// yields the same plan. Budgets are finite so a hardened protocol
    /// always outruns the plan (liveness under every seeded grid).
    pub fn seeded(seed: u64, nodes: usize, rule_count: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rules = Vec::with_capacity(rule_count);
        for _ in 0..rule_count {
            let kind = match rng.gen_range(0u32..4) {
                0 => FaultKind::Drop,
                1 => FaultKind::Delay(rng.gen_range(1u64..=400)),
                2 => FaultKind::Duplicate(rng.gen_range(1u64..=200)),
                _ => FaultKind::Reorder,
            };
            let from = rng.gen_range(0u64..20_000);
            rules.push(FaultRule {
                kind,
                from,
                to: from + rng.gen_range(5_000u64..=100_000),
                src: if rng.gen_bool(0.5) { Some(rng.gen_range(0..nodes.max(1))) } else { None },
                msg: Some(MsgKind::Broadcast),
                every: rng.gen_range(1u64..=4),
                max_fires: rng.gen_range(1u64..=16),
            });
        }
        let mut stalls = Vec::with_capacity(nodes);
        for node in 0..nodes {
            if rng.gen_bool(0.5) {
                stalls.push(StallRule {
                    node,
                    at: rng.gen_range(0u64..30_000),
                    cycles: rng.gen_range(1u64..=500),
                });
            }
        }
        FaultPlan { rules, stalls }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate plan (zero-period rule, empty window,
    /// zero-length stall).
    pub fn validate(&self) {
        for r in &self.rules {
            assert!(r.every >= 1, "fault rule period must be at least 1");
            assert!(r.from < r.to, "fault rule window must be non-empty");
        }
        for s in &self.stalls {
            assert!(s.cycles >= 1, "stall must last at least one cycle");
        }
    }
}

/// What the injector did, for reporting and for the `ds-chaos` matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Deliveries discarded.
    pub dropped: u64,
    /// Deliveries deferred by a delay rule.
    pub delayed: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Deliveries deferred past a later batch.
    pub reordered: u64,
}

/// Per-rule match bookkeeping.
#[derive(Debug, Clone)]
struct RuleState {
    rule: FaultRule,
    seen: u64,
    fired: u64,
}

/// A delivery waiting in the injector's release heap. Ordered by
/// `(release, seq)` so ties release in injection order — fully
/// deterministic.
#[derive(Debug, Clone)]
struct Deferred {
    release: Cycle,
    seq: u64,
    d: Delivery,
}

impl PartialEq for Deferred {
    fn eq(&self, other: &Self) -> bool {
        self.release == other.release && self.seq == other.seq
    }
}
impl Eq for Deferred {}
impl PartialOrd for Deferred {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deferred {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // release on top.
        (other.release, other.seq).cmp(&(self.release, self.seq))
    }
}

/// Applies a [`FaultPlan`]'s message rules to the fabric's delivery
/// stream. Sits after the interconnect model's `step_into`: the model
/// stays untouched and both bus and ring are faulted identically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rules: Vec<RuleState>,
    /// Min-heap of delayed / duplicated deliveries keyed by release
    /// cycle.
    deferred: BinaryHeap<Deferred>,
    /// Reorder-deferred deliveries, released after the next batch.
    held: Vec<Delivery>,
    /// Cycle the oldest held delivery entered `held`.
    held_since: Cycle,
    seq: u64,
    stats: FaultStats,
    /// Reused staging buffer (keeps the hot loop allocation-free).
    scratch: Vec<Delivery>,
}

impl FaultInjector {
    /// Builds an injector for `plan`'s message rules (stall rules are
    /// applied by the nodes, not here).
    pub fn new(plan: &FaultPlan) -> Self {
        plan.validate();
        let mut rules = Vec::with_capacity(plan.rules.len());
        for r in &plan.rules {
            rules.push(RuleState { rule: *r, seen: 0, fired: 0 });
        }
        FaultInjector {
            rules,
            deferred: BinaryHeap::with_capacity(32),
            held: Vec::with_capacity(8),
            held_since: 0,
            seq: 0,
            stats: FaultStats::default(),
            scratch: Vec::with_capacity(8),
        }
    }

    /// Injection statistics so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The first rule that matches and fires for a delivery at `now`,
    /// if any; advances rule counters.
    fn fault_match(&mut self, now: Cycle, d: &Delivery) -> Option<FaultKind> {
        for rs in &mut self.rules {
            let r = &rs.rule;
            if now < r.from || now >= r.to {
                continue;
            }
            if let Some(src) = r.src {
                if d.msg.src != src {
                    continue;
                }
            }
            if let Some(kind) = r.msg {
                if d.msg.kind != kind {
                    continue;
                }
            }
            rs.seen += 1;
            if rs.fired < r.max_fires && rs.seen.is_multiple_of(r.every) {
                rs.fired += 1;
                return Some(r.kind);
            }
            // First matching rule claims the message even when it
            // declines to fire, so rule order is meaningful.
            return None;
        }
        None
    }

    /// Rewrites this cycle's delivery batch in place: releases due
    /// deferred deliveries, applies matching rules to fresh ones, and
    /// flushes reorder holds behind the batch. Allocation-free once the
    /// internal buffers have grown.
    pub fn inject_step(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        let mut fresh = std::mem::take(&mut self.scratch);
        fresh.clear();
        std::mem::swap(&mut fresh, out);
        // Due delayed/duplicated copies deliver first (they are older).
        while let Some(top) = self.deferred.peek() {
            if top.release > now {
                break;
            }
            // The peek above guarantees the pop succeeds.
            if let Some(def) = self.deferred.pop() {
                out.push(Delivery { at: now, ..def.d });
            }
        }
        for d in fresh.drain(..) {
            match self.fault_match(now, &d) {
                None => out.push(d),
                Some(FaultKind::Drop) => self.stats.dropped += 1,
                Some(FaultKind::Delay(k)) => {
                    self.stats.delayed += 1;
                    self.defer(now + k.max(1), d);
                }
                Some(FaultKind::Duplicate(k)) => {
                    self.stats.duplicated += 1;
                    self.defer(now + k.max(1), d);
                    out.push(d);
                }
                Some(FaultKind::Reorder) => {
                    self.stats.reordered += 1;
                    if self.held.is_empty() {
                        self.held_since = now;
                    }
                    self.held.push(d);
                }
            }
        }
        // Reorder holds release *behind* the next non-empty batch — a
        // later message has now overtaken them — or after the liveness
        // bound.
        if !self.held.is_empty() && (!out.is_empty() || now >= self.held_since + REORDER_HOLD_MAX)
        {
            for d in self.held.drain(..) {
                out.push(Delivery { at: now, ..d });
            }
        }
        self.scratch = fresh;
    }

    fn defer(&mut self, release: Cycle, d: Delivery) {
        self.deferred.push(Deferred { release, seq: self.seq, d });
        self.seq += 1;
    }

    /// Earliest future cycle (strictly after `now`) at which the
    /// injector itself can release a delivery; `Cycle::MAX` when it
    /// holds nothing. Folded into the fabric's event horizon so cycle
    /// skipping never jumps over a deferred release.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        let mut horizon = Cycle::MAX;
        if let Some(top) = self.deferred.peek() {
            horizon = top.release.max(now + 1);
        }
        if !self.held.is_empty() {
            // Held deliveries can release on any next batch; the
            // conservative horizon is the next cycle.
            horizon = horizon.min(now + 1);
        }
        horizon
    }

    /// True when no delivery is deferred or held.
    pub fn is_idle(&self) -> bool {
        self.deferred.is_empty() && self.held.is_empty()
    }

    /// Appends every deferred or held message to `out` (deadlock-report
    /// introspection).
    pub fn pending_into(&self, out: &mut Vec<crate::Message>) {
        for def in self.deferred.iter() {
            out.push(def.d.msg);
        }
        for d in &self.held {
            out.push(d.msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;

    fn bcast(src: PortId, dest: PortId, seq: u64) -> Delivery {
        Delivery {
            dest,
            at: 0,
            msg: Message {
                src,
                dest: None,
                kind: MsgKind::Broadcast,
                line_addr: 0x1000 + seq * 0x40,
                payload_bytes: 32,
                seq,
                enqueued_at: 0,
            },
        }
    }

    fn plan_of(rule: FaultRule) -> FaultPlan {
        FaultPlan { rules: vec![rule], stalls: Vec::new() }
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        p.validate();
    }

    #[test]
    fn drop_rule_discards_matches() {
        let mut inj =
            FaultInjector::new(&plan_of(FaultRule::broadcasts(FaultKind::Drop, 2, u64::MAX)));
        let mut out = vec![bcast(0, 1, 0), bcast(0, 1, 1), bcast(0, 1, 2), bcast(0, 1, 3)];
        inj.inject_step(10, &mut out);
        assert_eq!(out.len(), 2, "every 2nd match dropped");
        assert_eq!(inj.stats().dropped, 2);
        assert!(inj.is_idle());
    }

    #[test]
    fn delay_rule_defers_and_releases() {
        let mut inj =
            FaultInjector::new(&plan_of(FaultRule::broadcasts(FaultKind::Delay(5), 1, 1)));
        let mut out = vec![bcast(0, 1, 0)];
        inj.inject_step(10, &mut out);
        assert!(out.is_empty(), "delivery deferred");
        assert!(!inj.is_idle());
        assert_eq!(inj.next_event(10), 15);
        inj.inject_step(14, &mut out);
        assert!(out.is_empty(), "not due yet");
        inj.inject_step(15, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].at, 15, "arrival restamped to the release cycle");
        assert!(inj.is_idle());
    }

    #[test]
    fn duplicate_rule_emits_now_and_later() {
        let mut inj =
            FaultInjector::new(&plan_of(FaultRule::broadcasts(FaultKind::Duplicate(3), 1, 1)));
        let mut out = vec![bcast(0, 1, 0)];
        inj.inject_step(0, &mut out);
        assert_eq!(out.len(), 1, "original passes through");
        out.clear();
        inj.inject_step(3, &mut out);
        assert_eq!(out.len(), 1, "copy released");
        assert_eq!(inj.stats().duplicated, 1);
    }

    #[test]
    fn reorder_releases_behind_the_next_batch() {
        let mut inj =
            FaultInjector::new(&plan_of(FaultRule::broadcasts(FaultKind::Reorder, 1, 1)));
        let mut out = vec![bcast(0, 1, 0)];
        inj.inject_step(0, &mut out);
        assert!(out.is_empty(), "held");
        out.push(bcast(1, 0, 1));
        inj.inject_step(5, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].msg.seq, 1, "later message overtakes");
        assert_eq!(out[1].msg.seq, 0, "held message released behind it");
    }

    #[test]
    fn reorder_hold_is_bounded_for_liveness() {
        let mut inj =
            FaultInjector::new(&plan_of(FaultRule::broadcasts(FaultKind::Reorder, 1, 1)));
        let mut out = vec![bcast(0, 1, 0)];
        inj.inject_step(0, &mut out);
        assert!(out.is_empty());
        inj.inject_step(REORDER_HOLD_MAX, &mut out);
        assert_eq!(out.len(), 1, "released at the liveness bound without a batch");
    }

    #[test]
    fn window_and_src_filters_apply() {
        let rule = FaultRule {
            kind: FaultKind::Drop,
            from: 100,
            to: 200,
            src: Some(1),
            msg: Some(MsgKind::Broadcast),
            every: 1,
            max_fires: u64::MAX,
        };
        let mut inj = FaultInjector::new(&plan_of(rule));
        let mut out = vec![bcast(1, 0, 0)];
        inj.inject_step(50, &mut out);
        assert_eq!(out.len(), 1, "outside the window");
        let mut out = vec![bcast(0, 1, 1)];
        inj.inject_step(150, &mut out);
        assert_eq!(out.len(), 1, "wrong source");
        let mut out = vec![bcast(1, 0, 2)];
        inj.inject_step(150, &mut out);
        assert!(out.is_empty(), "in-window match from port 1 dropped");
    }

    #[test]
    fn fire_budget_caps_a_rule() {
        let mut inj = FaultInjector::new(&plan_of(FaultRule::broadcasts(FaultKind::Drop, 1, 2)));
        let mut out = vec![bcast(0, 1, 0), bcast(0, 1, 1), bcast(0, 1, 2)];
        inj.inject_step(0, &mut out);
        assert_eq!(out.len(), 1, "budget of 2 exhausted");
        assert_eq!(inj.stats().dropped, 2);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(42, 4, 6);
        let b = FaultPlan::seeded(42, 4, 6);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, FaultPlan::seeded(43, 4, 6), "different seed, different plan");
        a.validate();
        assert_eq!(a.rules.len(), 6);
        for r in &a.rules {
            assert!(r.max_fires <= 16, "seeded budgets stay finite");
        }
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_rejected() {
        let rule = FaultRule { from: 10, to: 10, ..FaultRule::broadcasts(FaultKind::Drop, 1, 1) };
        plan_of(rule).validate();
    }
}
