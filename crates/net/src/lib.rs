//! The global interconnect of a DataScalar (or traditional IRAM)
//! system.
//!
//! The paper's simulated implementation connects the IRAM chips with a
//! single global **bus**, slower and narrower than on-chip wires
//! (§4.2). Broadcasts on a bus are free in the sense that every
//! transaction is implicitly observed by all nodes (§4.4), which is why
//! the paper picks a bus for its evaluation; ring and optical
//! interconnects are discussed qualitatively only.
//!
//! [`Bus`] models:
//!
//! * a configurable **clock divisor** relative to the core clock and a
//!   configurable **width** in bytes — the Figure 8 sensitivity axes;
//! * round-robin **arbitration** among per-node output queues;
//! * **one transaction in flight** at a time, occupying the bus for
//!   `ceil(bytes / width)` bus cycles;
//! * delivery of [`MsgKind::Broadcast`] messages to every node except
//!   the sender, and of point-to-point messages (requests, responses,
//!   write-backs of the traditional system) to their destination.
//!
//! All communicated data in a DataScalar machine flows through exactly
//! one of these, so the bus statistics are the paper's off-chip traffic
//! numbers.

pub mod chaos;
mod fabric;
mod ring;

pub use chaos::{FaultInjector, FaultKind, FaultPlan, FaultRule, FaultStats, StallRule};
pub use fabric::{Fabric, FabricInner, FabricKind};
pub use ring::{Ring, RingConfig};

use ds_obs::Probe as _;
use std::collections::VecDeque;

/// The interconnect's observability probe: the ds-obs recorder when the
/// `obs` feature is on, a zero-sized no-op otherwise.
#[cfg(feature = "obs")]
pub(crate) type NetProbe = ds_obs::Recorder;
/// The disabled probe (ZST).
#[cfg(not(feature = "obs"))]
pub(crate) type NetProbe = ds_obs::NoopProbe;

/// A core-clock cycle count.
pub type Cycle = u64;

/// Index of a bus port (one per node; the traditional system uses port
/// 0 for the processor chip and port 1 for the off-chip memory).
pub type PortId = usize;

/// What a bus message is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// A DataScalar ESP data broadcast (one cache line + tag).
    Broadcast,
    /// A traditional-system read request (address only).
    Request,
    /// A traditional-system read response (one cache line).
    Response,
    /// A traditional-system write-back of a dirty line.
    WriteBack,
    /// A traditional-system write-through of a store that missed
    /// (write-no-allocate sends the store data off-chip).
    WriteThrough,
    /// A hardened-ESP retransmit request (address only, broadcast): a
    /// non-owner's BSHR wait timed out and asks the owner to re-issue
    /// its broadcast. The owner answers with a reparative re-broadcast.
    /// Never appears in a fault-free run.
    RetransmitReq,
}

impl MsgKind {
    /// True for message kinds that exist only in the traditional
    /// (request/response) protocol. ESP eliminates all of them (§3.1).
    /// `RetransmitReq` is part of hardened ESP itself, and under
    /// degradation a DataScalar node falls back to request/response, so
    /// neither counts as eliminated here.
    pub fn eliminated_by_esp(self) -> bool {
        matches!(self, MsgKind::Request | MsgKind::WriteBack | MsgKind::WriteThrough)
    }
}

/// One bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending port.
    pub src: PortId,
    /// Destination port, or `None` to broadcast to all other ports.
    pub dest: Option<PortId>,
    /// Transaction kind.
    pub kind: MsgKind,
    /// Line-aligned (or word) address the message concerns.
    pub line_addr: u64,
    /// Payload size in bytes (excluding the address/tag header).
    pub payload_bytes: u64,
    /// Per-line sequence number distinguishing repeated broadcasts of
    /// the same address (the paper's supplementary tag, §3.1).
    pub seq: u64,
    /// Core cycle at which the message entered its output queue. This
    /// is the *send* end of the critical-path analyzer's communication
    /// edges: it predates the fabric's grant, so arbitration and
    /// bus-occupancy waits fold into the end-to-end remote-fill
    /// latency instead of hiding as structural time (the `BusGrant`
    /// event's `queue_delay` reports the same gap observationally).
    pub enqueued_at: Cycle,
}

/// A message arriving at a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Receiving port.
    pub dest: PortId,
    /// The message.
    pub msg: Message,
    /// Core cycle of arrival.
    pub at: Cycle,
}

/// Bus geometry and clocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Number of ports (nodes).
    pub ports: usize,
    /// Width in bytes per bus cycle.
    pub width_bytes: u64,
    /// Core cycles per bus cycle (the paper's core runs at 1 GHz and
    /// the off-chip bus far slower; 10 is our default, swept in Fig. 8).
    pub clock_divisor: u64,
    /// Address/tag header bytes added to every transaction.
    pub header_bytes: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig { ports: 2, width_bytes: 8, clock_divisor: 10, header_bytes: 8 }
    }
}

/// Aggregate bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Transactions moved, total.
    pub transactions: u64,
    /// Total bytes moved (payload + headers).
    pub bytes: u64,
    /// Core cycles the bus spent transferring.
    pub busy_cycles: u64,
    /// Sum over transactions of (grant cycle − enqueue cycle), for mean
    /// queueing delay.
    pub queue_delay_cycles: u64,
    /// Broadcast transactions.
    pub broadcasts: u64,
    /// Request transactions.
    pub requests: u64,
    /// Response transactions.
    pub responses: u64,
    /// Write-back + write-through transactions.
    pub writes: u64,
    /// Retransmit-request transactions (hardened ESP; zero in a
    /// fault-free run).
    pub retransmits: u64,
}

impl BusStats {
    /// Mean queueing delay per transaction in core cycles.
    pub fn mean_queue_delay(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.queue_delay_cycles as f64 / self.transactions as f64
        }
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    msg: Message,
    done_at: Cycle,
}

/// The shared global bus.
///
/// Drive it with [`Bus::enqueue`] and one [`Bus::step`] per core cycle;
/// `step` returns the deliveries completing that cycle.
///
/// # Examples
///
/// ```
/// use ds_net::{Bus, BusConfig, Message, MsgKind};
///
/// let mut bus = Bus::new(BusConfig { ports: 2, width_bytes: 8, clock_divisor: 1, header_bytes: 8 });
/// bus.enqueue(Message {
///     src: 0, dest: None, kind: MsgKind::Broadcast,
///     line_addr: 0x1000, payload_bytes: 32, seq: 0, enqueued_at: 0,
/// });
/// let mut arrived = Vec::new();
/// for now in 0..10 {
///     arrived.extend(bus.step(now));
/// }
/// assert_eq!(arrived.len(), 1);
/// assert_eq!(arrived[0].dest, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    config: BusConfig,
    queues: Vec<VecDeque<Message>>,
    in_flight: Option<InFlight>,
    next_port: usize,
    stats: BusStats,
    /// Cycle-stamped grant events (no-op unless built with `obs`).
    probe: NetProbe,
}

impl Bus {
    /// Builds an idle bus.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no ports, zero width,
    /// or zero divisor).
    pub fn new(config: BusConfig) -> Self {
        assert!(config.ports > 0, "need at least one port");
        assert!(config.width_bytes > 0, "bus must be at least a byte wide");
        assert!(config.clock_divisor > 0, "divisor must be positive");
        Bus {
            queues: vec![VecDeque::new(); config.ports],
            config,
            in_flight: None,
            next_port: 0,
            stats: BusStats::default(),
            probe: NetProbe::default(),
        }
    }

    /// The recorded grant events (instrumented builds only).
    #[cfg(feature = "obs")]
    pub fn events(&self) -> &ds_obs::EventRing {
        self.probe.ring()
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Queues `msg` at its source port.
    ///
    /// # Panics
    ///
    /// Panics if `msg.src` (or a point-to-point `msg.dest`) is not a
    /// valid port.
    pub fn enqueue(&mut self, msg: Message) {
        assert!(msg.src < self.config.ports, "bad source port");
        if let Some(d) = msg.dest {
            assert!(d < self.config.ports, "bad destination port");
        }
        self.queues[msg.src].push_back(msg);
    }

    /// Total messages waiting in output queues (excluding in-flight).
    pub fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none() && self.queued() == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Core cycles a transaction of `payload` bytes occupies the bus.
    pub fn transfer_cycles(&self, payload_bytes: u64) -> Cycle {
        let total = payload_bytes + self.config.header_bytes;
        total.div_ceil(self.config.width_bytes) * self.config.clock_divisor
    }

    /// Advances one core cycle; returns deliveries completing now.
    ///
    /// Convenience wrapper over [`Bus::step_into`] — hot loops should
    /// pass a reused buffer to `step_into` instead.
    pub fn step(&mut self, now: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.step_into(now, &mut out);
        out
    }

    /// Advances one core cycle, clearing `out` and filling it with the
    /// deliveries completing now — no allocation once `out` has grown.
    ///
    /// Arbitration and transaction starts happen only on bus-clock edges
    /// (`now % clock_divisor == 0`); round-robin among ports.
    pub fn step_into(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        out.clear();
        // Complete an in-flight transaction.
        if let Some(fl) = &self.in_flight {
            if fl.done_at <= now {
                let msg = fl.msg;
                match msg.dest {
                    Some(d) => out.push(Delivery { dest: d, msg, at: now }),
                    None => {
                        for p in 0..self.config.ports {
                            if p != msg.src {
                                out.push(Delivery { dest: p, msg, at: now });
                            }
                        }
                    }
                }
                self.in_flight = None;
            }
        }
        // Start a new transaction on a bus-clock edge.
        if self.in_flight.is_none() && now.is_multiple_of(self.config.clock_divisor) {
            if let Some(msg) = self.arbitrate() {
                self.account(&msg, now);
                let busy = self.transfer_cycles(msg.payload_bytes);
                self.in_flight = Some(InFlight { msg, done_at: now + busy });
            }
        }
    }

    /// Earliest future cycle (strictly after `now`) at which stepping
    /// the bus can change its state or deliver anything, assuming no new
    /// messages are enqueued in between. `Cycle::MAX` when idle: an idle
    /// bus stays idle until someone enqueues. Called *after* the step at
    /// `now`, this is the bus's event horizon — every cycle before it is
    /// a guaranteed no-op.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if let Some(fl) = &self.in_flight {
            return fl.done_at.max(now + 1);
        }
        if self.queued() > 0 {
            // Nothing in flight but work queued: the next arbitration
            // happens on the next bus-clock edge.
            let d = self.config.clock_divisor;
            return ((now / d) + 1) * d;
        }
        Cycle::MAX
    }

    fn arbitrate(&mut self) -> Option<Message> {
        let ports = self.config.ports;
        for i in 0..ports {
            let p = (self.next_port + i) % ports;
            if let Some(msg) = self.queues[p].pop_front() {
                self.next_port = (p + 1) % ports;
                return Some(msg);
            }
        }
        None
    }

    fn account(&mut self, msg: &Message, now: Cycle) {
        let busy = self.transfer_cycles(msg.payload_bytes);
        self.probe.record(
            now,
            ds_obs::EventKind::BusGrant {
                bytes: msg.payload_bytes + self.config.header_bytes,
                queue_delay: now.saturating_sub(msg.enqueued_at),
            },
        );
        let s = &mut self.stats;
        s.transactions += 1;
        s.bytes += msg.payload_bytes + self.config.header_bytes;
        s.busy_cycles += busy;
        s.queue_delay_cycles += now.saturating_sub(msg.enqueued_at);
        match msg.kind {
            MsgKind::Broadcast => s.broadcasts += 1,
            MsgKind::Request => s.requests += 1,
            MsgKind::Response => s.responses += 1,
            MsgKind::WriteBack | MsgKind::WriteThrough => s.writes += 1,
            MsgKind::RetransmitReq => s.retransmits += 1,
        }
    }

    /// Appends every queued or in-flight message to `out`
    /// (deadlock-report introspection; cold path).
    pub fn pending_into(&self, out: &mut Vec<Message>) {
        if let Some(fl) = &self.in_flight {
            out.push(fl.msg);
        }
        for q in &self.queues {
            for m in q {
                out.push(*m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: PortId, dest: Option<PortId>, kind: MsgKind, at: Cycle) -> Message {
        Message {
            src,
            dest,
            kind,
            line_addr: 0x1000,
            payload_bytes: 32,
            seq: 0,
            enqueued_at: at,
        }
    }

    fn fast_bus(ports: usize) -> Bus {
        Bus::new(BusConfig { ports, width_bytes: 8, clock_divisor: 1, header_bytes: 8 })
    }

    #[test]
    fn broadcast_reaches_all_other_ports() {
        let mut bus = fast_bus(4);
        bus.enqueue(msg(1, None, MsgKind::Broadcast, 0));
        let mut got = Vec::new();
        for now in 0..20 {
            got.extend(bus.step(now));
        }
        let dests: Vec<_> = got.iter().map(|d| d.dest).collect();
        assert_eq!(dests, vec![0, 2, 3]);
    }

    #[test]
    fn transfer_time_scales_with_width() {
        let bus = fast_bus(2);
        // 32 + 8 header = 40 bytes over 8-byte bus = 5 cycles.
        assert_eq!(bus.transfer_cycles(32), 5);
        let wide = Bus::new(BusConfig { ports: 2, width_bytes: 16, clock_divisor: 1, header_bytes: 8 });
        assert_eq!(wide.transfer_cycles(32), 3);
    }

    #[test]
    fn divisor_slows_transfers() {
        let mut bus = Bus::new(BusConfig { ports: 2, width_bytes: 8, clock_divisor: 10, header_bytes: 8 });
        bus.enqueue(msg(0, Some(1), MsgKind::Response, 0));
        let mut at = None;
        for now in 0..200 {
            if let Some(d) = bus.step(now).first() {
                at = Some(d.at);
                break;
            }
        }
        assert_eq!(at, Some(50), "5 bus cycles x divisor 10");
    }

    #[test]
    fn round_robin_arbitration() {
        let mut bus = fast_bus(3);
        bus.enqueue(msg(2, Some(0), MsgKind::Response, 0));
        bus.enqueue(msg(0, Some(1), MsgKind::Response, 0));
        bus.enqueue(msg(1, Some(2), MsgKind::Response, 0));
        let mut order = Vec::new();
        for now in 0..100 {
            for d in bus.step(now) {
                order.push(d.msg.src);
            }
        }
        assert_eq!(order, vec![0, 1, 2], "round robin from port 0");
        assert!(bus.is_idle());
    }

    #[test]
    fn one_transaction_at_a_time() {
        let mut bus = fast_bus(2);
        bus.enqueue(msg(0, Some(1), MsgKind::Response, 0));
        bus.enqueue(msg(0, Some(1), MsgKind::Response, 0));
        let mut times = Vec::new();
        for now in 0..100 {
            for d in bus.step(now) {
                times.push(d.at);
            }
        }
        assert_eq!(times.len(), 2);
        assert!(times[1] >= times[0] + 5, "second waits for the first");
    }

    #[test]
    fn stats_accumulate() {
        let mut bus = fast_bus(2);
        bus.enqueue(msg(0, None, MsgKind::Broadcast, 0));
        bus.enqueue(msg(1, Some(0), MsgKind::Request, 0));
        for now in 0..100 {
            bus.step(now);
        }
        let s = bus.stats();
        assert_eq!(s.transactions, 2);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.requests, 1);
        assert_eq!(s.bytes, 40 + 40);
        assert!(s.mean_queue_delay() >= 0.0);
    }

    #[test]
    fn next_event_matches_naive_stepping() {
        // Step a divisor-10 bus naively; at every cycle, verify that
        // cycles before the reported horizon neither deliver nor change
        // state, by checking deliveries only ever arrive at or after it.
        let mut bus = Bus::new(BusConfig { ports: 3, width_bytes: 8, clock_divisor: 10, header_bytes: 8 });
        bus.enqueue(msg(0, None, MsgKind::Broadcast, 0));
        bus.enqueue(msg(1, Some(2), MsgKind::Response, 0));
        let mut horizon = 0;
        for now in 0..400u64 {
            let got = bus.step(now);
            if !got.is_empty() {
                assert!(now >= horizon, "delivery at {now} inside skippable range (horizon {horizon})");
            }
            horizon = bus.next_event(now);
            assert!(horizon > now, "horizon must be in the future");
        }
        assert!(bus.is_idle());
        assert_eq!(bus.next_event(400), Cycle::MAX, "idle bus has no events");
    }

    #[test]
    fn next_event_of_queued_bus_is_the_next_clock_edge() {
        let mut bus = Bus::new(BusConfig { ports: 2, width_bytes: 8, clock_divisor: 10, header_bytes: 8 });
        // A message enqueued between bus-clock edges waits for the next
        // edge: that edge is the horizon.
        bus.step(5);
        bus.enqueue(msg(0, Some(1), MsgKind::Response, 5));
        assert_eq!(bus.next_event(5), 10);
        assert_eq!(bus.next_event(9), 10);
    }

    #[test]
    fn esp_elimination_classification() {
        assert!(MsgKind::Request.eliminated_by_esp());
        assert!(MsgKind::WriteBack.eliminated_by_esp());
        assert!(MsgKind::WriteThrough.eliminated_by_esp());
        assert!(!MsgKind::Broadcast.eliminated_by_esp());
        assert!(!MsgKind::Response.eliminated_by_esp());
    }

    #[test]
    fn queue_delay_measured_from_enqueue() {
        let mut bus = fast_bus(2);
        bus.enqueue(msg(0, Some(1), MsgKind::Response, 0));
        let mut delivered = 0;
        for now in 0..100 {
            if now == 1 {
                bus.enqueue(msg(0, Some(1), MsgKind::Response, 1));
            }
            delivered += bus.step(now).len();
        }
        assert_eq!(delivered, 2);
        // Second message waited from cycle 1 to its grant at cycle 5.
        assert_eq!(bus.stats().queue_delay_cycles, 4);
    }

    #[test]
    #[should_panic(expected = "bad source port")]
    fn bad_port_rejected() {
        let mut bus = fast_bus(2);
        bus.enqueue(msg(5, None, MsgKind::Broadcast, 0));
    }
}
