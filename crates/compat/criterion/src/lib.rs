//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a cargo registry, so this crate
//! implements the subset of the criterion 0.5 API the workspace's
//! benches use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `finish`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It is a plain wall-clock harness: each
//! bench runs a short warm-up, then `sample_size` timed samples, and
//! prints min/mean/max per iteration. No statistics beyond that, no
//! HTML reports, no baseline storage — the repo's throughput numbers
//! come from `ds-bench`'s own `bench_throughput` binary instead.

use std::time::{Duration, Instant};

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Begins a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {}", name.into());
        BenchmarkGroup { sample_size: 20, _criterion: self }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        // Warm-up: one untimed call.
        f(&mut b);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            b.iters = 1;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "  {id:<32} min {:>10} mean {:>10} max {:>10} ({} samples)",
            fmt_secs(min),
            fmt_secs(mean),
            fmt_secs(max),
            samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

/// Passed to each benchmark closure to time its inner loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export for call sites that import it from criterion rather than
/// `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        let mut g = c.benchmark_group("t");
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        // 1 warm-up + 3 samples, 1 iteration each.
        assert_eq!(calls, 4);
    }
}
