//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a cargo registry, so
//! this vendored crate provides the (small) subset of the `rand` 0.8
//! API the workspace actually uses: [`SmallRng`](rngs::SmallRng) seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ over a splitmix64-expanded seed — a
//! different stream than upstream `rand`, but every consumer in this
//! workspace only requires determinism (fixed seed → fixed sequence),
//! which this crate guarantees: the algorithm is pinned and will never
//! change observable output for a given seed.

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types into which a uniform sample can be drawn from a range.
pub trait SampleUniform: Sized + Copy {}

/// A range that can be sampled uniformly, producing `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`start..end` or `start..=end`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn sample_f64(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Rejection-free-enough bounded sampling: widening multiply keeps the
/// modulo bias far below anything a simulator kernel can observe, and
/// stays deterministic.
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + sample_f64(rng) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut impl RngCore);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<'a>(&'a self, rng: &mut impl RngCore) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut impl RngCore) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a>(&'a self, rng: &mut impl RngCore) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_fixed_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let c = r.gen_range(b'a'..=b'z');
            assert!(c.is_ascii_lowercase());
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut r = SmallRng::seed_from_u64(3);
        let _: u64 = r.gen_range(0u64..=u64::MAX);
    }
}
