//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a cargo registry, so this
//! vendored crate implements the subset of the proptest 1.x API used by
//! the workspace's property tests: the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_filter_map` / `prop_recursive`, [`Just`], [`any`],
//! [`prop_oneof!`], and the `prop::{collection, option, bool, sample}`
//! modules.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its (Debug-printed)
//!   inputs and the deterministic per-test seed reproduces it exactly;
//! * **deterministic by construction** — the RNG seed is a hash of the
//!   test function's name, so failures are stable across runs and
//!   machines (no `.proptest-regressions` files are consulted);
//! * the default case count is 64 (set `ProptestConfig::with_cases` for
//!   more).

use std::sync::Arc;

pub use rand;

/// Test-runner plumbing (RNG construction).
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// The deterministic generator driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// A generator seeded from a stable hash of `name`, so every
        /// test function replays the same case sequence forever.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred` (resampling, bounded).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }

    /// Combined filter + map: `f` returning `None` resamples.
    fn prop_filter_map<U: std::fmt::Debug, F>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, reason, f }
    }

    /// Builds recursive values: `recurse` receives a strategy for the
    /// previous depth level and returns the next level; leaves are
    /// mixed back in at every level so trees stay finite.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let level = recurse(strat).boxed();
            let l = leaf.clone();
            strat = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                if rng.next_u64() % 4 == 0 {
                    l.sample(rng)
                } else {
                    level.sample(rng)
                }
            }));
        }
        strat
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

const FILTER_RETRIES: u32 = 10_000;

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly centred values; good enough for arithmetic
        // property tests.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * 2e6 - 1e6
    }
}

/// Full-range strategy for `T` (the upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A uniform choice among type-erased alternatives (see
/// [`prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> Union<T> {
    /// A union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Strategy combinator modules (the upstream `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// A `Vec` whose length is uniform in `len` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rand::Rng::gen_range(rng, self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// `Some` three times out of four, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() % 4 == 0 {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Fair coin strategy for `bool`.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// The upstream `prop::bool::ANY`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Sampling from explicit collections.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// A uniform choice from `values`.
        ///
        /// # Panics
        ///
        /// Panics if `values` is empty.
        pub fn select<T: Clone + std::fmt::Debug>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select needs at least one value");
            Select { values }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            values: Vec<T>,
        }

        impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                let i = (rng.next_u64() % self.values.len() as u64) as usize;
                self.values[i].clone()
            }
        }
    }
}

/// The catch-all import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::prop;
    pub use super::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// A uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property-test functions: each `#[test] fn name(x in
/// strategy, ...) { body }` runs `body` for `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = {
                    let mut s = String::new();
                    $(s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)+
                    s
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(e) = __outcome {
                    eprintln!(
                        "proptest: case {}/{} of `{}` failed with inputs:\n{}",
                        __case + 1, __config.cases, stringify!($name), __inputs
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    impl Tree {
        fn depth(&self) -> u32 {
            match self {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + a.depth().max(b.depth()),
            }
        }
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        let leaf = (0i64..100).prop_map(Tree::Leaf);
        leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0u64..10, y in -5i32..5) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..4, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn recursion_is_bounded(t in tree_strategy()) {
            prop_assert!(t.depth() <= 4);
        }

        #[test]
        fn filters_apply(x in (0u64..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use super::test_runner::TestRng;
        use super::Strategy;
        let strat = super::prop::collection::vec(0u64..1000, 5..10);
        let a = strat.sample(&mut TestRng::deterministic("x"));
        let b = strat.sample(&mut TestRng::deterministic("x"));
        assert_eq!(a, b);
    }
}
