//! End-to-end analyzer tests: each fixture tree seeds one violation
//! per pass and the analyzer must catch it — with the call chain for
//! the transitive rules — while the real workspace stays clean.

use ds_analyze::{analyze, analyze_tree, graph::Workspace, load_workspace, passes, ARule};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn findings_of(root: &Path) -> Vec<ds_analyze::Finding> {
    analyze(load_workspace(root).unwrap()).findings
}

#[test]
fn pass_a_catches_transitive_allocation_with_chain() {
    let findings = findings_of(&fixture("ta1"));
    let f = findings
        .iter()
        .find(|f| f.rule == ARule::Ta1 && f.func == "deep_helper")
        .expect("seeded ta1 violation detected");
    assert_eq!(
        f.chain,
        vec!["Node::step_shared", "Node::refill", "deep_helper"],
        "diagnostic carries the offending call chain"
    );
    assert!(
        !findings.iter().any(|f| f.func == "allowed_helper"),
        "site-level allow must silence the allowed twin: {findings:?}"
    );
}

#[test]
fn edge_roots_are_policed_by_transitive_passes() {
    // The critical-path analyzer's `edge*` recording fns root ta1/tp1
    // exactly like the step/record/charge families.
    let findings = findings_of(&fixture("ta1"));
    let f = findings
        .iter()
        .find(|f| f.rule == ARule::Ta1 && f.func == "retire_scratch")
        .expect("allocation below an edge* root detected");
    assert_eq!(f.chain, vec!["Win::edge_retire", "retire_scratch"]);

    let findings = findings_of(&fixture("tp1"));
    let f = findings
        .iter()
        .find(|f| f.rule == ARule::Tp1 && f.func == "last_arrival")
        .expect("panic path below an edge* root detected");
    assert_eq!(f.chain, vec!["edge_note", "last_arrival"]);
    assert!(f.message.contains(".unwrap()"));
}

#[test]
fn chaos_roots_are_policed_by_transitive_passes() {
    // The ds-chaos per-cycle paths — the fault injector's delivery
    // rewrite (`inject*`) and the forward-progress check (`watchdog*`)
    // — root ta1/tp1 exactly like the step/record/charge families.
    let findings = findings_of(&fixture("ta1"));
    let f = findings
        .iter()
        .find(|f| f.rule == ARule::Ta1 && f.func == "held_scratch")
        .expect("allocation below an inject* root detected");
    assert_eq!(f.chain, vec!["Injector::inject_step", "held_scratch"]);

    let findings = findings_of(&fixture("tp1"));
    let f = findings
        .iter()
        .find(|f| f.rule == ARule::Tp1 && f.func == "stuck_probe")
        .expect("panic path below a watchdog* root detected");
    assert_eq!(f.chain, vec!["watchdog_check", "stuck_probe"]);
    assert!(f.message.contains(".unwrap()"));
}

#[test]
fn pass_b_catches_panic_reachability_with_chain() {
    let findings = findings_of(&fixture("tp1"));
    let f = findings
        .iter()
        .find(|f| f.rule == ARule::Tp1 && f.func == "Core::retire")
        .expect("seeded tp1 violation detected");
    assert_eq!(f.chain, vec!["Core::advance_to", "Core::retire"]);
    assert!(f.message.contains(".unwrap()"));
}

#[test]
fn pass_b_catches_nondeterminism_taint_with_chain() {
    let findings = findings_of(&fixture("td2"));
    let f = findings
        .iter()
        .find(|f| f.rule == ARule::Td2 && f.func == "stamp")
        .expect("seeded td2 violation detected");
    assert_eq!(f.chain, vec!["Probe::record_event", "stamp"]);
    assert!(f.message.contains("Instant"));
}

#[test]
fn pass_c_catches_worker_closure_aliasing() {
    let findings = findings_of(&fixture("pa1"));
    let pa1: Vec<_> = findings.iter().filter(|f| f.rule == ARule::Pa1).collect();
    assert!(
        pa1.iter().any(|f| f.message.contains("`shared`")),
        "write to captured shared binding flagged: {pa1:?}"
    );
    assert!(
        pa1.iter().any(|f| f.message.contains("`nodes`")),
        "peer-capable collection indexing flagged: {pa1:?}"
    );
    assert!(
        pa1.iter().any(|f| f.message.contains("`self`")),
        "self access in worker closure flagged: {pa1:?}"
    );
    assert!(
        pa1.iter().all(|f| f.func == "Engine::run_parallel"),
        "findings attributed to the enclosing fn: {pa1:?}"
    );
    assert!(
        !pa1.iter().any(|f| f.message.contains("`local`")),
        "closure-local state must not be flagged: {pa1:?}"
    );
}

#[test]
fn pass_c_catches_unjustified_strong_ordering() {
    let findings = findings_of(&fixture("pa2"));
    let pa2: Vec<_> = findings.iter().filter(|f| f.rule == ARule::Pa2).collect();
    assert_eq!(pa2.len(), 1, "only the unjustified ordering fires: {pa2:?}");
    assert_eq!(pa2[0].func, "Barrier::arm");
    assert!(pa2[0].message.contains("Ordering::Release"));
}

#[test]
fn real_workspace_is_clean_modulo_baseline() {
    let root = workspace_root();
    let analysis = analyze_tree(&root, &root.join("crates/analyze/baseline.txt")).unwrap();
    let active: Vec<_> = analysis.active().collect();
    assert!(
        active.is_empty(),
        "the tree must be analyzer-clean (fix it, annotate the invariant, or baseline \
         with a reason):\n{}",
        active.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(analysis.files >= 40, "workspace shrank? parsed {} files", analysis.files);
    assert!(analysis.roots >= 30, "root set shrank? {} roots", analysis.roots);
}

/// The PR-7 audit targets stay inside the proven region: the stall
/// accounting entry point is a root and its classification helpers are
/// reachable, so any future allocation/panic slipped into them becomes
/// a ta1/tp1 finding rather than a silent regression.
#[test]
fn stall_accounting_helpers_are_in_the_proven_region() {
    let w = Workspace::build(load_workspace(&workspace_root()).unwrap());
    let roots = w.roots_by_prefix(&passes::ROOT_PREFIXES);
    let by_name = |q: &str| w.fns.iter().find(|f| f.qualified() == q);
    let charge = by_name("Node::charge_cycle").expect("Node::charge_cycle exists");
    assert!(roots.contains(&charge.id), "charge_cycle is a transitive-pass root");
    let parent = w.reach(&roots);
    for q in ["Node::classify_stall", "OooCore::stall_class"] {
        let f = by_name(q).unwrap_or_else(|| panic!("{q} exists"));
        assert!(parent[f.id].is_some(), "{q} is reachable from the cycle-loop roots");
    }
}

#[test]
fn self_check_seeds_one_violation_per_pass() {
    let failures = ds_analyze::self_check();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
