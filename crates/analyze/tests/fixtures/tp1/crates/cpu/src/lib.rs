//! Pass B (tp1) fixture: a panic path below an `advance_to*` root —
//! the event-horizon engine's entry point family.

pub struct Core {
    slots: [Option<u8>; 4],
}

impl Core {
    pub fn advance_to(&mut self, cycle: u64) {
        self.retire(cycle);
    }

    // SEEDED VIOLATION (tp1): `.unwrap()` reachable from
    // Core::advance_to via Core::retire.
    fn retire(&mut self, cycle: u64) -> u8 {
        self.slot(cycle).unwrap()
    }

    fn slot(&self, cycle: u64) -> Option<u8> {
        self.slots[(cycle % 4) as usize]
    }
}

/// The critical-path analyzer's recording family: `edge*` names root
/// the transitive passes too.
pub fn edge_note(core: &Core, cycle: u64) -> u8 {
    last_arrival(core, cycle)
}

// SEEDED VIOLATION (tp1): `.unwrap()` reachable from the `edge*` root
// edge_note via last_arrival.
fn last_arrival(core: &Core, cycle: u64) -> u8 {
    core.slot(cycle).unwrap()
}

/// The ds-chaos family: `watchdog*` names root the transitive passes —
/// the forward-progress check runs every cycle of a faulted run.
pub fn watchdog_check(core: &Core, cycle: u64) -> u8 {
    stuck_probe(core, cycle)
}

// SEEDED VIOLATION (tp1): `.unwrap()` reachable from the `watchdog*`
// root watchdog_check via stuck_probe.
fn stuck_probe(core: &Core, cycle: u64) -> u8 {
    core.slot(cycle).unwrap()
}
