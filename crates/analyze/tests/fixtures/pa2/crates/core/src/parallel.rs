//! Pass C (pa2) fixture: a strong atomic ordering without a
//! justification, next to an annotated one that must stay quiet.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Barrier {
    stop: AtomicBool,
}

impl Barrier {
    // SEEDED VIOLATION (pa2): unjustified Release in worker
    // coordination code.
    pub fn arm(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub fn armed(&self) -> bool {
        // ds-analyze: allow(pa2) fixture: pairs with arm's Release
        self.stop.load(Ordering::Acquire)
    }
}
