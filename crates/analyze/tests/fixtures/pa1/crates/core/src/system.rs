//! Pass C (pa1) fixture: a worker closure that writes shared state and
//! reaches for `self` — both must be flagged; the closure's own locals
//! must not be.

pub struct FakeScope;

impl FakeScope {
    pub fn spawn<F: FnOnce()>(&self, f: F) {
        f();
    }
}

pub struct Engine {
    pub merged: u64,
}

impl Engine {
    pub fn run_parallel(&mut self, scope: &FakeScope, shared: &mut u64, nodes: &mut [u64]) {
        let workers = 2usize;
        let w = 0usize;
        let n = nodes.len();
        scope.spawn(move || {
            // Fine: closure-local state.
            let mut local = 0u64;
            local += 1;
            // SEEDED VIOLATION (pa1): write to captured shared binding.
            *shared = local;
            // SEEDED VIOLATION (pa1): indexing a shared collection can
            // reach peer-node state.
            for i in (w..n).step_by(workers) {
                nodes[i] += 1;
            }
            // SEEDED VIOLATION (pa1): `self` (DsSystem state) in a
            // worker closure.
            self.merged += 1;
        });
    }
}
