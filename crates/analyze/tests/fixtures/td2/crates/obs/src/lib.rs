//! Pass B (td2) fixture: wall-clock taint below a `record*` root —
//! an instrumented probe must never time-stamp simulated events with
//! host time.

use std::time::Instant;

pub struct Probe {
    pub last: u64,
}

impl Probe {
    pub fn record_event(&mut self) {
        self.last = stamp();
    }
}

// SEEDED VIOLATION (td2): `Instant` taints Probe::record_event.
fn stamp() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
