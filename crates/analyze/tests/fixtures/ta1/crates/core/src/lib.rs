//! Pass A fixture: an allocation hidden two calls below a cycle-loop
//! root. The intraprocedural a1 rule cannot see it; ta1 must, and the
//! diagnostic must carry the full chain.

pub struct Node {
    scratch: Vec<u8>,
}

impl Node {
    pub fn step_shared(&mut self, now: u64) {
        self.refill(now);
    }

    fn refill(&mut self, now: u64) {
        self.scratch.clear();
        deep_helper(now);
    }
}

// SEEDED VIOLATION (ta1): allocates, and is reachable from
// Node::step_shared via Node::refill.
fn deep_helper(now: u64) -> usize {
    let v = vec![now; 4];
    v.len()
}

// Allowed twin: same shape, suppressed at the site — must NOT fire.
fn allowed_helper(now: u64) -> usize {
    // ds-analyze: allow(ta1) fixture: documented amortized growth
    let v = vec![now; 4];
    v.len()
}

pub fn tickle(now: u64) -> usize {
    allowed_helper(now)
}

pub fn tick_all(now: u64) -> usize {
    tickle(now)
}

// The critical-path analyzer's per-retirement family: `edge*` names
// root the transitive passes like `step*`/`record*` do.
pub struct Win {
    pcs: [u64; 4],
    len: usize,
}

impl Win {
    pub fn edge_retire(&mut self, pc: u64) {
        self.pcs[self.len % 4] = pc;
        self.len += 1;
        retire_scratch(pc);
    }
}

// SEEDED VIOLATION (ta1): allocates, and is reachable from the
// `edge*` root Win::edge_retire.
fn retire_scratch(pc: u64) -> usize {
    let v = vec![pc; 2];
    v.len()
}

// The ds-chaos family: `inject*`/`fault*`/`watchdog*` names root the
// transitive passes — the injector's delivery rewrite runs at every
// fabric delivery of a faulted run.
pub struct Injector {
    held: [u64; 4],
    len: usize,
}

impl Injector {
    pub fn inject_step(&mut self, now: u64) {
        self.held[self.len % 4] = now;
        self.len += 1;
        held_scratch(now);
    }
}

// SEEDED VIOLATION (ta1): allocates, and is reachable from the
// `inject*` root Injector::inject_step.
fn held_scratch(now: u64) -> usize {
    let v = vec![now; 2];
    v.len()
}
