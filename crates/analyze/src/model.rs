//! The per-file model: function definitions with their impl owners,
//! per-function fact sites (allocation, panic, nondeterminism) and
//! call sites, extracted from ds-lint's shared token stream.
//!
//! This is deliberately a *lexical* model, not a type-checked one: the
//! analyzer over-approximates call resolution by name (see
//! `graph.rs`), which is sound for the invariants it proves — a chain
//! that cannot happen at runtime can only add a finding, never hide
//! one — and keeps the whole pass dependency-free and fast enough to
//! run on every `verify.sh`.

use ds_lint::tokens::{strip, tokenize, LineIndex, Token, TokenKind};
use ds_lint::{parse_directives, scan, AllowSet, DirectiveError};

/// Rule codes `ds-analyze:` directives may name.
pub const ANALYZE_RULE_CODES: [&str; 5] = ["ta1", "tp1", "td2", "pa1", "pa2"];

/// The directive prefix for analyzer-specific suppressions.
pub const ANALYZE_DIRECTIVE: &str = "ds-analyze:";

/// One source file handed to the analyzer.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Short crate name (`core`, `cpu`, ...).
    pub crate_name: String,
    /// Workspace-relative path (`crates/core/src/node.rs`).
    pub rel_path: String,
    /// Raw source text.
    pub raw: String,
}

/// What kind of fact a [`Site`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fact {
    /// An allocation token (`Vec::new`, `format!`, `.collect()`, ...).
    Alloc,
    /// A panic path (`.unwrap()`, `.expect(..)`, `panic!`).
    Panic,
    /// Nondeterminism taint: wall-clock, ambient randomness, or a
    /// hash-ordered container.
    Taint,
}

/// One fact occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// What was found.
    pub fact: Fact,
    /// The offending token, for the diagnostic (`Vec::new`, `.unwrap()`).
    pub what: String,
    /// 1-based line in the file.
    pub line: usize,
    /// True when a line or block allow covers this site.
    pub suppressed: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(...)` — a method on some receiver.
    Method,
    /// `Qualifier::name(...)`.
    Qualified(String),
    /// `name(...)` — a free function (possibly imported).
    Bare,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// How the callee is addressed.
    pub kind: CallKind,
    /// 1-based line of the call.
    pub line: usize,
}

/// One function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Index into the workspace function table.
    pub id: usize,
    /// Bare name (`step_shared`).
    pub name: String,
    /// Enclosing `impl` type, if any (`Node`).
    pub owner: Option<String>,
    /// True if the parameter list mentions `self`.
    pub has_self: bool,
    /// File index into the workspace file table.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte range of the body braces in the cleaned text (inclusive).
    pub body: (usize, usize),
    /// Fact sites inside the body.
    pub sites: Vec<Site>,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
}

impl FnDef {
    /// `Owner::name` or bare `name` — the spelling used in diagnostics
    /// and in the suppression baseline.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything the passes need from one parsed file.
pub struct FileModel {
    /// Cleaned text (comments/strings blanked, offsets preserved).
    pub cleaned: String,
    /// Token stream over `cleaned`.
    pub tokens: Vec<Token>,
    /// Offset → line mapping.
    pub index: LineIndex,
    /// Merged `ds-lint:` + `ds-analyze:` suppressions.
    pub allows: AllowSet,
    /// Malformed `ds-analyze:` directives (ds-lint owns its own).
    pub directive_errors: Vec<DirectiveError>,
    /// `#[cfg(test)]` regions (byte ranges; exempt from everything).
    pub test_regions: Vec<(usize, usize)>,
}

/// The allocation token set — deliberately identical to ds-lint's a1
/// scan so a site reads the same in both tools' diagnostics.
const ALLOC_PATTERNS: [&str; 6] =
    ["Vec::new", "vec![", "Box::new", "String::new", "format!", "to_vec"];

/// d2 nondeterminism tokens, same as ds-lint.
const TAINT_WORDS: [&str; 7] = [
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "RandomState",
    "HashMap",
    "HashSet",
];

/// Keywords that can precede `(` without being a call.
const NON_CALL_WORDS: [&str; 22] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "where", "unsafe", "dyn", "impl", "use", "mod",
];

/// Parses `file`, appending its functions to `fns` (ids continue from
/// `fns.len()`); `file_idx` is the caller's index for this file.
pub fn parse_file(file: &SourceFile, file_idx: usize, fns: &mut Vec<FnDef>) -> FileModel {
    let cleaned = strip(&file.raw);
    let tokens = tokenize(&cleaned);
    let index = LineIndex::new(&cleaned);
    let test_regions = scan::test_regions(&cleaned);

    // ds-lint allows suppress the matching transitive rule at a site
    // (an annotated `allow(p1)` unwrap needs no second annotation for
    // tp1); ds-analyze allows use the analyzer's own codes. Map the
    // lint codes onto the transitive ones by parsing both grammars.
    let (lint_allows, _) = parse_directives("ds-lint:", &ds_lint::RULE_CODES, &file.raw, &cleaned);
    let (analyze_allows, directive_errors) =
        parse_directives(ANALYZE_DIRECTIVE, &ANALYZE_RULE_CODES, &file.raw, &cleaned);
    let mut allows = analyze_allows;
    allows.merge(lint_allows);

    let impls = impl_regions(&cleaned, &tokens);
    let first = fns.len();
    collect_fns(&cleaned, &tokens, &impls, &test_regions, file_idx, &index, fns);
    let new_fns = &mut fns[first..];

    // Fact sites, assigned to the innermost containing function.
    let mut facts: Vec<(usize, Fact, String)> = Vec::new();
    for pat in ALLOC_PATTERNS {
        for at in scan::occurrences(&cleaned, pat) {
            facts.push((at, Fact::Alloc, pat.to_string()));
        }
    }
    for at in scan::method_calls(&cleaned, "collect") {
        facts.push((at, Fact::Alloc, ".collect()".to_string()));
    }
    for at in scan::method_calls(&cleaned, "to_vec") {
        facts.push((at, Fact::Alloc, ".to_vec()".to_string()));
    }
    for m in ["unwrap", "expect"] {
        for at in scan::method_calls(&cleaned, m) {
            facts.push((at, Fact::Panic, format!(".{m}()")));
        }
    }
    for at in scan::occurrences(&cleaned, "panic!") {
        let boundary = at == 0 || {
            let c = cleaned.as_bytes()[at - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if boundary {
            facts.push((at, Fact::Panic, "panic!".to_string()));
        }
    }
    for w in TAINT_WORDS {
        for at in scan::word_occurrences(&cleaned, w) {
            facts.push((at, Fact::Taint, w.to_string()));
        }
    }
    for at in scan::occurrences(&cleaned, "rand::random") {
        facts.push((at, Fact::Taint, "rand::random".to_string()));
    }

    for (at, fact, what) in facts {
        if scan::in_regions(&test_regions, at) {
            continue;
        }
        if let Some(f) = innermost(new_fns, at) {
            let line = index.line_of(at);
            let lint_code = match fact {
                Fact::Alloc => "a1",
                Fact::Panic => "p1",
                Fact::Taint => "d2",
            };
            let analyze_code = match fact {
                Fact::Alloc => "ta1",
                Fact::Panic => "tp1",
                Fact::Taint => "td2",
            };
            let suppressed =
                allows.allows(line, lint_code) || allows.allows(line, analyze_code);
            new_fns[f].sites.push(Site { fact, what, line, suppressed });
        }
    }

    // Call sites.
    let calls = call_sites(&cleaned, &tokens, &test_regions, &index);
    for (at, call) in calls {
        if let Some(f) = innermost(new_fns, at) {
            new_fns[f].calls.push(call);
        }
    }

    FileModel { cleaned, tokens, index, allows, directive_errors, test_regions }
}

/// `(body range, type name)` for every `impl` block.
fn impl_regions(cleaned: &str, tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_word(cleaned, "impl") {
            i += 1;
            continue;
        }
        // Walk the header up to its `{`, tracking <> nesting; the type
        // is the last angle-depth-0 identifier before `{` (or `where`),
        // which handles `impl Foo`, `impl<T> Foo<T>` and
        // `impl Trait for Foo` alike.
        let mut angle = 0i32;
        let mut ty = None;
        let mut j = i + 1;
        while j < tokens.len() {
            let t = &tokens[j];
            match t.kind {
                TokenKind::Punct(b'<') => angle += 1,
                TokenKind::Punct(b'>') => angle -= 1,
                TokenKind::Punct(b'{') if angle <= 0 => break,
                TokenKind::Punct(b';') if angle <= 0 => break,
                TokenKind::Ident if angle == 0 => {
                    let w = t.text(cleaned);
                    if w == "where" {
                        // Bound types must not shadow the impl type.
                        while j < tokens.len() && !tokens[j].is_punct(b'{') {
                            j += 1;
                        }
                        break;
                    }
                    if w != "for" && w != "dyn" {
                        ty = Some(w.to_string());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j < tokens.len() && tokens[j].is_punct(b'{') {
            if let (Some(ty), Some(end)) = (ty, matching_brace(tokens, j)) {
                out.push((tokens[j].start, tokens[end].end, ty));
                i = j + 1;
                continue;
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// Token index of the `}` matching the `{` at token index `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct(b'{') => depth += 1,
            TokenKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Collects every `fn` definition outside `#[cfg(test)]` regions.
#[allow(clippy::too_many_arguments)]
fn collect_fns(
    cleaned: &str,
    tokens: &[Token],
    impls: &[(usize, usize, String)],
    test_regions: &[(usize, usize)],
    file_idx: usize,
    index: &LineIndex,
    fns: &mut Vec<FnDef>,
) {
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_word(cleaned, "fn") {
            i += 1;
            continue;
        }
        let at = tokens[i].start;
        let Some(name_tok) = tokens.get(i + 1) else { break };
        if name_tok.kind != TokenKind::Ident {
            // `fn(u8) -> u8` pointer type, not a definition.
            i += 1;
            continue;
        }
        if scan::in_regions(test_regions, at) {
            i += 2;
            continue;
        }
        let name = name_tok.text(cleaned).to_string();
        // Skip generics to the parameter list.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct(b'<') => angle += 1,
                TokenKind::Punct(b'>') => angle -= 1,
                TokenKind::Punct(b'(') if angle <= 0 => break,
                TokenKind::Punct(b'{') | TokenKind::Punct(b';') if angle <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct(b'(') {
            i = j.max(i + 1);
            continue;
        }
        // Parameter list: match parens, note `self`.
        let mut paren = 0i64;
        let mut has_self = false;
        let params_open = j;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct(b'(') => paren += 1,
                TokenKind::Punct(b')') => {
                    paren -= 1;
                    if paren == 0 {
                        break;
                    }
                }
                TokenKind::Ident if tokens[j].is_word(cleaned, "self") && paren >= 1 => {
                    has_self = true;
                }
                _ => {}
            }
            j += 1;
        }
        let _ = params_open;
        // Find the body `{` (return type and where clause may
        // intervene; `;` at bracket depth zero means a bodyless decl).
        let mut k = j + 1;
        let mut depth = 0i64;
        let mut body = None;
        while k < tokens.len() {
            match tokens[k].kind {
                TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => depth += 1,
                TokenKind::Punct(b')') | TokenKind::Punct(b']') => depth -= 1,
                TokenKind::Punct(b';') if depth == 0 => break,
                TokenKind::Punct(b'{') if depth == 0 => {
                    if let Some(close) = matching_brace(tokens, k) {
                        body = Some((tokens[k].start, tokens[close].end));
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(body) = body else {
            i = k.max(i + 1);
            continue;
        };
        let owner = impls
            .iter()
            .filter(|(s, e, _)| at >= *s && at <= *e)
            .min_by_key(|(s, e, _)| e - s)
            .map(|(_, _, ty)| ty.clone());
        fns.push(FnDef {
            id: fns.len(),
            name,
            owner,
            has_self,
            file: file_idx,
            line: index.line_of(at),
            body,
            sites: Vec::new(),
            calls: Vec::new(),
        });
        i += 2;
    }
}

/// Index of the innermost function in `fns` whose body contains
/// `offset` (functions nested in another fn body pick the inner one).
fn innermost(fns: &[FnDef], offset: usize) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| offset >= f.body.0 && offset <= f.body.1)
        .min_by_key(|(_, f)| f.body.1 - f.body.0)
        .map(|(i, _)| i)
}

/// Extracts call sites: `ident (` sequences classified as method,
/// qualified or bare calls. Macros (`ident!`) and keywords are skipped;
/// tuple-struct constructors resolve to nothing downstream and drop out
/// naturally.
fn call_sites(
    cleaned: &str,
    tokens: &[Token],
    test_regions: &[(usize, usize)],
    index: &LineIndex,
) -> Vec<(usize, CallSite)> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(cleaned);
        if NON_CALL_WORDS.contains(&name) {
            continue;
        }
        // Next non-turbofish token must open the argument list.
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].is_punct(b'!') {
            continue; // macro
        }
        // `name::<T>(...)` turbofish.
        if j + 1 < tokens.len() && tokens[j].is_punct(b':') && tokens[j + 1].is_punct(b':') {
            if j + 2 < tokens.len() && tokens[j + 2].is_punct(b'<') {
                let mut angle = 0i32;
                j += 2;
                while j < tokens.len() {
                    match tokens[j].kind {
                        TokenKind::Punct(b'<') => angle += 1,
                        TokenKind::Punct(b'>') => {
                            angle -= 1;
                            if angle == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                continue; // `name::more` — the later segment will match
            }
        }
        if j >= tokens.len() || !tokens[j].is_punct(b'(') {
            continue;
        }
        if scan::in_regions(test_regions, t.start) {
            continue;
        }
        // Definition, not a call.
        if i > 0 && tokens[i - 1].is_word(cleaned, "fn") {
            continue;
        }
        let kind = if i > 0 && tokens[i - 1].is_punct(b'.') {
            CallKind::Method
        } else if i > 1 && tokens[i - 1].is_punct(b':') && tokens[i - 2].is_punct(b':') {
            match tokens.get(i.wrapping_sub(3)) {
                Some(q) if q.kind == TokenKind::Ident => {
                    CallKind::Qualified(q.text(cleaned).to_string())
                }
                _ => CallKind::Bare,
            }
        } else {
            CallKind::Bare
        };
        out.push((
            t.start,
            CallSite { name: name.to_string(), kind, line: index.line_of(t.start) },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> (Vec<FnDef>, FileModel) {
        let file = SourceFile {
            crate_name: "core".into(),
            rel_path: "crates/core/src/x.rs".into(),
            raw: src.into(),
        };
        let mut fns = Vec::new();
        let fm = parse_file(&file, 0, &mut fns);
        (fns, fm)
    }

    #[test]
    fn fns_get_owners_and_self_flags() {
        let src = "impl Node { fn step(&mut self) { helper(); } }\n\
                   fn helper() { }\n\
                   impl Borrow<Node> for GuardCell<'_> { fn borrow(&self) -> &Node { &self.0 } }\n";
        let (fns, _) = model(src);
        let names: Vec<(String, bool)> =
            fns.iter().map(|f| (f.qualified(), f.has_self)).collect();
        assert_eq!(
            names,
            vec![
                ("Node::step".to_string(), true),
                ("helper".to_string(), false),
                ("GuardCell::borrow".to_string(), true),
            ]
        );
    }

    #[test]
    fn sites_attach_to_the_innermost_fn() {
        let src = "fn outer() { let v: Vec<u8> = Vec::new(); }\n\
                   fn inner_host() { fn nested() { x.unwrap(); } nested(); }\n";
        let (fns, _) = model(src);
        assert_eq!(fns[0].sites.len(), 1);
        assert_eq!(fns[0].sites[0].fact, Fact::Alloc);
        let nested = fns.iter().find(|f| f.name == "nested").unwrap();
        assert_eq!(nested.sites.len(), 1);
        assert_eq!(nested.sites[0].fact, Fact::Panic);
        let host = fns.iter().find(|f| f.name == "inner_host").unwrap();
        assert!(host.sites.is_empty(), "nested site must not double-count");
    }

    #[test]
    fn call_kinds_classified() {
        let src = "fn f(&self) { self.step(); Fabric::new(); helper(); mac!(x); Self::tick(); }\n";
        let (fns, _) = model(src);
        let calls: Vec<(String, CallKind)> =
            fns[0].calls.iter().map(|c| (c.name.clone(), c.kind.clone())).collect();
        assert_eq!(
            calls,
            vec![
                ("step".to_string(), CallKind::Method),
                ("new".to_string(), CallKind::Qualified("Fabric".to_string())),
                ("helper".to_string(), CallKind::Bare),
                ("tick".to_string(), CallKind::Qualified("Self".to_string())),
            ]
        );
    }

    #[test]
    fn array_return_types_do_not_hide_bodies() {
        let src = "fn step(&self) -> [u8; 4] { let v = Vec::new(); [0; 4] }\n";
        let (fns, _) = model(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].sites.len(), 1, "body after `[u8; 4]` still parsed");
    }

    #[test]
    fn lint_and_analyze_allows_suppress_sites() {
        let src = "fn f() { x.unwrap() } // ds-lint: allow(p1) invariant documented here\n\
                   fn g() { y.unwrap() } // ds-analyze: allow(tp1) checked by caller\n\
                   fn h() { z.unwrap() }\n";
        let (fns, _) = model(src);
        assert!(fns[0].sites[0].suppressed);
        assert!(fns[1].sites[0].suppressed);
        assert!(!fns[2].sites[0].suppressed);
    }

    #[test]
    fn cfg_test_fns_are_invisible() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n";
        let (fns, _) = model(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }
}
