//! # ds-analyze — interprocedural invariants for the DataScalar tree
//!
//! `ds-lint` (PR 3) proves *intra*procedural facts: no allocation
//! token inside a `step*` body, no unannotated `unwrap` in a hot
//! module. This crate closes the loophole those rules leave open — a
//! helper extracted out of `step` carries its allocation with it and
//! the linter loses sight of the invariant. ds-analyze rebuilds the
//! view the linter lacks: a workspace-wide symbol table and call
//! graph over every simulation crate, with reachability from the
//! cycle-loop roots.
//!
//! Passes (see `docs/analysis.md` for the catalog with examples):
//!
//! | code | meaning |
//! |------|---------|
//! | ta1  | allocation in a function transitively reachable from a cycle-loop root |
//! | tp1  | panic path reachable from a cycle-loop root |
//! | td2  | wall-clock / randomness / hash-iteration taint reaching the cycle loop |
//! | pa1  | worker closure touching `DsSystem`/peer-node/shared state |
//! | pa2  | non-relaxed atomic ordering without a justification |
//!
//! The analysis is lexical and name-based (shared tokenizer with
//! ds-lint; no rustc, no `syn` — the build environment is offline).
//! Call resolution over-approximates, which is the *sound* direction
//! for these invariants: a spurious edge can only add a finding,
//! never hide one, and every transitive finding prints its call chain
//! so a human can judge it in seconds. Escape hatches are explicit
//! and reasoned: `// ds-analyze: allow(<rule>) <reason>` at a site
//! (plus `allow-start`/`allow-end` block form, shared with ds-lint),
//! or a committed baseline entry with a mandatory reason for accepted
//! debt. Stale baseline entries fail the run.

pub mod baseline;
pub mod graph;
pub mod model;
pub mod passes;

use model::SourceFile;
use std::fmt;
use std::path::Path;

/// Analyzer rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ARule {
    /// Transitive allocation-freedom of the cycle path.
    Ta1,
    /// Transitive panic-reachability from the cycle loop.
    Tp1,
    /// Transitive nondeterminism taint of the cycle loop.
    Td2,
    /// Worker-closure aliasing discipline.
    Pa1,
    /// Atomic-ordering justification in worker coordination.
    Pa2,
    /// Malformed directive / baseline problems.
    Directive,
}

impl ARule {
    /// Short code used in diagnostics, directives and the baseline.
    pub fn code(self) -> &'static str {
        match self {
            ARule::Ta1 => "ta1",
            ARule::Tp1 => "tp1",
            ARule::Td2 => "td2",
            ARule::Pa1 => "pa1",
            ARule::Pa2 => "pa2",
            ARule::Directive => "directive",
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: ARule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the first offending site.
    pub line: usize,
    /// Qualified function the finding is attributed to (`Owner::name`).
    pub func: String,
    /// Human-facing explanation.
    pub message: String,
    /// Root → function call chain for transitive findings (empty for
    /// pa1/pa2/directive findings).
    pub chain: Vec<String>,
    /// True when a baseline entry accepts this finding.
    pub baselined: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.code(),
            self.message
        )?;
        if self.chain.len() > 1 {
            write!(f, "\n    via: {}", self.chain.join(" -> "))?;
        }
        Ok(())
    }
}

/// The full analysis result for one tree.
pub struct Analysis {
    /// Every finding, baselined or not, sorted by file/line/rule.
    pub findings: Vec<Finding>,
    /// Number of files parsed.
    pub files: usize,
    /// Number of functions in the symbol table.
    pub functions: usize,
    /// Number of root functions the transitive passes started from.
    pub roots: usize,
}

impl Analysis {
    /// Findings not accepted by the baseline — what gates CI.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.baselined)
    }
}

/// Reads every `.rs` file under the simulation crates' `src/` trees.
/// Missing crate directories are skipped (fixture trees carry only the
/// crates they seed; a vanished real crate breaks the build long before
/// it could fool the analyzer), but unreadable *files* surface as
/// `Err` — a half-readable tree must not pass.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    for krate in ds_lint::SIM_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&src_dir, &mut paths)?;
        paths.sort();
        for path in paths {
            let raw = std::fs::read_to_string(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile { crate_name: krate.to_string(), rel_path: rel, raw });
        }
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every pass over `files` and returns the sorted findings
/// (without baseline application — see [`baseline::apply`]).
pub fn analyze(files: Vec<SourceFile>) -> Analysis {
    let w = graph::Workspace::build(files);
    let roots = w.roots_by_prefix(&passes::ROOT_PREFIXES).len();
    let mut findings = passes::transitive_passes(&w);
    findings.extend(passes::parallel_pass(&w));
    // Malformed `ds-analyze:` directives are findings too — a typo in a
    // suppression must not silently suppress nothing.
    for (idx, m) in w.models.iter().enumerate() {
        for e in &m.directive_errors {
            findings.push(Finding {
                rule: ARule::Directive,
                file: w.files[idx].rel_path.clone(),
                line: e.line,
                func: "-".to_string(),
                message: e.message.clone(),
                chain: Vec::new(),
                baselined: false,
            });
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.code(), a.func.as_str())
            .cmp(&(b.file.as_str(), b.line, b.rule.code(), b.func.as_str()))
    });
    Analysis { files: w.files.len(), functions: w.fns.len(), roots, findings }
}

/// End-to-end convenience: load, analyze, apply the baseline at
/// `baseline_path` (missing file = empty baseline).
pub fn analyze_tree(root: &Path, baseline_path: &Path) -> Result<Analysis, String> {
    let files = load_workspace(root)?;
    let mut analysis = analyze(files);
    let label = baseline_path
        .strip_prefix(root)
        .unwrap_or(baseline_path)
        .to_string_lossy()
        .replace('\\', "/");
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("{label}: {e}")),
    };
    let (entries, mut errors) = baseline::parse_baseline(&text, &label);
    errors.extend(baseline::apply(&mut analysis.findings, &entries, &label));
    analysis.findings.extend(errors);
    Ok(analysis)
}

/// Self-check: seeds one violation per pass into a synthetic workspace
/// and asserts each is detected (with a call chain where applicable).
/// Returns the failure descriptions — empty means the analyzer's five
/// rules all still catch what they claim to catch.
pub fn self_check() -> Vec<String> {
    let mut failures = Vec::new();
    let mut expect = |label: &str, src: &str, rel: &str, rule: ARule, func: &str, chain: bool| {
        let analysis = analyze(vec![SourceFile {
            crate_name: "core".to_string(),
            rel_path: rel.to_string(),
            raw: src.to_string(),
        }]);
        match analysis
            .findings
            .iter()
            .find(|f| f.rule == rule && f.func == func)
        {
            None => failures.push(format!(
                "{label}: seeded `{}` violation in `{func}` was NOT detected (findings: {:?})",
                rule.code(),
                analysis
                    .findings
                    .iter()
                    .map(|f| format!("{} {}", f.rule.code(), f.func))
                    .collect::<Vec<_>>()
            )),
            Some(f) if chain && f.chain.len() < 2 => failures.push(format!(
                "{label}: `{}` finding lacks its call chain: {f}",
                rule.code()
            )),
            Some(_) => {}
        }
    };

    // Pass A: allocation two calls below a root.
    expect(
        "pass A",
        "impl Node { fn step_shared(&mut self) { self.refill(); } \n\
           fn refill(&mut self) { deep_helper(); } }\n\
         fn deep_helper() { let v: Vec<u8> = Vec::new(); let _ = v; }\n",
        "crates/core/src/seeded_a.rs",
        ARule::Ta1,
        "deep_helper",
        true,
    );
    // Pass B (tp1): panic below a root.
    expect(
        "pass B/tp1",
        "impl Core { fn advance_to(&mut self, c: u64) { self.retire(c); }\n\
           fn retire(&mut self, c: u64) { self.slot(c).unwrap(); }\n\
           fn slot(&self, _c: u64) -> Option<u8> { None } }\n",
        "crates/cpu/src/seeded_b.rs",
        ARule::Tp1,
        "Core::retire",
        true,
    );
    // Pass B (td2): wall-clock taint below a root.
    expect(
        "pass B/td2",
        "impl Probe { fn record_event(&mut self) { stamp(); } }\n\
         fn stamp() -> u64 { let t = Instant::now(); t.elapsed().as_nanos() as u64 }\n",
        "crates/obs/src/seeded_d.rs",
        ARule::Td2,
        "stamp",
        true,
    );
    // Pass A again, rooted at the timeline sampler's close path: the
    // `sample*` prefix joined ROOT_PREFIXES with the interval sampler
    // and must keep rooting the transitive sweep.
    expect(
        "pass A/sample root",
        "impl Ring { fn sample_close(&mut self, end: u64) { self.flush(end); }\n\
           fn flush(&mut self, _end: u64) { let s = format!(\"x\"); let _ = s; } }\n",
        "crates/obs/src/seeded_e.rs",
        ARule::Ta1,
        "Ring::flush",
        true,
    );
    // Pass C (pa1): worker closure writing shared state.
    expect(
        "pass C/pa1",
        "fn run(scope: &Scope, shared: &mut u64) {\n\
           scope.spawn(move || { *shared = 1; });\n\
         }\n",
        "crates/core/src/seeded_c.rs",
        ARule::Pa1,
        "run",
        false,
    );
    // Pass C (pa2): unjustified strong ordering in parallel.rs.
    expect(
        "pass C/pa2",
        "fn arm(flag: &AtomicBool) { flag.store(true, Ordering::Release); }\n",
        "crates/core/src/parallel.rs",
        ARule::Pa2,
        "arm",
        false,
    );

    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_check_passes() {
        let failures = self_check();
        assert!(failures.is_empty(), "self-check failures:\n{}", failures.join("\n"));
    }

    #[test]
    fn allows_and_baseline_both_silence_findings() {
        let src = "fn step_x() { helper(); }\n\
                   fn helper() { let v: Vec<u8> = Vec::new(); let _ = v; } \
                   // ds-analyze: allow(ta1) scratch vec is test-only scaffolding\n";
        let analysis = analyze(vec![SourceFile {
            crate_name: "core".into(),
            rel_path: "crates/core/src/x.rs".into(),
            raw: src.into(),
        }]);
        assert!(
            analysis.findings.iter().all(|f| f.rule != ARule::Ta1),
            "line allow must suppress the transitive finding at its site"
        );
    }

    #[test]
    fn display_includes_chain() {
        let f = Finding {
            rule: ARule::Ta1,
            file: "crates/core/src/x.rs".into(),
            line: 3,
            func: "helper".into(),
            message: "msg".into(),
            chain: vec!["step_x".into(), "helper".into()],
            baselined: false,
        };
        let s = f.to_string();
        assert!(s.contains("[ta1]"));
        assert!(s.contains("via: step_x -> helper"));
    }
}
