//! The interprocedural passes.
//!
//! - **A / ta1** — transitive allocation-freedom: every function
//!   reachable from a cycle-loop root must be allocation-free.
//! - **B / tp1, td2** — transitive panic-reachability and
//!   nondeterminism taint from the same roots.
//! - **C / pa1, pa2** — parallel aliasing discipline inside worker
//!   closures, and memory-ordering justification on atomics in the
//!   worker-coordination code.
//!
//! Passes A and B share one reachability computation; every finding
//! carries the shortest root → function call chain so the reader can
//! see *how* the cycle loop gets there, not just that it does.

use crate::graph::Workspace;
use crate::model::{Fact, FnDef};
use crate::{ARule, Finding};
use ds_lint::scan;
use ds_lint::tokens::{Token, TokenKind};

/// Function-name prefixes that root the transitive passes — the same
/// family ds-lint's intraprocedural a1 polices: the per-cycle stepping
/// entry points (`step*`/`tick*`), the probe's per-event record path
/// (`record*`), per-cycle stall accounting (`charge*`), the
/// event-horizon engine (`next_event*`/`advance_to*`), the
/// critical-path analyzer's per-retirement edge recording (`edge*`;
/// its report-time walk allocates on purpose and therefore carries a
/// non-root name, `path_report`), the timeline sampler's
/// per-boundary snapshot close (`sample*`/`interval*`; its report-time
/// helpers likewise carry non-root names, `report` and `merged`), and
/// the ds-chaos per-cycle paths (`inject*`/`fault*`/`watchdog*` — the
/// fault injector's delivery rewrite and rule matching plus the
/// forward-progress check; the deadlock-report builder allocates at
/// abort time and carries the non-root name `build_deadlock_report`).
pub const ROOT_PREFIXES: [&str; 12] = [
    "step",
    "tick",
    "record",
    "charge",
    "next_event",
    "advance_to",
    "edge",
    "sample",
    "interval",
    "inject",
    "fault",
    "watchdog",
];

/// Orderings that require a justification under pa2 (`Relaxed` is the
/// default discipline and needs none).
const STRONG_ORDERINGS: [&str; 4] = [
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Passes A and B: one finding per (rule, function) with the shortest
/// call chain from a root.
pub fn transitive_passes(w: &Workspace) -> Vec<Finding> {
    let roots = w.roots_by_prefix(&ROOT_PREFIXES);
    let parent = w.reach(&roots);
    let mut out = Vec::new();
    for f in &w.fns {
        if parent[f.id].is_none() {
            continue;
        }
        for (fact, rule) in
            [(Fact::Alloc, ARule::Ta1), (Fact::Panic, ARule::Tp1), (Fact::Taint, ARule::Td2)]
        {
            let sites: Vec<_> =
                f.sites.iter().filter(|s| s.fact == fact && !s.suppressed).collect();
            let Some(first) = sites.first() else {
                continue;
            };
            let chain = w.chain(&parent, f.id);
            let more = if sites.len() > 1 {
                format!(" (+{} more site{})", sites.len() - 1, plural(sites.len() - 1))
            } else {
                String::new()
            };
            let message = match rule {
                ARule::Ta1 => format!(
                    "`{}` in `{}` is reachable from cycle-loop root `{}`{more}: the cycle \
                     path is allocation-free (docs/analysis.md ta1); hoist the buffer, or \
                     annotate/baseline with the amortization argument",
                    first.what,
                    f.qualified(),
                    chain[0],
                ),
                ARule::Tp1 => format!(
                    "`{}` in `{}` is panic-reachable from cycle-loop root `{}`{more}: a \
                     mid-cycle unwind strands sibling nodes; annotate the invariant that \
                     makes it unreachable",
                    first.what,
                    f.qualified(),
                    chain[0],
                ),
                _ => format!(
                    "`{}` in `{}` taints cycle-loop root `{}` with nondeterminism{more}: \
                     runs must be pure functions of program + configuration",
                    first.what,
                    f.qualified(),
                    chain[0],
                ),
            };
            out.push(Finding {
                rule,
                file: w.files[f.file].rel_path.clone(),
                line: first.line,
                func: f.qualified(),
                message,
                chain: chain.clone(),
                baselined: false,
            });
        }
    }
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Pass C: worker-closure aliasing discipline (pa1) and atomic-ordering
/// justification (pa2).
pub fn parallel_pass(w: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, file) in w.files.iter().enumerate() {
        let m = &w.models[idx];
        let cleaned = &m.cleaned;
        let file_fns: Vec<&FnDef> = w.fns.iter().filter(|f| f.file == idx).collect();
        let enclosing = |offset: usize| -> String {
            file_fns
                .iter()
                .filter(|f| offset >= f.body.0 && offset <= f.body.1)
                .min_by_key(|f| f.body.1 - f.body.0)
                .map(|f| f.qualified())
                .unwrap_or_else(|| "-".to_string())
        };

        // pa1: every spawned-closure body in a sim-crate file.
        for (start, end) in spawn_closures(cleaned, &m.tokens) {
            check_worker_closure(w, idx, (start, end), &enclosing, &mut out);
        }

        // pa2: the whole worker-coordination module, plus the parallel
        // engine body in system.rs (the serial engine has no atomics).
        let mut scopes: Vec<(usize, usize)> = Vec::new();
        if file.rel_path.ends_with("src/parallel.rs") {
            scopes.push((0, cleaned.len()));
        } else {
            for f in &file_fns {
                if f.name == "run_parallel" {
                    scopes.push(f.body);
                }
            }
        }
        for pat in STRONG_ORDERINGS {
            for at in scan::occurrences(cleaned, pat) {
                if !scopes.iter().any(|&(s, e)| at >= s && at < e)
                    || scan::in_regions(&m.test_regions, at)
                {
                    continue;
                }
                let line = m.index.line_of(at);
                if m.allows.allows(line, "pa2") {
                    continue;
                }
                out.push(Finding {
                    rule: ARule::Pa2,
                    file: file.rel_path.clone(),
                    line,
                    func: enclosing(at),
                    message: format!(
                        "`{pat}` in worker-coordination code: non-relaxed orderings are \
                         synchronization decisions — state what the acquire/release edge \
                         pairs with (`// ds-analyze: allow(pa2) <why>`)"
                    ),
                    chain: Vec::new(),
                    baselined: false,
                });
            }
        }
    }
    out
}

/// Byte ranges of closure bodies passed to `spawn(...)` calls.
fn spawn_closures(cleaned: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.kind == TokenKind::Ident && t.text(cleaned) == "spawn") {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else { continue };
        if !next.is_punct(b'(') {
            continue;
        }
        // The spawned closure's body is the first brace block inside
        // the argument list (`spawn(move || { ... })`).
        if let Some((open, close)) = scan::brace_block(cleaned, next.start) {
            out.push((open, close));
        }
    }
    out
}

/// The aliasing rules inside one worker-closure body.
fn check_worker_closure(
    w: &Workspace,
    file_idx: usize,
    region: (usize, usize),
    enclosing: &dyn Fn(usize) -> String,
    out: &mut Vec<Finding>,
) {
    let m = &w.models[file_idx];
    let cleaned = &m.cleaned;
    let file = &w.files[file_idx];
    let toks: Vec<(usize, &Token)> = m
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.start >= region.0 && t.end <= region.1)
        .collect();

    // Closure-local bindings: `let` patterns, `for` patterns, closure
    // parameters. Anything else written to or indexed is shared state.
    let mut locals: Vec<String> = Vec::new();
    for k in 0..toks.len() {
        let (_, t) = toks[k];
        if t.kind == TokenKind::Ident {
            match t.text(cleaned) {
                "let" => {
                    // Idents up to `=` or `;` (patterns, `mut`, types —
                    // over-collecting here only loosens pa1, and only
                    // for names that shadow shared ones, which the
                    // statement-root rule below still catches).
                    let mut j = k + 1;
                    while j < toks.len() {
                        let (_, tj) = toks[j];
                        if tj.is_punct(b'=') || tj.is_punct(b';') {
                            break;
                        }
                        if tj.kind == TokenKind::Ident {
                            push_unique(&mut locals, tj.text(cleaned));
                        }
                        j += 1;
                    }
                }
                "for" => {
                    let mut j = k + 1;
                    while j < toks.len() {
                        let (_, tj) = toks[j];
                        if tj.is_word(cleaned, "in") {
                            break;
                        }
                        if tj.kind == TokenKind::Ident {
                            push_unique(&mut locals, tj.text(cleaned));
                        }
                        j += 1;
                    }
                }
                _ => {}
            }
        } else if t.is_punct(b'|') && k > 0 {
            let (_, prev) = toks[k - 1];
            let opens = matches!(prev.kind, TokenKind::Punct(b'(' | b',' | b'{' | b';' | b'='))
                || prev.is_word(cleaned, "move");
            if opens {
                let mut j = k + 1;
                while j < toks.len() {
                    let (_, tj) = toks[j];
                    if tj.is_punct(b'|') {
                        break;
                    }
                    if tj.kind == TokenKind::Ident {
                        push_unique(&mut locals, tj.text(cleaned));
                    }
                    j += 1;
                }
            }
        }
    }

    let mut push_pa1 = |at: usize, message: String| {
        let line = m.index.line_of(at);
        if m.allows.allows(line, "pa1") || scan::in_regions(&m.test_regions, at) {
            return;
        }
        out.push(Finding {
            rule: ARule::Pa1,
            file: file.rel_path.clone(),
            line,
            func: enclosing(at),
            message,
            chain: Vec::new(),
            baselined: false,
        });
    };

    for k in 0..toks.len() {
        let (_, t) = toks[k];
        // Rule 1: no `self` in a worker closure — workers own exactly
        // their striped nodes; `DsSystem` state belongs to the
        // coordinator's cycle tail.
        if t.is_word(cleaned, "self") {
            push_pa1(
                t.start,
                "`self` inside a worker closure: workers must not touch `DsSystem` state; \
                 cross-node effects belong to the serialized cycle tail"
                    .to_string(),
            );
            continue;
        }
        // Rule 2: writes whose statement root is a shared (non-local)
        // binding.
        if t.is_punct(b'=') {
            let prev = k.checked_sub(1).map(|j| toks[j].1);
            let next = toks.get(k + 1).map(|&(_, t)| t);
            let is_cmp = matches!(
                prev.map(|p| p.kind),
                Some(TokenKind::Punct(b'=' | b'<' | b'>' | b'!'))
            ) || matches!(next.map(|n| n.kind), Some(TokenKind::Punct(b'=' | b'>')));
            if is_cmp {
                continue;
            }
            if let Some(root) = statement_root(cleaned, &toks, k) {
                if !locals.contains(&root) {
                    push_pa1(
                        t.start,
                        format!(
                            "write to shared binding `{root}` inside a worker closure: only \
                             closure-local state (own node via its lock) may be mutated; \
                             shared effects go through the cycle tail"
                        ),
                    );
                }
            }
        }
        // Rule 3: indexing a shared collection — the only way to reach
        // *peer* node state from a worker. The striped `cells[i]` walk
        // carries its justification as an allow.
        if t.kind == TokenKind::Ident {
            let name = t.text(cleaned);
            let qualified_const =
                k >= 2 && toks[k - 1].1.is_punct(b':') && toks[k - 2].1.is_punct(b':');
            if let Some(&(_, n)) = toks.get(k + 1) {
                if n.is_punct(b'[') && !locals.contains(&name.to_string()) && !qualified_const {
                    push_pa1(
                        t.start,
                        format!(
                            "indexing shared collection `{name}` inside a worker closure can \
                             reach peer-node state: justify the ownership discipline \
                             (`// ds-analyze: allow(pa1) <why each element has one writer>`)"
                        ),
                    );
                }
            }
        }
    }
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// The first identifier of the statement containing the `=` at token
/// index `eq` — `*slot = ..` → `slot`, `node.core.x += ..` → `node`.
/// Returns `None` for `let`/`for`/`while`/`if` statements (bindings and
/// conditions, not writes to pre-existing state).
fn statement_root(
    cleaned: &str,
    toks: &[(usize, &Token)],
    eq: usize,
) -> Option<String> {
    let mut start = 0;
    for j in (0..eq).rev() {
        let (_, t) = toks[j];
        if matches!(t.kind, TokenKind::Punct(b';' | b'{' | b'}')) {
            start = j + 1;
            break;
        }
    }
    let mut root = None;
    for &(_, t) in &toks[start..eq] {
        if t.kind == TokenKind::Ident {
            let w = t.text(cleaned);
            if matches!(w, "let" | "for" | "while" | "if" | "else" | "match") {
                return None;
            }
            root = Some(w.to_string());
            break;
        }
    }
    root
}
