//! Workspace assembly and the call graph: name-based call resolution
//! plus breadth-first reachability from the cycle-loop roots.
//!
//! Resolution is deliberately an over-approximation (any workspace
//! function with a matching name and shape is a candidate callee).
//! That direction of error is the safe one for the transitive
//! invariants: a spurious edge can only *add* a finding — which the
//! diagnostic's printed call chain makes easy to recognize and, when
//! legitimate, suppress — while a type-accurate-but-incomplete
//! resolver could silently drop the one edge that smuggles an
//! allocation into the cycle loop.

use crate::model::{parse_file, CallKind, FileModel, FnDef, SourceFile};
use std::collections::BTreeMap;

/// The parsed workspace: files, models, and the function table.
pub struct Workspace {
    /// Input files, index-aligned with `models`.
    pub files: Vec<SourceFile>,
    /// Parsed per-file models.
    pub models: Vec<FileModel>,
    /// Every function definition, across all files.
    pub fns: Vec<FnDef>,
    /// name → methods (impl fns with a `self` parameter).
    methods: BTreeMap<String, Vec<usize>>,
    /// (owner, name) → associated fns (impl fns, any self-ness).
    assoc: BTreeMap<(String, String), Vec<usize>>,
    /// name → free fns.
    free: BTreeMap<String, Vec<usize>>,
    /// All known impl type names.
    owners: Vec<String>,
}

impl Workspace {
    /// Parses `files` into a workspace model.
    pub fn build(files: Vec<SourceFile>) -> Workspace {
        let mut fns = Vec::new();
        let mut models = Vec::new();
        for (idx, f) in files.iter().enumerate() {
            models.push(parse_file(f, idx, &mut fns));
        }
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut assoc: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut owners: Vec<String> = Vec::new();
        for f in &fns {
            match &f.owner {
                Some(o) => {
                    assoc.entry((o.clone(), f.name.clone())).or_default().push(f.id);
                    if f.has_self {
                        methods.entry(f.name.clone()).or_default().push(f.id);
                    }
                    if !owners.contains(o) {
                        owners.push(o.clone());
                    }
                }
                None => free.entry(f.name.clone()).or_default().push(f.id),
            }
        }
        Workspace { files, models, fns, methods, assoc, free, owners }
    }

    /// Candidate callees of one call site inside `caller`.
    pub fn resolve(&self, caller: &FnDef, name: &str, kind: &CallKind) -> &[usize] {
        const NONE: &[usize] = &[];
        match kind {
            CallKind::Method => self.methods.get(name).map_or(NONE, |v| v),
            CallKind::Qualified(q) => {
                let owner = if q == "Self" {
                    match &caller.owner {
                        Some(o) => o.as_str(),
                        None => return NONE,
                    }
                } else {
                    q.as_str()
                };
                if let Some(v) = self.assoc.get(&(owner.to_string(), name.to_string())) {
                    return v;
                }
                // Unknown qualifier (std type, module path): the last
                // path segment may still be a workspace free fn
                // (`crate::parallel::lock_clean`).
                if !self.owners.iter().any(|o| o == owner) {
                    return self.free.get(name).map_or(NONE, |v| v);
                }
                NONE
            }
            CallKind::Bare => self.free.get(name).map_or(NONE, |v| v),
        }
    }

    /// Breadth-first reachability from `roots` (fn ids). Returns, for
    /// every function, `Some(parent)` when reachable via `parent`
    /// (roots map to `Some(own id)`), `None` when unreachable.
    pub fn reach(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            // Clone-free iteration: calls are read-only, resolution
            // borrows self immutably.
            for c in &self.fns[f].calls {
                for &callee in self.resolve(&self.fns[f], &c.name, &c.kind) {
                    if parent[callee].is_none() {
                        parent[callee] = Some(f);
                        queue.push_back(callee);
                    }
                }
            }
        }
        parent
    }

    /// The call chain `root -> ... -> target` as qualified names, from
    /// a parent map produced by [`Workspace::reach`].
    pub fn chain(&self, parent: &[Option<usize>], target: usize) -> Vec<String> {
        let mut ids = vec![target];
        let mut cur = target;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            ids.push(p);
            cur = p;
        }
        ids.reverse();
        ids.iter().map(|&i| self.fns[i].qualified()).collect()
    }

    /// Function ids whose name starts with any of `prefixes`.
    pub fn roots_by_prefix(&self, prefixes: &[&str]) -> Vec<usize> {
        self.fns
            .iter()
            .filter(|f| prefixes.iter().any(|p| f.name.starts_with(p)))
            .map(|f| f.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::build(vec![SourceFile {
            crate_name: "core".into(),
            rel_path: "crates/core/src/x.rs".into(),
            raw: src.into(),
        }])
    }

    #[test]
    fn reachability_follows_bare_method_and_qualified_calls() {
        let src = "impl Node { fn step(&mut self) { self.helper(); } \n\
                   fn helper(&mut self) { free_fn(); } }\n\
                   fn free_fn() { Other::assoc(); }\n\
                   impl Other { fn assoc() { } fn unrelated(&self) { } }\n";
        let w = ws(src);
        let roots = w.roots_by_prefix(&["step"]);
        assert_eq!(roots.len(), 1);
        let parent = w.reach(&roots);
        let reached: Vec<String> = w
            .fns
            .iter()
            .filter(|f| parent[f.id].is_some())
            .map(|f| f.qualified())
            .collect();
        assert_eq!(
            reached,
            vec!["Node::step", "Node::helper", "free_fn", "Other::assoc"]
        );
        let assoc = w.fns.iter().find(|f| f.name == "assoc").unwrap().id;
        assert_eq!(
            w.chain(&parent, assoc),
            vec!["Node::step", "Node::helper", "free_fn", "Other::assoc"]
        );
    }

    #[test]
    fn method_calls_over_approximate_across_owners() {
        let src = "impl A { fn step(&self) { x.poke(); } }\n\
                   impl B { fn poke(&self) { } }\n\
                   impl C { fn poke(&self) { } }\n";
        let w = ws(src);
        let parent = w.reach(&w.roots_by_prefix(&["step"]));
        let reached = parent.iter().filter(|p| p.is_some()).count();
        assert_eq!(reached, 3, "both poke candidates are edges");
    }

    #[test]
    fn unknown_qualifiers_fall_back_to_free_fns() {
        let src = "fn step() { crate::util::helper(); Vec::with_capacity(4); }\n\
                   fn helper() { }\n";
        let w = ws(src);
        let parent = w.reach(&w.roots_by_prefix(&["step"]));
        let helper = w.fns.iter().find(|f| f.name == "helper").unwrap().id;
        assert!(parent[helper].is_some());
    }
}
