//! The suppression baseline: accepted findings, committed with
//! mandatory reasons.
//!
//! Format, one entry per line (`#` comments and blank lines ignored):
//!
//! ```text
//! <rule> <file> <qualified_fn> -- <reason>
//! ta1 crates/trace/src/reader.rs TraceReader::refill -- refill amortizes one reserve over 4096 records
//! ```
//!
//! Entries are keyed by `(rule, file, qualified fn)` rather than line
//! number so routine edits don't churn the file; a *stale* entry (one
//! matching no current finding) is itself an error, so the baseline can
//! only shrink over time unless someone consciously adds to it.

use crate::{ARule, Finding};

/// One parsed baseline line.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Rule code (`ta1`...).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Qualified function name (`Owner::name` or bare).
    pub func: String,
    /// Why the finding is accepted (mandatory).
    pub reason: String,
    /// 1-based line in the baseline file, for diagnostics.
    pub line: usize,
}

/// Parses baseline text. Malformed lines (missing fields, missing
/// ` -- reason`, unknown rule code) come back as findings against the
/// baseline file itself — a baseline that doesn't parse must fail the
/// run, not silently suppress nothing.
pub fn parse_baseline(text: &str, path_label: &str) -> (Vec<BaselineEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut bad = |message: String| {
            errors.push(Finding {
                rule: ARule::Directive,
                file: path_label.to_string(),
                line: line_no,
                func: "-".to_string(),
                message,
                chain: Vec::new(),
                baselined: false,
            });
        };
        let Some((head, reason)) = line.split_once(" -- ") else {
            bad(format!(
                "baseline entry without ` -- <reason>`: {line:?} (every accepted finding \
                 states why it is acceptable)"
            ));
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            bad(format!("baseline entry with an empty reason: {line:?}"));
            continue;
        }
        let fields: Vec<&str> = head.split_whitespace().collect();
        let [rule, file, func] = fields[..] else {
            bad(format!(
                "baseline entry needs `<rule> <file> <qualified_fn> -- <reason>`, got {line:?}"
            ));
            continue;
        };
        if !crate::model::ANALYZE_RULE_CODES.contains(&rule) {
            bad(format!(
                "unknown rule code `{rule}` in baseline (known: {})",
                crate::model::ANALYZE_RULE_CODES.join(", ")
            ));
            continue;
        }
        entries.push(BaselineEntry {
            rule: rule.to_string(),
            file: file.to_string(),
            func: func.to_string(),
            reason: reason.to_string(),
            line: line_no,
        });
    }
    (entries, errors)
}

/// Marks findings covered by `entries` as `baselined` and returns
/// findings for every *stale* entry (matched nothing). Duplicate
/// findings under one entry are all covered — a function with two
/// `Vec::new` sites is one decision, not two.
pub fn apply(findings: &mut [Finding], entries: &[BaselineEntry], path_label: &str) -> Vec<Finding> {
    let mut stale = Vec::new();
    for e in entries {
        let mut hit = false;
        for f in findings.iter_mut() {
            if f.rule.code() == e.rule && f.file == e.file && f.func == e.func {
                f.baselined = true;
                hit = true;
            }
        }
        if !hit {
            stale.push(Finding {
                rule: ARule::Directive,
                file: path_label.to_string(),
                line: e.line,
                func: e.func.clone(),
                message: format!(
                    "stale baseline entry: no current `{}` finding in `{}` fn `{}` — delete \
                     the line (the debt was paid; don't leave the door open)",
                    e.rule, e.file, e.func
                ),
                chain: Vec::new(),
                baselined: false,
            });
        }
    }
    stale
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: ARule, file: &str, func: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            func: func.to_string(),
            message: String::new(),
            chain: Vec::new(),
            baselined: false,
        }
    }

    #[test]
    fn parses_entries_and_rejects_malformed_lines() {
        let text = "# comment\n\
                    ta1 crates/x/src/a.rs Foo::bar -- amortized reserve\n\
                    tp1 crates/x/src/a.rs Foo::baz\n\
                    zz9 crates/x/src/a.rs Foo::qux -- nope\n\
                    tp1 short -- reason\n";
        let (entries, errors) = parse_baseline(text, "baseline.txt");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "ta1");
        assert_eq!(errors.len(), 3);
        assert!(errors[0].message.contains("-- <reason>"));
        assert!(errors[1].message.contains("unknown rule code `zz9`"));
        assert!(errors[2].message.contains("needs `<rule>"));
    }

    #[test]
    fn apply_marks_matches_and_reports_stale() {
        let (entries, errors) = parse_baseline(
            "ta1 crates/x/src/a.rs Foo::bar -- ok\n\
             ta1 crates/x/src/a.rs Gone::fn -- was fixed\n",
            "baseline.txt",
        );
        assert!(errors.is_empty());
        let mut findings = vec![
            finding(ARule::Ta1, "crates/x/src/a.rs", "Foo::bar"),
            finding(ARule::Ta1, "crates/x/src/a.rs", "Foo::other"),
        ];
        let stale = apply(&mut findings, &entries, "baseline.txt");
        assert!(findings[0].baselined);
        assert!(!findings[1].baselined);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("Gone::fn"));
    }
}
