//! `ds-analyze` — build the workspace call graph and prove the
//! transitive hot-path, determinism, and parallel-aliasing invariants.
//!
//! Usage:
//!
//! ```text
//! ds-analyze [workspace-root] [--baseline <path>] [--json <path>] [--self-check]
//! ```
//!
//! Exit codes: 0 clean (or all findings baselined), 1 active findings,
//! 2 usage/I-O error, 3 self-check failure.

use ds_analyze::{Analysis, Finding};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut self_check = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                eprintln!(
                    "usage: ds-analyze [workspace-root] [--baseline <path>] \
                     [--json <path>] [--self-check]"
                );
                return ExitCode::SUCCESS;
            }
            "--self-check" => self_check = true,
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            _ if arg.starts_with('-') => return usage(&format!("unknown flag {arg}")),
            _ => root = PathBuf::from(arg),
        }
    }

    if self_check {
        let failures = ds_analyze::self_check();
        if failures.is_empty() {
            eprintln!("ds-analyze: self-check passed (5 seeded violations detected)");
            return ExitCode::SUCCESS;
        }
        for f in &failures {
            eprintln!("ds-analyze: self-check FAILED: {f}");
        }
        return ExitCode::from(3);
    }

    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "ds-analyze: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }
    let baseline = baseline.unwrap_or_else(|| root.join("crates/analyze/baseline.txt"));

    let analysis = match ds_analyze::analyze_tree(&root, &baseline) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ds-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json {
        if let Err(e) = std::fs::write(path, render_json(&analysis)) {
            eprintln!("ds-analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let active: Vec<&Finding> = analysis.active().collect();
    for f in &active {
        println!("{f}");
    }
    let accepted = analysis.findings.len() - active.len();
    eprintln!(
        "ds-analyze: {} file(s), {} function(s), {} root(s); {} active finding(s), {} baselined",
        analysis.files,
        analysis.functions,
        analysis.roots,
        active.len(),
        accepted
    );
    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ds-analyze: {msg}");
    eprintln!(
        "usage: ds-analyze [workspace-root] [--baseline <path>] [--json <path>] [--self-check]"
    );
    ExitCode::from(2)
}

/// Hand-rolled JSON (the workspace is offline; no serde). Schema
/// `ds-analyze/v1`, consumed by scripts/verify.sh and ds-report-style
/// tooling.
fn render_json(a: &Analysis) -> String {
    let mut s = String::from("{\n  \"schema\": \"ds-analyze/v1\",\n");
    s.push_str(&format!(
        "  \"files\": {}, \"functions\": {}, \"roots\": {},\n",
        a.files, a.functions, a.roots
    ));
    s.push_str(&format!(
        "  \"active\": {}, \"baselined\": {},\n",
        a.active().count(),
        a.findings.iter().filter(|f| f.baselined).count()
    ));
    s.push_str("  \"findings\": [\n");
    for (i, f) in a.findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": {}, \"line\": {}, \"fn\": {}, \
             \"baselined\": {}, \"message\": {}, \"chain\": [{}]}}{}\n",
            f.rule.code(),
            json_str(&f.file),
            f.line,
            json_str(&f.func),
            f.baselined,
            json_str(&f.message),
            f.chain.iter().map(|c| json_str(c)).collect::<Vec<_>>().join(", "),
            if i + 1 == a.findings.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
