//! The DS-1 instruction set architecture.
//!
//! The DataScalar paper evaluates on the SimpleScalar toolset, whose
//! PISA is a MIPS-like, 64-bit-encoded load/store RISC. DS-1 is our
//! from-scratch equivalent:
//!
//! * 32 × 64-bit integer registers (`r0` is hard-wired to zero) and
//!   32 × 64-bit IEEE-754 floating-point registers;
//! * byte-addressable little-endian memory; loads/stores of 1, 2, 4 and
//!   8 bytes;
//! * fixed 64-bit instruction encoding (like PISA):
//!   `opcode[63:56] | rd[55:48] | rs[47:40] | rt[39:32] | imm[31:0]`,
//!   with `imm` a signed 32-bit field;
//! * branches are PC-relative in units of instructions; `jal`/`j` carry
//!   absolute byte targets in `imm`.
//!
//! The crate provides the [`Opcode`] taxonomy, the decoded [`Inst`]
//! form, binary [`Inst::encode`]/[`Inst::decode`], a disassembler via
//! [`std::fmt::Display`], and the [`reg`] ABI names used by the
//! assembler and workloads.
//!
//! # Examples
//!
//! ```
//! use ds_isa::{Inst, Opcode, reg};
//!
//! let i = Inst::rrr(Opcode::Add, reg::T0, reg::T1, reg::T2);
//! let word = i.encode();
//! assert_eq!(Inst::decode(word).unwrap(), i);
//! assert_eq!(i.to_string(), "add t0, t1, t2");
//! ```

mod inst;
mod opcode;
pub mod reg;

pub use inst::{DecodeError, Inst};
pub use opcode::{FuClass, MemWidth, Opcode};

/// Size of one encoded instruction in bytes (DS-1 uses 64-bit words,
/// as SimpleScalar's PISA did).
pub const INST_BYTES: u64 = 8;

/// Number of architectural integer registers.
pub const NUM_IREGS: usize = 32;

/// Number of architectural floating-point registers.
pub const NUM_FREGS: usize = 32;
