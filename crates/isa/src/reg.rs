//! Architectural register numbers and ABI names.
//!
//! DS-1 uses a MIPS-flavoured calling convention. Register `r0`
//! ([`ZERO`]) always reads as zero and writes to it are discarded.
//!
//! | regs | name | role |
//! |---|---|---|
//! | r0 | `zero` | hard-wired zero |
//! | r1 | `ra` | return address |
//! | r2 | `sp` | stack pointer |
//! | r3 | `gp` | global pointer |
//! | r4–r7 | `a0`–`a3` | arguments |
//! | r8–r9 | `v0`–`v1` | return values |
//! | r10–r19 | `t0`–`t9` | caller-saved temporaries |
//! | r20–r27 | `s0`–`s7` | callee-saved |
//! | r28–r31 | `k0`–`k3` | scratch (workload-reserved) |

/// A register number (integer or floating point, depending on the
/// opcode field it occupies). Always `< 32`.
pub type Reg = u8;

/// Hard-wired zero register.
pub const ZERO: Reg = 0;
/// Return-address register.
pub const RA: Reg = 1;
/// Stack pointer.
pub const SP: Reg = 2;
/// Global pointer.
pub const GP: Reg = 3;
/// Argument registers `a0`–`a3`.
pub const A0: Reg = 4;
pub const A1: Reg = 5;
pub const A2: Reg = 6;
pub const A3: Reg = 7;
/// Return-value registers.
pub const V0: Reg = 8;
pub const V1: Reg = 9;
/// Caller-saved temporaries `t0`–`t9`.
pub const T0: Reg = 10;
pub const T1: Reg = 11;
pub const T2: Reg = 12;
pub const T3: Reg = 13;
pub const T4: Reg = 14;
pub const T5: Reg = 15;
pub const T6: Reg = 16;
pub const T7: Reg = 17;
pub const T8: Reg = 18;
pub const T9: Reg = 19;
/// Callee-saved registers `s0`–`s7`.
pub const S0: Reg = 20;
pub const S1: Reg = 21;
pub const S2: Reg = 22;
pub const S3: Reg = 23;
pub const S4: Reg = 24;
pub const S5: Reg = 25;
pub const S6: Reg = 26;
pub const S7: Reg = 27;
/// Scratch registers `k0`–`k3`.
pub const K0: Reg = 28;
pub const K1: Reg = 29;
pub const K2: Reg = 30;
pub const K3: Reg = 31;

const NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "a0", "a1", "a2", "a3", "v0", "v1", "t0", "t1", "t2", "t3", "t4",
    "t5", "t6", "t7", "t8", "t9", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "k0", "k1",
    "k2", "k3",
];

/// The ABI name of integer register `r`.
///
/// # Panics
///
/// Panics if `r >= 32`.
///
/// # Examples
///
/// ```
/// assert_eq!(ds_isa::reg::name(ds_isa::reg::T0), "t0");
/// ```
pub fn name(r: Reg) -> &'static str {
    NAMES[r as usize]
}

/// The display name of floating-point register `r` (`f0`–`f31`).
///
/// # Panics
///
/// Panics if `r >= 32`.
pub fn fname(r: Reg) -> String {
    assert!(r < 32, "fp register out of range");
    format!("f{r}")
}

/// Parses an integer-register name: an ABI name (`t0`, `sp`, ...) or a
/// raw `rN` number.
///
/// # Examples
///
/// ```
/// assert_eq!(ds_isa::reg::parse("t3"), Some(13));
/// assert_eq!(ds_isa::reg::parse("r31"), Some(31));
/// assert_eq!(ds_isa::reg::parse("bogus"), None);
/// ```
pub fn parse(s: &str) -> Option<Reg> {
    if let Some(idx) = NAMES.iter().position(|&n| n == s) {
        return Some(idx as Reg);
    }
    let num = s.strip_prefix('r')?;
    let n: u8 = num.parse().ok()?;
    (n < 32).then_some(n)
}

/// Parses a floating-point register name `f0`–`f31`.
pub fn parse_fp(s: &str) -> Option<Reg> {
    let num = s.strip_prefix('f')?;
    let n: u8 = num.parse().ok()?;
    (n < 32).then_some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for r in 0..32u8 {
            assert_eq!(parse(name(r)), Some(r));
        }
    }

    #[test]
    fn raw_numbers_parse() {
        assert_eq!(parse("r0"), Some(0));
        assert_eq!(parse("r31"), Some(31));
        assert_eq!(parse("r32"), None);
    }

    #[test]
    fn fp_names_roundtrip() {
        for r in 0..32u8 {
            assert_eq!(parse_fp(&fname(r)), Some(r));
        }
        assert_eq!(parse_fp("f32"), None);
        assert_eq!(parse_fp("t0"), None);
    }

    #[test]
    fn abi_aliases() {
        assert_eq!(parse("zero"), Some(ZERO));
        assert_eq!(parse("sp"), Some(SP));
        assert_eq!(parse("s7"), Some(S7));
        assert_eq!(parse("k3"), Some(K3));
    }
}
