//! The DS-1 opcode taxonomy and per-opcode static properties.

/// Functional-unit class an instruction executes on, with the default
/// latencies used by the out-of-order timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuClass {
    /// Single-cycle integer ALU (also branches and jumps).
    IntAlu,
    /// Integer multiply (pipelined).
    IntMul,
    /// Integer divide / remainder (unpipelined).
    IntDiv,
    /// Floating-point add/compare/convert.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root (unpipelined).
    FpDiv,
    /// Memory port (loads and stores).
    Mem,
}

/// Access width of a load or store, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemWidth {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

macro_rules! opcodes {
    ($(($name:ident, $num:expr, $mnem:expr)),+ $(,)?) => {
        /// Every DS-1 operation.
        ///
        /// The discriminant is the binary opcode byte in the encoded
        /// instruction word.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u8)]
        pub enum Opcode {
            $(
                #[doc = concat!("`", $mnem, "`")]
                $name = $num,
            )+
        }

        impl Opcode {
            /// All opcodes, in discriminant order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$name),+];

            /// The assembler mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$name => $mnem,)+
                }
            }

            /// Decodes an opcode byte.
            pub fn from_u8(byte: u8) -> Option<Opcode> {
                match byte {
                    $($num => Some(Opcode::$name),)+
                    _ => None,
                }
            }

            /// Looks an opcode up by its mnemonic.
            pub fn from_mnemonic(s: &str) -> Option<Opcode> {
                match s {
                    $($mnem => Some(Opcode::$name),)+
                    _ => None,
                }
            }
        }
    };
}

opcodes! {
    // Integer register-register ALU.
    (Add,   0x01, "add"),
    (Sub,   0x02, "sub"),
    (Mul,   0x03, "mul"),
    (Div,   0x04, "div"),
    (Rem,   0x05, "rem"),
    (And,   0x06, "and"),
    (Or,    0x07, "or"),
    (Xor,   0x08, "xor"),
    (Nor,   0x09, "nor"),
    (Sll,   0x0a, "sll"),
    (Srl,   0x0b, "srl"),
    (Sra,   0x0c, "sra"),
    (Slt,   0x0d, "slt"),
    (Sltu,  0x0e, "sltu"),
    // Integer register-immediate ALU.
    (Addi,  0x10, "addi"),
    (Andi,  0x11, "andi"),
    (Ori,   0x12, "ori"),
    (Xori,  0x13, "xori"),
    (Slti,  0x14, "slti"),
    (Slli,  0x15, "slli"),
    (Srli,  0x16, "srli"),
    (Srai,  0x17, "srai"),
    (Lui,   0x18, "lui"),
    // Loads.
    (Lb,    0x20, "lb"),
    (Lbu,   0x21, "lbu"),
    (Lh,    0x22, "lh"),
    (Lhu,   0x23, "lhu"),
    (Lw,    0x24, "lw"),
    (Lwu,   0x25, "lwu"),
    (Ld,    0x26, "ld"),
    (Fld,   0x27, "fld"),
    // Stores.
    (Sb,    0x28, "sb"),
    (Sh,    0x29, "sh"),
    (Sw,    0x2a, "sw"),
    (Sd,    0x2b, "sd"),
    (Fsd,   0x2c, "fsd"),
    // Control transfer.
    (Beq,   0x30, "beq"),
    (Bne,   0x31, "bne"),
    (Blt,   0x32, "blt"),
    (Bge,   0x33, "bge"),
    (Bltu,  0x34, "bltu"),
    (Bgeu,  0x35, "bgeu"),
    (Jal,   0x36, "jal"),
    (Jalr,  0x37, "jalr"),
    // Floating point (double precision).
    (Fadd,  0x40, "fadd"),
    (Fsub,  0x41, "fsub"),
    (Fmul,  0x42, "fmul"),
    (Fdiv,  0x43, "fdiv"),
    (Fsqrt, 0x44, "fsqrt"),
    (Fmov,  0x45, "fmov"),
    (Fneg,  0x46, "fneg"),
    (Fabs,  0x47, "fabs"),
    // FP compares write an integer register.
    (Feq,   0x48, "feq"),
    (Flt,   0x49, "flt"),
    (Fle,   0x4a, "fle"),
    // Conversions: integer <-> double.
    (Fcvtdw, 0x4b, "fcvt.d.w"),
    (Fcvtwd, 0x4c, "fcvt.w.d"),
    // System.
    (Halt,  0x50, "halt"),
    (Nop,   0x51, "nop"),
}

impl Opcode {
    /// True for every load, integer or floating point.
    pub fn is_load(self) -> bool {
        use Opcode::*;
        matches!(self, Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld)
    }

    /// True for every store, integer or floating point.
    pub fn is_store(self) -> bool {
        use Opcode::*;
        matches!(self, Sb | Sh | Sw | Sd | Fsd)
    }

    /// True for loads and stores.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// True for conditional branches (not jumps).
    pub fn is_branch(self) -> bool {
        use Opcode::*;
        matches!(self, Beq | Bne | Blt | Bge | Bltu | Bgeu)
    }

    /// True for unconditional control transfers.
    pub fn is_jump(self) -> bool {
        matches!(self, Opcode::Jal | Opcode::Jalr)
    }

    /// True for any instruction that can change the PC non-sequentially.
    pub fn is_control(self) -> bool {
        self.is_branch() || self.is_jump()
    }

    /// The memory access width for loads and stores, `None` otherwise.
    pub fn mem_width(self) -> Option<MemWidth> {
        use Opcode::*;
        Some(match self {
            Lb | Lbu | Sb => MemWidth::B1,
            Lh | Lhu | Sh => MemWidth::B2,
            Lw | Lwu | Sw => MemWidth::B4,
            Ld | Sd | Fld | Fsd => MemWidth::B8,
            _ => return None,
        })
    }

    /// Functional-unit class used by the timing model.
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            Mul => FuClass::IntMul,
            Div | Rem => FuClass::IntDiv,
            Fadd | Fsub | Fmov | Fneg | Fabs | Feq | Flt | Fle | Fcvtdw | Fcvtwd => FuClass::FpAlu,
            Fmul => FuClass::FpMul,
            Fdiv | Fsqrt => FuClass::FpDiv,
            _ if self.is_mem() => FuClass::Mem,
            _ => FuClass::IntAlu,
        }
    }

    /// Execution latency in cycles on its functional unit (memory
    /// latency excluded for loads/stores; this is the address-generation
    /// plus pipeline cost only).
    pub fn latency(self) -> u64 {
        match self.fu_class() {
            FuClass::IntAlu => 1,
            FuClass::IntMul => 3,
            FuClass::IntDiv => 12,
            FuClass::FpAlu => 2,
            FuClass::FpMul => 4,
            FuClass::FpDiv => 12,
            FuClass::Mem => 1,
        }
    }

    /// True when `rd` names a floating-point destination register.
    pub fn writes_freg(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Fld | Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fmov | Fneg | Fabs | Fcvtdw
        )
    }

    /// True when the register sources (`rs`/`rt`) are floating-point
    /// registers.
    pub fn reads_fregs(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Fadd | Fsub | Fmul | Fdiv | Fsqrt | Fmov | Fneg | Fabs | Feq | Flt | Fle | Fcvtwd
                | Fsd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_byte_roundtrip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
    }

    #[test]
    fn mnemonic_roundtrip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn unknown_byte_rejected() {
        assert_eq!(Opcode::from_u8(0xff), None);
        assert_eq!(Opcode::from_u8(0x00), None);
    }

    #[test]
    fn discriminants_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op as u8), "duplicate discriminant for {op:?}");
        }
    }

    #[test]
    fn load_store_classification() {
        assert!(Opcode::Ld.is_load());
        assert!(Opcode::Fld.is_load());
        assert!(!Opcode::Ld.is_store());
        assert!(Opcode::Sd.is_store());
        assert!(Opcode::Fsd.is_store());
        assert!(Opcode::Sd.is_mem());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn mem_width_matches_mnemonics() {
        assert_eq!(Opcode::Lb.mem_width(), Some(MemWidth::B1));
        assert_eq!(Opcode::Sh.mem_width(), Some(MemWidth::B2));
        assert_eq!(Opcode::Lwu.mem_width(), Some(MemWidth::B4));
        assert_eq!(Opcode::Fsd.mem_width(), Some(MemWidth::B8));
        assert_eq!(Opcode::Add.mem_width(), None);
        assert_eq!(MemWidth::B8.bytes(), 8);
    }

    #[test]
    fn control_classification() {
        assert!(Opcode::Beq.is_branch());
        assert!(!Opcode::Jal.is_branch());
        assert!(Opcode::Jal.is_jump());
        assert!(Opcode::Jalr.is_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn fu_classes() {
        assert_eq!(Opcode::Add.fu_class(), FuClass::IntAlu);
        assert_eq!(Opcode::Mul.fu_class(), FuClass::IntMul);
        assert_eq!(Opcode::Div.fu_class(), FuClass::IntDiv);
        assert_eq!(Opcode::Fadd.fu_class(), FuClass::FpAlu);
        assert_eq!(Opcode::Fmul.fu_class(), FuClass::FpMul);
        assert_eq!(Opcode::Fsqrt.fu_class(), FuClass::FpDiv);
        assert_eq!(Opcode::Ld.fu_class(), FuClass::Mem);
        assert_eq!(Opcode::Beq.fu_class(), FuClass::IntAlu);
    }

    #[test]
    fn latencies_are_positive() {
        for &op in Opcode::ALL {
            assert!(op.latency() >= 1);
        }
    }

    #[test]
    fn freg_classification() {
        assert!(Opcode::Fld.writes_freg());
        assert!(!Opcode::Fld.reads_fregs());
        assert!(Opcode::Fsd.reads_fregs());
        assert!(!Opcode::Fsd.writes_freg());
        assert!(Opcode::Feq.reads_fregs());
        assert!(!Opcode::Feq.writes_freg(), "FP compares write integer regs");
        assert!(Opcode::Fcvtdw.writes_freg());
        assert!(!Opcode::Fcvtdw.reads_fregs());
        assert!(Opcode::Fcvtwd.reads_fregs());
        assert!(!Opcode::Fcvtwd.writes_freg());
    }
}
