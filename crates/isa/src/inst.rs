//! Decoded instruction form, binary encoding, and disassembly.

use crate::opcode::Opcode;
use crate::reg::{self, Reg};
use crate::INST_BYTES;
use std::fmt;

/// A decoded DS-1 instruction.
///
/// Field use by format:
///
/// | format | `rd` | `rs` | `rt` | `imm` |
/// |---|---|---|---|---|
/// | register ALU | dest | src1 | src2 | — |
/// | immediate ALU | dest | src1 | — | operand |
/// | load | dest | base | — | displacement |
/// | store | **value source** | base | — | displacement |
/// | branch | — | src1 | src2 | offset in *instructions* |
/// | `jal` | link | — | — | absolute byte target |
/// | `jalr` | link | target | — | — |
///
/// # Examples
///
/// ```
/// use ds_isa::{Inst, Opcode, reg};
///
/// let ld = Inst::load(Opcode::Ld, reg::T0, reg::SP, 16);
/// assert!(ld.op.is_load());
/// assert_eq!(ld.to_string(), "ld t0, 16(sp)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// Destination register (or value source for stores, link for jumps).
    pub rd: Reg,
    /// First source register (base register for memory ops).
    pub rs: Reg,
    /// Second source register.
    pub rt: Reg,
    /// Signed 32-bit immediate.
    pub imm: i32,
}

/// An error decoding a 64-bit instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name a DS-1 operation.
    BadOpcode(u8),
    /// A register field is `>= 32`.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "register field {r} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Inst {
    /// A register-register-register instruction (`op rd, rs, rt`).
    pub fn rrr(op: Opcode, rd: Reg, rs: Reg, rt: Reg) -> Inst {
        Inst { op, rd, rs, rt, imm: 0 }
    }

    /// A register-register-immediate instruction (`op rd, rs, imm`).
    pub fn rri(op: Opcode, rd: Reg, rs: Reg, imm: i32) -> Inst {
        Inst { op, rd, rs, rt: 0, imm }
    }

    /// A load: `rd <- mem[rs + imm]`.
    pub fn load(op: Opcode, rd: Reg, base: Reg, disp: i32) -> Inst {
        debug_assert!(op.is_load());
        Inst { op, rd, rs: base, rt: 0, imm: disp }
    }

    /// A store: `mem[rs + imm] <- rd`.
    pub fn store(op: Opcode, value: Reg, base: Reg, disp: i32) -> Inst {
        debug_assert!(op.is_store());
        Inst { op, rd: value, rs: base, rt: 0, imm: disp }
    }

    /// A conditional branch comparing `rs` and `rt`, with a PC-relative
    /// offset measured in instructions (so `-1` branches to itself).
    pub fn branch(op: Opcode, rs: Reg, rt: Reg, offset: i32) -> Inst {
        debug_assert!(op.is_branch());
        Inst { op, rd: 0, rs, rt, imm: offset }
    }

    /// `jal rd, target` — jump to the absolute byte address `target`,
    /// writing the return address into `rd`.
    pub fn jal(rd: Reg, target: u32) -> Inst {
        Inst { op: Opcode::Jal, rd, rs: 0, rt: 0, imm: target as i32 }
    }

    /// `jalr rd, rs` — jump to the address in `rs`, writing the return
    /// address into `rd`.
    pub fn jalr(rd: Reg, rs: Reg) -> Inst {
        Inst { op: Opcode::Jalr, rd, rs, rt: 0, imm: 0 }
    }

    /// The canonical no-op.
    pub fn nop() -> Inst {
        Inst { op: Opcode::Nop, rd: 0, rs: 0, rt: 0, imm: 0 }
    }

    /// The halt instruction; `a0` by convention carries the exit value.
    pub fn halt() -> Inst {
        Inst { op: Opcode::Halt, rd: 0, rs: 0, rt: 0, imm: 0 }
    }

    /// Encodes to the 64-bit binary word:
    /// `opcode[63:56] | rd[55:48] | rs[47:40] | rt[39:32] | imm[31:0]`.
    pub fn encode(self) -> u64 {
        ((self.op as u64) << 56)
            | ((self.rd as u64) << 48)
            | ((self.rs as u64) << 40)
            | ((self.rt as u64) << 32)
            | (self.imm as u32 as u64)
    }

    /// Decodes a 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on an unknown opcode byte or a register
    /// field `>= 32`.
    pub fn decode(word: u64) -> Result<Inst, DecodeError> {
        let op_byte = (word >> 56) as u8;
        let op = Opcode::from_u8(op_byte).ok_or(DecodeError::BadOpcode(op_byte))?;
        let rd = (word >> 48) as u8;
        let rs = (word >> 40) as u8;
        let rt = (word >> 32) as u8;
        for r in [rd, rs, rt] {
            if r >= 32 {
                return Err(DecodeError::BadRegister(r));
            }
        }
        let imm = word as u32 as i32;
        Ok(Inst { op, rd, rs, rt, imm })
    }

    /// The byte address of the instruction after this one at `pc`.
    pub fn fallthrough(pc: u64) -> u64 {
        pc + INST_BYTES
    }

    /// For a branch at `pc`, the taken-target byte address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self` is not a branch.
    pub fn branch_target(self, pc: u64) -> u64 {
        debug_assert!(self.op.is_branch());
        pc.wrapping_add_signed(self.imm as i64 * INST_BYTES as i64)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        let m = self.op.mnemonic();
        let ir = reg::name;
        let fr = reg::fname;
        match self.op {
            Nop | Halt => write!(f, "{m}"),
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu => {
                write!(f, "{m} {}, {}, {}", ir(self.rd), ir(self.rs), ir(self.rt))
            }
            Addi | Andi | Ori | Xori | Slti | Slli | Srli | Srai => {
                write!(f, "{m} {}, {}, {}", ir(self.rd), ir(self.rs), self.imm)
            }
            Lui => write!(f, "{m} {}, {}", ir(self.rd), self.imm),
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld => {
                write!(f, "{m} {}, {}({})", ir(self.rd), self.imm, ir(self.rs))
            }
            Fld => write!(f, "{m} {}, {}({})", fr(self.rd), self.imm, ir(self.rs)),
            Sb | Sh | Sw | Sd => {
                write!(f, "{m} {}, {}({})", ir(self.rd), self.imm, ir(self.rs))
            }
            Fsd => write!(f, "{m} {}, {}({})", fr(self.rd), self.imm, ir(self.rs)),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                write!(f, "{m} {}, {}, {}", ir(self.rs), ir(self.rt), self.imm)
            }
            Jal => write!(f, "{m} {}, {:#x}", ir(self.rd), self.imm as u32),
            Jalr => write!(f, "{m} {}, {}", ir(self.rd), ir(self.rs)),
            Fadd | Fsub | Fmul | Fdiv => {
                write!(f, "{m} {}, {}, {}", fr(self.rd), fr(self.rs), fr(self.rt))
            }
            Fsqrt | Fmov | Fneg | Fabs => write!(f, "{m} {}, {}", fr(self.rd), fr(self.rs)),
            Feq | Flt | Fle => {
                write!(f, "{m} {}, {}, {}", ir(self.rd), fr(self.rs), fr(self.rt))
            }
            Fcvtdw => write!(f, "{m} {}, {}", fr(self.rd), ir(self.rs)),
            Fcvtwd => write!(f, "{m} {}, {}", ir(self.rd), fr(self.rs)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{RA, SP, T0, T1, T2};

    #[test]
    fn encode_decode_roundtrip_every_opcode() {
        for &op in Opcode::ALL {
            let i = Inst { op, rd: 3, rs: 17, rt: 31, imm: -12345 };
            assert_eq!(Inst::decode(i.encode()), Ok(i), "roundtrip failed for {op:?}");
        }
    }

    #[test]
    fn immediate_sign_preserved() {
        for imm in [i32::MIN, -1, 0, 1, i32::MAX] {
            let i = Inst::rri(Opcode::Addi, T0, T1, imm);
            assert_eq!(Inst::decode(i.encode()).unwrap().imm, imm);
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(Inst::decode(0xff << 56), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn bad_register_rejected() {
        // add with rd = 40.
        let word = ((Opcode::Add as u64) << 56) | (40u64 << 48);
        assert_eq!(Inst::decode(word), Err(DecodeError::BadRegister(40)));
    }

    #[test]
    fn branch_target_arithmetic() {
        let b = Inst::branch(Opcode::Beq, T0, T1, -2);
        assert_eq!(b.branch_target(0x1010), 0x1000);
        let f = Inst::branch(Opcode::Bne, T0, T1, 3);
        assert_eq!(f.branch_target(0x1000), 0x1018);
        assert_eq!(Inst::fallthrough(0x1000), 0x1008);
    }

    #[test]
    fn disassembly_formats() {
        assert_eq!(Inst::rrr(Opcode::Add, T0, T1, T2).to_string(), "add t0, t1, t2");
        assert_eq!(Inst::rri(Opcode::Addi, T0, T1, -4).to_string(), "addi t0, t1, -4");
        assert_eq!(Inst::load(Opcode::Ld, T0, SP, 16).to_string(), "ld t0, 16(sp)");
        assert_eq!(Inst::store(Opcode::Sd, T0, SP, -8).to_string(), "sd t0, -8(sp)");
        assert_eq!(Inst::branch(Opcode::Beq, T0, T1, 5).to_string(), "beq t0, t1, 5");
        assert_eq!(Inst::jal(RA, 0x2000).to_string(), "jal ra, 0x2000");
        assert_eq!(Inst::jalr(0, RA).to_string(), "jalr zero, ra");
        assert_eq!(Inst::load(Opcode::Fld, 2, SP, 0).to_string(), "fld f2, 0(sp)");
        assert_eq!(Inst::rrr(Opcode::Fadd, 1, 2, 3).to_string(), "fadd f1, f2, f3");
        assert_eq!(Inst::rrr(Opcode::Feq, T0, 2, 3).to_string(), "feq t0, f2, f3");
        assert_eq!(Inst::nop().to_string(), "nop");
        assert_eq!(Inst::halt().to_string(), "halt");
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::BadOpcode(0xff);
        assert!(e.to_string().contains("0xff"));
        let e = DecodeError::BadRegister(40);
        assert!(e.to_string().contains("40"));
    }
}
