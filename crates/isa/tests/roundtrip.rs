//! Property tests over the DS-1 binary encoding.

use ds_isa::{Inst, Opcode};
use proptest::prelude::*;

fn opcode_strategy() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.to_vec())
}

proptest! {
    #[test]
    fn encode_decode_is_identity(
        op in opcode_strategy(),
        rd in 0u8..32,
        rs in 0u8..32,
        rt in 0u8..32,
        imm in any::<i32>(),
    ) {
        let inst = Inst { op, rd, rs, rt, imm };
        let word = inst.encode();
        prop_assert_eq!(Inst::decode(word), Ok(inst));
    }

    #[test]
    fn distinct_instructions_encode_distinctly(
        op in opcode_strategy(),
        rd in 0u8..32,
        rs in 0u8..32,
        rt in 0u8..32,
        imm in any::<i32>(),
        delta in 1i32..1000,
    ) {
        let a = Inst { op, rd, rs, rt, imm };
        let b = Inst { op, rd, rs, rt, imm: imm.wrapping_add(delta) };
        prop_assert_ne!(a.encode(), b.encode());
    }

    #[test]
    fn decode_never_panics(word in any::<u64>()) {
        // Arbitrary bit patterns must decode or error, never panic.
        let _ = Inst::decode(word);
    }

    #[test]
    fn decoded_instructions_reencode(word in any::<u64>()) {
        if let Ok(inst) = Inst::decode(word) {
            // Re-encoding reproduces the canonical word (the encoding
            // has no dead bits other than none — every field survives).
            prop_assert_eq!(Inst::decode(inst.encode()), Ok(inst));
        }
    }

    #[test]
    fn disassembly_is_nonempty_and_starts_with_mnemonic(
        op in opcode_strategy(),
        rd in 0u8..32,
        rs in 0u8..32,
        rt in 0u8..32,
        imm in -10000i32..10000,
    ) {
        let inst = Inst { op, rd, rs, rt, imm };
        let text = inst.to_string();
        prop_assert!(!text.is_empty());
        prop_assert!(text.starts_with(op.mnemonic()), "`{}` vs `{}`", text, op.mnemonic());
    }

    #[test]
    fn branch_target_roundtrips_through_fallthrough(
        rs in 0u8..32,
        rt in 0u8..32,
        off in -100000i32..100000,
        pc_index in 0u64..1_000_000,
    ) {
        let pc = 0x1_0000 + pc_index * 8;
        let b = Inst::branch(Opcode::Beq, rs, rt, off);
        let target = b.branch_target(pc);
        prop_assert_eq!(target as i64 - pc as i64, off as i64 * 8);
        prop_assert_eq!(target % 8, pc % 8, "targets stay instruction-aligned");
    }
}
