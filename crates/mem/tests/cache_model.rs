//! Model-based testing of the cache: the optimised set-associative
//! implementation must agree, access for access, with a naive
//! reference model.

use ds_mem::{AccessKind, Cache, CacheConfig, CacheOutcome, WritePolicy};
use proptest::prelude::*;

/// A deliberately simple reference cache: a vector of (line, dirty)
/// per set, most-recently-used at the back.
struct RefCache {
    config: CacheConfig,
    sets: Vec<Vec<(u64, bool)>>,
    num_sets: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        RefCache { config, sets: vec![Vec::new(); num_sets as usize], num_sets }
    }

    fn set_and_line(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        ((line % self.num_sets) as usize, line * self.config.line_bytes)
    }

    fn access(&mut self, addr: u64, kind: AccessKind) -> (bool, Option<(u64, bool)>) {
        let (si, line) = self.set_and_line(addr);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&(l, _)| l == line) {
            let (l, mut d) = set.remove(pos);
            if kind == AccessKind::Write {
                d = true;
            }
            set.push((l, d));
            return (true, None);
        }
        let allocate = kind == AccessKind::Read
            || self.config.write_policy == WritePolicy::WriteBackAllocate;
        if !allocate {
            return (false, None);
        }
        let victim = if set.len() >= self.config.assoc {
            Some(set.remove(0))
        } else {
            None
        };
        set.push((line, kind == AccessKind::Write));
        (false, victim)
    }
}

fn config_strategy() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![Just(1usize), Just(2), Just(4)],
        prop_oneof![Just(16u64), Just(32), Just(64)],
        prop_oneof![
            Just(WritePolicy::WriteBackAllocate),
            Just(WritePolicy::WriteBackNoAllocate)
        ],
        1u32..5, // sets exponent
    )
        .prop_map(|(assoc, line, policy, sets_exp)| CacheConfig {
            size_bytes: line * assoc as u64 * (1 << sets_exp),
            assoc,
            line_bytes: line,
            write_policy: policy,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_model(
        config in config_strategy(),
        accesses in prop::collection::vec((0u64..4096, prop::bool::ANY), 1..300),
    ) {
        let mut dut = Cache::new(config);
        let mut model = RefCache::new(config);
        for (i, &(addr, is_write)) in accesses.iter().enumerate() {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let (model_hit, model_victim) = model.access(addr, kind);
            let out = dut.access(addr, kind);
            match out {
                CacheOutcome::Hit => {
                    prop_assert!(model_hit, "access {}: dut hit, model missed", i);
                }
                CacheOutcome::Miss { allocated, victim } => {
                    prop_assert!(!model_hit, "access {}: dut missed, model hit", i);
                    let model_alloc = kind == AccessKind::Read
                        || config.write_policy == WritePolicy::WriteBackAllocate;
                    prop_assert_eq!(allocated, model_alloc);
                    let dv = victim.map(|v| (v.line_addr, v.dirty));
                    prop_assert_eq!(dv, model_victim, "access {}: victim mismatch", i);
                }
            }
        }
        // Final contents agree.
        let mut model_lines: Vec<(u64, bool)> =
            model.sets.iter().flatten().copied().collect();
        model_lines.sort_unstable();
        prop_assert_eq!(dut.resident(), model_lines);
    }

    #[test]
    fn probe_never_mutates(
        config in config_strategy(),
        accesses in prop::collection::vec(0u64..4096, 1..100),
        probes in prop::collection::vec(0u64..4096, 1..50),
    ) {
        let mut dut = Cache::new(config);
        for &a in &accesses {
            dut.access(a, AccessKind::Read);
        }
        let before = dut.resident();
        for &p in &probes {
            let _ = dut.probe(p);
        }
        prop_assert_eq!(dut.resident(), before);
    }

    #[test]
    fn invalidate_then_access_misses(
        config in config_strategy(),
        addr in 0u64..4096,
    ) {
        let mut dut = Cache::new(config);
        dut.access(addr, AccessKind::Read);
        prop_assert!(dut.probe(addr));
        dut.invalidate(addr);
        prop_assert!(!dut.probe(addr));
        prop_assert!(dut.access(addr, AccessKind::Read).is_miss());
    }
}
