//! Sparse byte-addressable memory image for functional execution.

use crate::Addr;
// ds-lint: allow(d1) probe-only chunk index: never iterated, so hash order cannot reach simulated state
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Storage granularity of the sparse image (independent of the
/// architectural page size configured in the [`crate::PageTable`]).
const CHUNK: u64 = 4096;

/// Memo sentinel: no chunk cached. Real memo values always carry a
/// chunk id below `u32::MAX` in the high half, so the sentinel (high
/// half `u32::MAX`) can never collide with one.
const NO_MEMO: u64 = u64::MAX;

/// A sparse, little-endian, byte-addressable memory image.
///
/// Reads of unmapped memory return zero; writes allocate backing
/// storage on demand. In a DataScalar system every node runs the same
/// program and computes every store, so each node's functional image is
/// the *entire* address space — ownership affects only timing, never
/// values. One shared `MemImage` therefore backs all nodes.
///
/// Chunk storage is a dense `Vec` reached through a `chunk id → index`
/// map, with a one-entry memo of the last chunk touched: the functional
/// core's fetch/load/store stream is overwhelmingly sequential within a
/// chunk, so the common case skips hashing entirely. The memo packs
/// `(chunk id, dense index)` into one relaxed [`AtomicU64`] so reads
/// (`&self`) refresh it too while the image stays `Sync` — the parallel
/// stepping engine shares the trace (and thus the image) read-only
/// across worker threads. A racing refresh can only replace one valid
/// memo with another; a torn value is impossible in a single atomic.
///
/// # Examples
///
/// ```
/// use ds_mem::MemImage;
///
/// let mut m = MemImage::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x9_0000), 0, "unmapped reads as zero");
/// ```
#[derive(Debug)]
pub struct MemImage {
    chunks: Vec<Box<[u8]>>,
    // ds-lint: allow(d1) probed by chunk id on the functional hot path (memoized); never iterated
    index: HashMap<u64, u32>,
    /// Last resolution, packed `(chunk id << 32) | vec index` — hit on
    /// sequential access. Only ids below `u32::MAX` are memoised (an
    /// id that large would mean a ~16 TiB address), so the sentinel is
    /// unambiguous and the packing is lossless.
    memo: AtomicU64,
}

impl Default for MemImage {
    fn default() -> Self {
        // ds-lint: allow(d1) see the field declaration: probe-only index
        MemImage { chunks: Vec::new(), index: HashMap::new(), memo: AtomicU64::new(NO_MEMO) }
    }
}

impl Clone for MemImage {
    fn clone(&self) -> Self {
        MemImage {
            chunks: self.chunks.clone(),
            index: self.index.clone(),
            memo: AtomicU64::new(self.memo.load(Ordering::Relaxed)),
        }
    }
}

impl MemImage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves a chunk id to its dense index, consulting the memo
    /// first.
    #[inline]
    fn lookup(&self, id: u64) -> Option<u32> {
        let packed = self.memo.load(Ordering::Relaxed);
        // The id bound keeps an un-memoisable id (which would need a
        // ~16 TiB address) from false-hitting the sentinel's high half.
        if packed >> 32 == id && id < u64::from(u32::MAX) {
            return Some(packed as u32);
        }
        let idx = *self.index.get(&id)?;
        self.set_memo(id, idx);
        Some(idx)
    }

    /// Refreshes the memo (ids too large to pack are simply not
    /// memoised).
    #[inline]
    fn set_memo(&self, id: u64, idx: u32) {
        if id < u64::from(u32::MAX) {
            self.memo.store((id << 32) | u64::from(idx), Ordering::Relaxed);
        }
    }

    #[inline]
    fn chunk(&self, addr: Addr) -> Option<&[u8]> {
        let idx = self.lookup(addr / CHUNK)?;
        Some(&self.chunks[idx as usize])
    }

    #[inline]
    fn chunk_mut(&mut self, addr: Addr) -> &mut [u8] {
        let id = addr / CHUNK;
        let idx = match self.lookup(id) {
            Some(idx) => idx,
            None => {
                // ds-analyze: allow(tp1) 2^32 chunks would be 2^48 bytes of simulated memory; the address space is 48-bit so the count cannot overflow
                let idx = u32::try_from(self.chunks.len()).expect("chunk count fits u32");
                self.chunks.push(vec![0u8; CHUNK as usize].into_boxed_slice());
                self.index.insert(id, idx);
                self.set_memo(id, idx);
                idx
            }
        };
        &mut self.chunks[idx as usize]
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.chunk(addr) {
            Some(c) => c[(addr % CHUNK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let off = (addr % CHUNK) as usize;
        self.chunk_mut(addr)[off] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`. Accesses may
    /// straddle chunk boundaries; no alignment is required.
    fn read_le<const N: usize>(&self, addr: Addr) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: within one chunk.
        let off = (addr % CHUNK) as usize;
        if off + N <= CHUNK as usize {
            if let Some(c) = self.chunk(addr) {
                out.copy_from_slice(&c[off..off + N]);
            }
            return out;
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        out
    }

    fn write_le<const N: usize>(&mut self, addr: Addr, bytes: [u8; N]) {
        let off = (addr % CHUNK) as usize;
        if off + N <= CHUNK as usize {
            self.chunk_mut(addr)[off..off + N].copy_from_slice(&bytes);
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: Addr) -> u16 {
        u16::from_le_bytes(self.read_le(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: Addr, value: u16) {
        self.write_le(addr, value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        u32::from_le_bytes(self.read_le(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        self.write_le(addr, value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        u64::from_le_bytes(self.read_le(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write_le(addr, value.to_le_bytes());
    }

    /// Reads an `f64` (IEEE-754 bits via `u64`).
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: Addr, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies `bytes` into the image starting at `addr`, one
    /// chunk-sized `copy_from_slice` at a time.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr % CHUNK) as usize;
            let n = rest.len().min(CHUNK as usize - off);
            self.chunk_mut(addr)[off..off + n].copy_from_slice(&rest[..n]);
            addr += n as u64;
            rest = &rest[n..];
        }
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector,
    /// copying chunk-wise (unmapped chunks read as zeros).
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut addr = addr;
        let mut dst = &mut out[..];
        while !dst.is_empty() {
            let off = (addr % CHUNK) as usize;
            let n = dst.len().min(CHUNK as usize - off);
            if let Some(c) = self.chunk(addr) {
                dst[..n].copy_from_slice(&c[off..off + n]);
            }
            addr += n as u64;
            dst = &mut dst[n..];
        }
        out
    }

    /// Number of backing chunks allocated (a proxy for touched
    /// footprint; each chunk is 4 KiB).
    pub fn allocated_chunks(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let m = MemImage::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(123456789), 0);
        assert_eq!(m.allocated_chunks(), 0);
    }

    #[test]
    fn widths_roundtrip() {
        let mut m = MemImage::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xcdef);
        m.write_u32(30, 0x1234_5678);
        m.write_u64(40, 0x1122_3344_5566_7788);
        m.write_f64(50, -3.5);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xcdef);
        assert_eq!(m.read_u32(30), 0x1234_5678);
        assert_eq!(m.read_u64(40), 0x1122_3344_5566_7788);
        assert_eq!(m.read_f64(50), -3.5);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = MemImage::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(1), 2);
        assert_eq!(m.read_u8(2), 3);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn straddles_chunk_boundary() {
        let mut m = MemImage::new();
        let addr = CHUNK - 3;
        m.write_u64(addr, 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.read_u64(addr), 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.allocated_chunks(), 2);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = MemImage::new();
        let data: Vec<u8> = (0..100).collect();
        m.write_bytes(5000, &data);
        assert_eq!(m.read_bytes(5000, 100), data);
    }

    #[test]
    fn bulk_bytes_span_many_chunks() {
        let mut m = MemImage::new();
        // 3 chunks' worth starting mid-chunk, so both the write and the
        // read cross two boundaries.
        let data: Vec<u8> = (0..3 * CHUNK).map(|i| (i * 7 + 13) as u8).collect();
        let addr = 10 * CHUNK + 100;
        m.write_bytes(addr, &data);
        assert_eq!(m.read_bytes(addr, data.len()), data);
        assert_eq!(m.allocated_chunks(), 4);
        // A read overlapping mapped and unmapped chunks zero-fills the
        // unmapped tail.
        let tail = m.read_bytes(addr + data.len() as u64 - 4, 100);
        assert_eq!(&tail[..4], &data[data.len() - 4..]);
        assert!(tail[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn overwrite_takes_effect() {
        let mut m = MemImage::new();
        m.write_u64(64, 1);
        m.write_u64(64, 2);
        assert_eq!(m.read_u64(64), 2);
    }

    #[test]
    fn memo_survives_alternating_chunks() {
        let mut m = MemImage::new();
        let a = 0;
        let b = 100 * CHUNK;
        m.write_u64(a, 1);
        m.write_u64(b, 2);
        // Alternate so the memo is wrong on every access.
        for _ in 0..10 {
            assert_eq!(m.read_u64(a), 1);
            assert_eq!(m.read_u64(b), 2);
        }
        let cloned = m.clone();
        assert_eq!(cloned.read_u64(a), 1);
        assert_eq!(cloned.read_u64(b), 2);
    }
}
