//! Sparse byte-addressable memory image for functional execution.

use crate::Addr;
use std::collections::HashMap;

/// Storage granularity of the sparse image (independent of the
/// architectural page size configured in the [`crate::PageTable`]).
const CHUNK: u64 = 4096;

/// A sparse, little-endian, byte-addressable memory image.
///
/// Reads of unmapped memory return zero; writes allocate backing
/// storage on demand. In a DataScalar system every node runs the same
/// program and computes every store, so each node's functional image is
/// the *entire* address space — ownership affects only timing, never
/// values. One shared `MemImage` therefore backs all nodes.
///
/// # Examples
///
/// ```
/// use ds_mem::MemImage;
///
/// let mut m = MemImage::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x9_0000), 0, "unmapped reads as zero");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    chunks: HashMap<u64, Box<[u8]>>,
}

impl MemImage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> Self {
        Self::default()
    }

    fn chunk(&self, addr: Addr) -> Option<&[u8]> {
        self.chunks.get(&(addr / CHUNK)).map(|c| &**c)
    }

    fn chunk_mut(&mut self, addr: Addr) -> &mut [u8] {
        self.chunks
            .entry(addr / CHUNK)
            .or_insert_with(|| vec![0u8; CHUNK as usize].into_boxed_slice())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.chunk(addr) {
            Some(c) => c[(addr % CHUNK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let off = (addr % CHUNK) as usize;
        self.chunk_mut(addr)[off] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`. Accesses may
    /// straddle chunk boundaries; no alignment is required.
    fn read_le<const N: usize>(&self, addr: Addr) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: within one chunk.
        let off = (addr % CHUNK) as usize;
        if off + N <= CHUNK as usize {
            if let Some(c) = self.chunk(addr) {
                out.copy_from_slice(&c[off..off + N]);
            }
            return out;
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        out
    }

    fn write_le<const N: usize>(&mut self, addr: Addr, bytes: [u8; N]) {
        let off = (addr % CHUNK) as usize;
        if off + N <= CHUNK as usize {
            self.chunk_mut(addr)[off..off + N].copy_from_slice(&bytes);
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: Addr) -> u16 {
        u16::from_le_bytes(self.read_le(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: Addr, value: u16) {
        self.write_le(addr, value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        u32::from_le_bytes(self.read_le(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        self.write_le(addr, value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        u64::from_le_bytes(self.read_le(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write_le(addr, value.to_le_bytes());
    }

    /// Reads an `f64` (IEEE-754 bits via `u64`).
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: Addr, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies `bytes` into the image starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }

    /// Number of backing chunks allocated (a proxy for touched
    /// footprint; each chunk is 4 KiB).
    pub fn allocated_chunks(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let m = MemImage::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(123456789), 0);
        assert_eq!(m.allocated_chunks(), 0);
    }

    #[test]
    fn widths_roundtrip() {
        let mut m = MemImage::new();
        m.write_u8(10, 0xab);
        m.write_u16(20, 0xcdef);
        m.write_u32(30, 0x1234_5678);
        m.write_u64(40, 0x1122_3344_5566_7788);
        m.write_f64(50, -3.5);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(20), 0xcdef);
        assert_eq!(m.read_u32(30), 0x1234_5678);
        assert_eq!(m.read_u64(40), 0x1122_3344_5566_7788);
        assert_eq!(m.read_f64(50), -3.5);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = MemImage::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(1), 2);
        assert_eq!(m.read_u8(2), 3);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn straddles_chunk_boundary() {
        let mut m = MemImage::new();
        let addr = CHUNK - 3;
        m.write_u64(addr, 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.read_u64(addr), 0xa1b2_c3d4_e5f6_0718);
        assert_eq!(m.allocated_chunks(), 2);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = MemImage::new();
        let data: Vec<u8> = (0..100).collect();
        m.write_bytes(5000, &data);
        assert_eq!(m.read_bytes(5000, 100), data);
    }

    #[test]
    fn overwrite_takes_effect() {
        let mut m = MemImage::new();
        m.write_u64(64, 1);
        m.write_u64(64, 2);
        assert_eq!(m.read_u64(64), 2);
    }
}
