//! Banked on-chip main-memory timing.
//!
//! The paper's §4.2 memory system: "high-capacity, on-chip memory banks
//! that can be accessed in 8 ns... connected with a 256-bit bus that is
//! clocked at the processor frequency". With a 1 GHz core that is an
//! 8-cycle bank access plus a one-cycle on-chip transfer per 32 bytes.

use crate::{Addr, Cycle};

/// Timing parameters of a node's local (on-chip) memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryTimingConfig {
    /// Number of independent banks.
    pub banks: usize,
    /// Bank access (busy) time in core cycles.
    pub access_cycles: Cycle,
    /// Bytes moved per core cycle on the on-chip bus (256-bit bus at
    /// core clock = 32 B/cycle).
    pub onchip_bus_bytes_per_cycle: u64,
    /// Interleave granularity in bytes (typically the cache line size).
    pub interleave_bytes: u64,
}

impl Default for MemoryTimingConfig {
    fn default() -> Self {
        MemoryTimingConfig {
            banks: 8,
            access_cycles: 8,
            onchip_bus_bytes_per_cycle: 32,
            interleave_bytes: 32,
        }
    }
}

/// Banked main-memory timing model.
///
/// Purely a timing structure: it answers "when will a line-sized access
/// issued at cycle `now` complete?", tracking per-bank occupancy.
///
/// # Examples
///
/// ```
/// use ds_mem::{MainMemory, MemoryTimingConfig};
///
/// let mut m = MainMemory::new(MemoryTimingConfig::default());
/// let done = m.access(0x0, 32, 100);
/// assert_eq!(done, 109, "8-cycle bank + 1-cycle transfer");
/// ```
#[derive(Debug, Clone)]
pub struct MainMemory {
    config: MemoryTimingConfig,
    next_free: Vec<Cycle>,
    accesses: u64,
    busy_conflicts: u64,
}

impl MainMemory {
    /// Builds an idle memory.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or `onchip_bus_bytes_per_cycle == 0`.
    pub fn new(config: MemoryTimingConfig) -> Self {
        assert!(config.banks > 0, "need at least one bank");
        assert!(config.onchip_bus_bytes_per_cycle > 0, "bus must move data");
        MainMemory {
            next_free: vec![0; config.banks],
            config,
            accesses: 0,
            busy_conflicts: 0,
        }
    }

    /// The timing parameters.
    pub fn config(&self) -> &MemoryTimingConfig {
        &self.config
    }

    fn bank_of(&self, addr: Addr) -> usize {
        ((addr / self.config.interleave_bytes) % self.config.banks as u64) as usize
    }

    /// Schedules an access of `bytes` bytes at `addr` issued at `now`;
    /// returns the completion cycle. Accesses to a busy bank queue
    /// behind it.
    pub fn access(&mut self, addr: Addr, bytes: u64, now: Cycle) -> Cycle {
        self.accesses += 1;
        let bank = self.bank_of(addr);
        let start = self.next_free[bank].max(now);
        if start > now {
            self.busy_conflicts += 1;
        }
        let transfer = bytes.div_ceil(self.config.onchip_bus_bytes_per_cycle);
        let done = start + self.config.access_cycles + transfer;
        self.next_free[bank] = done;
        done
    }

    /// Earliest cycle at which *every* bank is free, i.e. the cycle the
    /// last scheduled access completes. Banks are passive (completion
    /// times are returned to the issuer at `access` time, the core's
    /// event heap carries them), so this is a diagnostic horizon hook:
    /// at or after this cycle the memory can accept any access with no
    /// bank conflict.
    pub fn next_free_cycle(&self) -> Cycle {
        self.next_free.iter().copied().max().unwrap_or(0)
    }

    /// Total accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that queued behind a busy bank.
    pub fn busy_conflicts(&self) -> u64 {
        self.busy_conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_latency() {
        let mut m = MainMemory::new(MemoryTimingConfig::default());
        assert_eq!(m.access(0, 32, 0), 9);
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn same_bank_serialises() {
        let mut m = MainMemory::new(MemoryTimingConfig::default());
        let a = m.access(0, 32, 0);
        // Same bank (same interleave slot modulo banks): 0 and 8*32=256.
        let b = m.access(256, 32, 0);
        assert_eq!(b, a + 9);
        assert_eq!(m.busy_conflicts(), 1);
    }

    #[test]
    fn different_banks_overlap() {
        let mut m = MainMemory::new(MemoryTimingConfig::default());
        let a = m.access(0, 32, 0);
        let b = m.access(32, 32, 0);
        assert_eq!(a, b, "adjacent lines hit different banks");
        assert_eq!(m.busy_conflicts(), 0);
    }

    #[test]
    fn bank_frees_after_completion() {
        let mut m = MainMemory::new(MemoryTimingConfig::default());
        let a = m.access(0, 32, 0);
        let b = m.access(0, 32, a);
        assert_eq!(b, a + 9, "no conflict when issued after completion");
        assert_eq!(m.busy_conflicts(), 0);
    }

    #[test]
    fn next_free_cycle_tracks_the_busiest_bank() {
        let mut m = MainMemory::new(MemoryTimingConfig::default());
        assert_eq!(m.next_free_cycle(), 0, "idle memory is free now");
        let a = m.access(0, 32, 100);
        assert_eq!(m.next_free_cycle(), a);
        let b = m.access(0, 32, 100); // same bank queues behind
        assert_eq!(m.next_free_cycle(), b);
        assert!(b > a);
    }

    #[test]
    fn wide_access_takes_more_transfer_cycles() {
        let mut m = MainMemory::new(MemoryTimingConfig::default());
        assert_eq!(m.access(0, 64, 0), 10, "two transfer beats for 64 B");
    }

    #[test]
    fn slow_memory_config() {
        let mut m = MainMemory::new(MemoryTimingConfig {
            access_cycles: 50,
            ..Default::default()
        });
        assert_eq!(m.access(0, 32, 0), 51);
    }
}
