//! TLB timing model for address translation.
//!
//! The paper implements address translation with a single-level page
//! table locked in the low region of physical memory (§4.2) and does
//! not model a TLB (translation is implicitly free). This module adds
//! an optional, set-associative TLB so the ablation harness can measure
//! how sensitive the DataScalar results are to that assumption: a TLB
//! miss costs one local page-table access (the table is locked in
//! *local* memory at every node — it is replicated state, so the walk
//! never crosses the interconnect).

use crate::{Addr, Cycle};

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Associativity (entries must be divisible by it; sets must be a
    /// power of two).
    pub assoc: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
}

impl TlbConfig {
    /// A typical 64-entry fully-associative TLB.
    pub fn typical(page_bytes: u64) -> Self {
        TlbConfig { entries: 64, assoc: 64, page_bytes }
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    lru: u64,
}

/// A set-associative TLB (timing state only — translation itself is
/// identity in this simulator).
///
/// # Examples
///
/// ```
/// use ds_mem::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig { entries: 4, assoc: 4, page_bytes: 4096 });
/// assert!(!tlb.access(0x1000));
/// assert!(tlb.access(0x1fff), "same page hits");
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    sets: Vec<Vec<TlbEntry>>,
    num_sets: u64,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.page_bytes.is_power_of_two(), "page size must be a power of two");
        assert!(config.assoc >= 1 && config.entries >= config.assoc);
        assert_eq!(config.entries % config.assoc, 0, "entries must divide into ways");
        let num_sets = (config.entries / config.assoc) as u64;
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        Tlb {
            config,
            sets: vec![Vec::with_capacity(config.assoc); num_sets as usize],
            num_sets,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `addr`: returns `true` on a TLB hit. A miss installs
    /// the entry (the page-table walk is charged by the caller).
    pub fn access(&mut self, addr: Addr) -> bool {
        self.stamp += 1;
        let vpn = addr / self.config.page_bytes;
        let set = (vpn % self.num_sets) as usize;
        let assoc = self.config.assoc;
        let stamp = self.stamp;
        let entries = &mut self.sets[set];
        if let Some(e) = entries.iter_mut().find(|e| e.vpn == vpn) {
            e.lru = stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if entries.len() >= assoc {
            let (i, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                // ds-analyze: allow(tp1) this branch requires entries.len() >= assoc and assoc >= 1 is validated at construction
                .expect("non-empty set");
            entries.swap_remove(i);
        }
        entries.push(TlbEntry { vpn, lru: stamp });
        false
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (1.0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Translation timing helper: the cycle at which translation of `addr`
/// completes, charging a page-table walk in `walk` cycles on a miss.
pub fn translate(tlb: &mut Tlb, addr: Addr, now: Cycle, walk: Cycle) -> Cycle {
    if tlb.access(addr) {
        now
    } else {
        now + walk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig { entries: 4, assoc: 2, page_bytes: 4096 })
    }

    #[test]
    fn same_page_hits_after_install() {
        let mut t = tiny();
        assert!(!t.access(0x0));
        assert!(t.access(0xfff));
        assert!(!t.access(0x1000), "next page misses");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_within_a_set() {
        let mut t = tiny();
        // 2 sets; vpns 0, 2, 4 share set 0.
        t.access(0x0000); // vpn 0
        t.access(0x2000); // vpn 2
        t.access(0x0000); // refresh vpn 0
        t.access(0x4000); // vpn 4 evicts vpn 2
        assert!(t.access(0x0000), "vpn 0 retained");
        assert!(!t.access(0x2000), "vpn 2 evicted");
    }

    #[test]
    fn hit_rate_reporting() {
        let mut t = tiny();
        assert_eq!(t.hit_rate(), 1.0, "vacuous");
        t.access(0x0);
        t.access(0x0);
        t.access(0x0);
        assert!((t.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn translate_charges_walk_on_miss() {
        let mut t = tiny();
        assert_eq!(translate(&mut t, 0x5000, 100, 9), 109);
        assert_eq!(translate(&mut t, 0x5008, 100, 9), 100);
    }

    #[test]
    fn fully_associative_geometry() {
        let mut t = Tlb::new(TlbConfig::typical(4096));
        for p in 0..64u64 {
            t.access(p * 4096);
        }
        for p in 0..64u64 {
            assert!(t.access(p * 4096), "all 64 pages resident");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_rejected() {
        Tlb::new(TlbConfig { entries: 4, assoc: 2, page_bytes: 3000 });
    }
}
