//! The page table: replicated/communicated classification and
//! page ownership.
//!
//! The paper (§2, §4.2) divides the address space into *replicated*
//! pages, mapped in every node's local memory, and *communicated*
//! pages, each owned by exactly one node. The page table carries one
//! replicated bit and one ownership bit per page; we also tag each page
//! with its [`Segment`] so the Table 2 experiment can report replication
//! per segment.

use crate::Addr;
use std::collections::BTreeMap;

/// Identifier of a DataScalar node (processor/memory module).
pub type NodeId = usize;

/// Program segment a page belongs to, used for Table 2's per-segment
/// replication accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Segment {
    /// Program text.
    Text,
    /// Global (static) data.
    Global,
    /// Heap.
    Heap,
    /// Stack.
    Stack,
}

impl Segment {
    /// All segments in display order.
    pub const ALL: [Segment; 4] = [Segment::Text, Segment::Global, Segment::Heap, Segment::Stack];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Segment::Text => "text",
            Segment::Global => "global",
            Segment::Heap => "heap",
            Segment::Stack => "stack",
        }
    }
}

/// Classification of an address by the page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageClass {
    /// Mapped in every node's local memory; accesses always complete
    /// locally and are never broadcast.
    Replicated,
    /// Communicated: owned by exactly one node, which services and
    /// broadcasts it.
    Owned(NodeId),
}

#[derive(Debug, Clone, Copy)]
struct PageEntry {
    class: PageClass,
    segment: Segment,
}

/// The single-level page table of a DataScalar system.
///
/// Construct one through [`PageTableBuilder`]. Addresses on pages never
/// declared to the builder fall back to a deterministic round-robin
/// ownership (`vpn % nodes`), so timing simulation is total even if a
/// workload touches memory outside its declared layout.
///
/// # Examples
///
/// ```
/// use ds_mem::{PageTableBuilder, PageClass, Segment};
///
/// let mut b = PageTableBuilder::new(4096, 2);
/// b.add_region(0x0000, 0x2000, Segment::Text);
/// b.add_region(0x2000, 0x6000, Segment::Global);
/// b.replicate_segment(Segment::Text);
/// b.distribute_round_robin(1);
/// let pt = b.build();
/// assert_eq!(pt.classify(0x100), PageClass::Replicated);
/// assert_eq!(pt.classify(0x2000), PageClass::Owned(0));
/// assert_eq!(pt.classify(0x3000), PageClass::Owned(1));
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: u64,
    nodes: usize,
    entries: BTreeMap<u64, PageEntry>,
}

impl PageTable {
    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Number of nodes in the partition.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Virtual page number of `addr`.
    pub fn vpn(&self, addr: Addr) -> u64 {
        addr / self.page_size
    }

    /// Classifies `addr` as replicated or owned-by-node.
    pub fn classify(&self, addr: Addr) -> PageClass {
        let vpn = self.vpn(addr);
        match self.entries.get(&vpn) {
            Some(e) => e.class,
            None => PageClass::Owned((vpn % self.nodes as u64) as NodeId),
        }
    }

    /// True when `node` can service `addr` from its local memory
    /// (replicated everywhere, or owned by `node`).
    pub fn is_local(&self, addr: Addr, node: NodeId) -> bool {
        match self.classify(addr) {
            PageClass::Replicated => true,
            PageClass::Owned(owner) => owner == node,
        }
    }

    /// The segment of `addr`, if its page was declared.
    pub fn segment(&self, addr: Addr) -> Option<Segment> {
        self.entries.get(&self.vpn(addr)).map(|e| e.segment)
    }

    /// Counts replicated pages per segment, in [`Segment::ALL`] order.
    pub fn replicated_per_segment(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for e in self.entries.values() {
            if e.class == PageClass::Replicated {
                let idx = Segment::ALL.iter().position(|&s| s == e.segment).unwrap();
                counts[idx] += 1;
            }
        }
        counts
    }

    /// Total number of declared pages.
    pub fn declared_pages(&self) -> usize {
        self.entries.len()
    }

    /// Number of declared pages owned by `node` (excludes replicated).
    pub fn pages_owned_by(&self, node: NodeId) -> usize {
        self.entries
            .values()
            .filter(|e| e.class == PageClass::Owned(node))
            .count()
    }
}

/// Builder for a [`PageTable`].
///
/// Typical flow: declare the program's regions, mark some pages (or
/// whole segments) replicated, then distribute the remaining
/// communicated pages round-robin in blocks — the paper's §3.2
/// methodology.
#[derive(Debug, Clone)]
pub struct PageTableBuilder {
    page_size: u64,
    nodes: usize,
    segments: BTreeMap<u64, Segment>,
    replicated: std::collections::BTreeSet<u64>,
    owners: BTreeMap<u64, NodeId>,
}

impl PageTableBuilder {
    /// Creates a builder for a `nodes`-way partition with the given page
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two or `nodes == 0`.
    pub fn new(page_size: u64, nodes: usize) -> Self {
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        assert!(nodes > 0, "need at least one node");
        Self {
            page_size,
            nodes,
            segments: BTreeMap::new(),
            replicated: Default::default(),
            owners: BTreeMap::new(),
        }
    }

    /// Declares `[start, end)` as belonging to `segment`. The range is
    /// expanded outward to page boundaries.
    pub fn add_region(&mut self, start: Addr, end: Addr, segment: Segment) -> &mut Self {
        assert!(end > start, "empty region");
        let first = start / self.page_size;
        let last = (end - 1) / self.page_size;
        for vpn in first..=last {
            self.segments.insert(vpn, segment);
        }
        self
    }

    /// Marks the page containing `addr` as replicated at every node.
    pub fn replicate_page_of(&mut self, addr: Addr) -> &mut Self {
        self.replicated.insert(addr / self.page_size);
        self
    }

    /// Marks every declared page of `segment` replicated.
    pub fn replicate_segment(&mut self, segment: Segment) -> &mut Self {
        let vpns: Vec<u64> = self
            .segments
            .iter()
            .filter(|(_, &s)| s == segment)
            .map(|(&v, _)| v)
            .collect();
        self.replicated.extend(vpns);
        self
    }

    /// Distributes all declared, non-replicated pages round-robin across
    /// the nodes in blocks of `block_pages` contiguous pages — the
    /// paper's communicated-data distribution (§3.2).
    ///
    /// # Panics
    ///
    /// Panics if `block_pages == 0`.
    pub fn distribute_round_robin(&mut self, block_pages: u64) -> &mut Self {
        assert!(block_pages > 0, "block size must be positive");
        // Assign per segment so each segment starts its rotation at node
        // 0, spreading every segment across all nodes (the paper keeps
        // distribution blocks smaller than 1/n of each segment for the
        // same reason).
        for seg in Segment::ALL {
            let vpns: Vec<u64> = self
                .segments
                .iter()
                .filter(|(v, &s)| s == seg && !self.replicated.contains(v))
                .map(|(&v, _)| v)
                .collect();
            for (i, vpn) in vpns.iter().enumerate() {
                let node = (i as u64 / block_pages) % self.nodes as u64;
                self.owners.insert(*vpn, node as NodeId);
            }
        }
        self
    }

    /// Finalises the table.
    pub fn build(&self) -> PageTable {
        let mut entries = BTreeMap::new();
        for (&vpn, &segment) in &self.segments {
            let class = if self.replicated.contains(&vpn) {
                PageClass::Replicated
            } else {
                match self.owners.get(&vpn) {
                    Some(&n) => PageClass::Owned(n),
                    // Declared but never distributed: fall back to
                    // per-page round-robin.
                    None => PageClass::Owned((vpn % self.nodes as u64) as NodeId),
                }
            };
            entries.insert(vpn, PageEntry { class, segment });
        }
        PageTable { page_size: self.page_size, nodes: self.nodes, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> PageTableBuilder {
        let mut b = PageTableBuilder::new(4096, 4);
        b.add_region(0x0000, 0x4000, Segment::Text); // 4 pages
        b.add_region(0x1_0000, 0x1_8000, Segment::Global); // 8 pages
        b.add_region(0x2_0000, 0x2_4000, Segment::Heap); // 4 pages
        b.add_region(0x7_0000, 0x7_2000, Segment::Stack); // 2 pages
        b
    }

    #[test]
    fn round_robin_distribution_per_segment() {
        let mut b = builder();
        b.distribute_round_robin(1);
        let pt = b.build();
        // Global pages 0x10..0x17 cycle 0,1,2,3,0,1,2,3.
        for i in 0..8u64 {
            assert_eq!(
                pt.classify(0x1_0000 + i * 4096),
                PageClass::Owned((i % 4) as usize)
            );
        }
        // Each segment restarts at node 0.
        assert_eq!(pt.classify(0x2_0000), PageClass::Owned(0));
        assert_eq!(pt.classify(0x7_0000), PageClass::Owned(0));
    }

    #[test]
    fn block_distribution_groups_pages() {
        let mut b = builder();
        b.distribute_round_robin(2);
        let pt = b.build();
        // Global: blocks of two pages per node.
        assert_eq!(pt.classify(0x1_0000), PageClass::Owned(0));
        assert_eq!(pt.classify(0x1_1000), PageClass::Owned(0));
        assert_eq!(pt.classify(0x1_2000), PageClass::Owned(1));
        assert_eq!(pt.classify(0x1_3000), PageClass::Owned(1));
    }

    #[test]
    fn replicated_segment_is_local_everywhere() {
        let mut b = builder();
        b.replicate_segment(Segment::Text);
        b.distribute_round_robin(1);
        let pt = b.build();
        for node in 0..4 {
            assert!(pt.is_local(0x100, node));
        }
        assert_eq!(pt.classify(0x100), PageClass::Replicated);
        assert_eq!(pt.replicated_per_segment(), [4, 0, 0, 0]);
    }

    #[test]
    fn undeclared_pages_fall_back_round_robin() {
        let pt = builder().build();
        let far = 0x50_0000u64;
        let vpn = far / 4096;
        assert_eq!(pt.classify(far), PageClass::Owned((vpn % 4) as usize));
    }

    #[test]
    fn is_local_only_for_owner() {
        let mut b = builder();
        b.distribute_round_robin(1);
        let pt = b.build();
        let addr = 0x1_1000; // global page 1 -> node 1
        assert!(pt.is_local(addr, 1));
        assert!(!pt.is_local(addr, 0));
        assert!(!pt.is_local(addr, 2));
    }

    #[test]
    fn segments_recorded() {
        let pt = builder().build();
        assert_eq!(pt.segment(0x0), Some(Segment::Text));
        assert_eq!(pt.segment(0x1_0000), Some(Segment::Global));
        assert_eq!(pt.segment(0x2_0000), Some(Segment::Heap));
        assert_eq!(pt.segment(0x7_0000), Some(Segment::Stack));
        assert_eq!(pt.segment(0x50_0000), None);
    }

    #[test]
    fn pages_owned_by_counts() {
        let mut b = builder();
        b.distribute_round_robin(1);
        let pt = b.build();
        let total: usize = (0..4).map(|n| pt.pages_owned_by(n)).sum();
        assert_eq!(total, pt.declared_pages());
    }

    #[test]
    fn replicate_single_page() {
        let mut b = builder();
        b.replicate_page_of(0x2_0000);
        b.distribute_round_robin(1);
        let pt = b.build();
        assert_eq!(pt.classify(0x2_0000), PageClass::Replicated);
        assert_ne!(pt.classify(0x2_1000), PageClass::Replicated);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_page_size_rejected() {
        PageTableBuilder::new(3000, 2);
    }
}
