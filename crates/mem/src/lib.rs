//! Memory substrate for the DataScalar reproduction.
//!
//! This crate provides every memory-system component both the
//! DataScalar machine and its traditional comparator are built from:
//!
//! * [`MemImage`] — a sparse, byte-addressable, little-endian memory
//!   image used by functional execution (every DataScalar node computes
//!   every store, so each node's functional image is the full address
//!   space — the *timing* partition lives in the [`PageTable`]);
//! * [`PageTable`] — the paper's single-level page table with one
//!   *replicated* bit and one *ownership* bit per page (§4.2), plus the
//!   builders that replicate heavily-used pages and distribute the
//!   communicated pages round-robin in blocks (§3.2);
//! * [`Cache`] — a parameterised set-associative cache state model with
//!   true-LRU replacement and configurable write policy. The paper's
//!   D-caches are write-back, write-no-allocate (§4.2); its trace
//!   experiments use write-back, write-allocate (§3.1); both are
//!   expressible;
//! * [`MainMemory`] — banked on-chip DRAM timing (§4.2: 8 ns banks
//!   behind a core-clocked on-chip bus).

mod bank;
mod cache;
mod image;
mod page;
mod tlb;

pub use bank::{MainMemory, MemoryTimingConfig};
pub use cache::{AccessKind, Cache, CacheConfig, CacheOutcome, Victim, WritePolicy};
pub use image::MemImage;
pub use page::{NodeId, PageClass, PageTable, PageTableBuilder, Segment};
pub use tlb::{translate, Tlb, TlbConfig};

/// A byte address in the simulated machine.
pub type Addr = u64;

/// A simulation cycle count.
pub type Cycle = u64;
