//! Set-associative cache state model with true LRU and configurable
//! write policy.
//!
//! This models cache *state* (tags, dirtiness, replacement), not data —
//! values are functional in this simulator. The DataScalar node uses
//! one instance as its *canonical* commit-order cache (the structure the
//! cache-correspondence protocol keeps identical across nodes) and the
//! trace experiments use instances directly.

use crate::Addr;

/// Write-miss / write-hit policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write-back, write-allocate: the paper's §3.1 trace configuration.
    WriteBackAllocate,
    /// Write-back, write-no-allocate: the paper's §4.2 timing
    /// configuration ("with a write-allocate protocol, a write miss
    /// requires sending an inter-processor message, only to overwrite
    /// the received data").
    WriteBackNoAllocate,
}

/// Static cache geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways); 1 = direct-mapped.
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// The paper's §3.1 trace cache: 64 KiB, 2-way, write-allocate,
    /// write-back (line size ours, 32 B).
    pub fn spec95_trace() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 2,
            line_bytes: 32,
            write_policy: WritePolicy::WriteBackAllocate,
        }
    }

    /// The paper's §4.2 timing D-cache: 16 KiB direct-mapped,
    /// write-back write-no-allocate.
    pub fn timing_dcache() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            assoc: 1,
            line_bytes: 32,
            write_policy: WritePolicy::WriteBackNoAllocate,
        }
    }

    /// The paper's §4.2 timing I-cache: 16 KiB direct-mapped (writes
    /// never occur).
    pub fn timing_icache() -> Self {
        Self::timing_dcache()
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`Cache::new`]).
    pub fn num_sets(&self) -> u64 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.assoc >= 1, "associativity must be at least 1");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines >= self.assoc as u64 && lines.is_multiple_of(self.assoc as u64),
            "capacity must be a multiple of assoc * line size"
        );
        let sets = lines / self.assoc as u64;
        assert!(sets.is_power_of_two(), "number of sets must be a power of two");
        sets
    }
}

/// Kind of access presented to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (or instruction fetch).
    Read,
    /// A store.
    Write,
}

/// A line evicted by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned address of the evicted line.
    pub line_addr: Addr,
    /// Whether the line was dirty (requires a write-back under
    /// write-back policies).
    pub dirty: bool,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent.
    Miss {
        /// Whether the access allocated the line (false only for write
        /// misses under write-no-allocate).
        allocated: bool,
        /// The line evicted to make room, if any.
        victim: Option<Victim>,
    },
}

impl CacheOutcome {
    /// True for [`CacheOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }

    /// True for any miss.
    pub fn is_miss(self) -> bool {
        !self.is_hit()
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Monotonic last-use stamp for true LRU.
    lru: u64,
}

/// A set-associative cache state model.
///
/// # Examples
///
/// ```
/// use ds_mem::{Cache, CacheConfig, AccessKind, CacheOutcome};
///
/// let mut c = Cache::new(CacheConfig::timing_dcache());
/// assert!(c.access(0x1000, AccessKind::Read).is_miss());
/// assert!(c.access(0x1008, AccessKind::Read).is_hit(), "same line");
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    num_sets: u64,
    /// log2(line_bytes); geometry asserts powers of two, so indexing is
    /// shift/mask rather than division (access() runs twice per memory
    /// instruction and the divisor is not a compile-time constant).
    line_shift: u32,
    /// log2(num_sets).
    set_shift: u32,
    stamp: u64,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent: line size and set count
    /// must be powers of two and the capacity a multiple of
    /// `assoc * line_bytes`.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.assoc); num_sets as usize],
            num_sets,
            line_shift: config.line_bytes.trailing_zeros(),
            set_shift: num_sets.trailing_zeros(),
            stamp: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The line-aligned address containing `addr`.
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr & !(self.config.line_bytes - 1)
    }

    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & (self.num_sets - 1)) as usize, line >> self.set_shift)
    }

    /// Checks for presence without updating any state.
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// Performs an access, updating LRU, dirtiness, and allocation
    /// state, and reports hit/miss plus any victim.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> CacheOutcome {
        self.stamp += 1;
        let stamp = self.stamp;
        let (set_idx, tag) = self.set_and_tag(addr);
        let assoc = self.config.assoc;
        let write_policy = self.config.write_policy;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.lru = stamp;
            if kind == AccessKind::Write {
                line.dirty = true;
            }
            return CacheOutcome::Hit;
        }
        // Miss.
        let allocate = match (kind, write_policy) {
            (AccessKind::Read, _) => true,
            (AccessKind::Write, WritePolicy::WriteBackAllocate) => true,
            (AccessKind::Write, WritePolicy::WriteBackNoAllocate) => false,
        };
        if !allocate {
            return CacheOutcome::Miss { allocated: false, victim: None };
        }
        let victim = if set.len() < assoc {
            None
        } else {
            let (i, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                // ds-analyze: allow(tp1) this branch requires set.len() >= assoc and assoc >= 1 is validated at construction
                .expect("non-empty set");
            let evicted = set.swap_remove(i);
            let line_base = (evicted.tag * self.num_sets + set_idx as u64) * self.config.line_bytes;
            Some(Victim { line_addr: line_base, dirty: evicted.dirty })
        };
        set.push(Line { tag, dirty: kind == AccessKind::Write, lru: stamp });
        CacheOutcome::Miss { allocated: true, victim }
    }

    /// Removes the line containing `addr`, returning whether it was
    /// present and dirty.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.sets[set_idx];
        let i = set.iter().position(|l| l.tag == tag)?;
        Some(set.swap_remove(i).dirty)
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Iterates over all resident line addresses in a deterministic
    /// order (sorted), together with their dirty bits. Used by the
    /// correspondence-invariant checks.
    pub fn resident(&self) -> Vec<(Addr, bool)> {
        let mut out: Vec<(Addr, bool)> = self
            .sets
            .iter()
            .enumerate()
            .flat_map(|(si, set)| {
                set.iter().map(move |l| {
                    ((l.tag * self.num_sets + si as u64) * self.config.line_bytes, l.dirty)
                })
            })
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: usize, policy: WritePolicy) -> Cache {
        // 4 lines of 32 bytes.
        Cache::new(CacheConfig {
            size_bytes: 128,
            assoc,
            line_bytes: 32,
            write_policy: policy,
        })
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = tiny(2, WritePolicy::WriteBackAllocate);
        assert!(c.access(0, AccessKind::Read).is_miss());
        assert!(c.access(31, AccessKind::Read).is_hit());
        assert!(c.access(32, AccessKind::Read).is_miss(), "next line");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny(2, WritePolicy::WriteBackAllocate);
        // Two sets; lines 0, 64 map to set 0; 32, 96 to set 1 ... with 4
        // lines, num_sets = 2: line k maps to set (k % 2).
        c.access(0, AccessKind::Read); // set 0
        c.access(64, AccessKind::Read); // set 0, second way
        c.access(0, AccessKind::Read); // touch line 0 -> 64 is LRU
        let out = c.access(128, AccessKind::Read); // set 0, evicts 64
        match out {
            CacheOutcome::Miss { victim: Some(v), .. } => {
                assert_eq!(v.line_addr, 64);
                assert!(!v.dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.probe(0));
        assert!(!c.probe(64));
    }

    #[test]
    fn dirty_victim_on_written_line() {
        let mut c = tiny(1, WritePolicy::WriteBackAllocate);
        c.access(0, AccessKind::Write);
        // 4 sets when direct-mapped: line k -> set k % 4. Line 128 (line
        // number 4) also maps to set 0.
        let out = c.access(128, AccessKind::Read);
        match out {
            CacheOutcome::Miss { victim: Some(v), .. } => {
                assert_eq!(v.line_addr, 0);
                assert!(v.dirty);
            }
            other => panic!("expected dirty victim, got {other:?}"),
        }
    }

    #[test]
    fn write_no_allocate_does_not_install() {
        let mut c = tiny(2, WritePolicy::WriteBackNoAllocate);
        let out = c.access(0, AccessKind::Write);
        assert_eq!(out, CacheOutcome::Miss { allocated: false, victim: None });
        assert!(!c.probe(0));
        // But a write *hit* dirties the line.
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Write);
        let resident = c.resident();
        assert_eq!(resident, vec![(0, true)]);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny(2, WritePolicy::WriteBackAllocate);
        c.access(0, AccessKind::Read);
        c.access(64, AccessKind::Read);
        // Probing 0 must NOT refresh it.
        assert!(c.probe(0));
        let out = c.access(128, AccessKind::Read);
        match out {
            CacheOutcome::Miss { victim: Some(v), .. } => assert_eq!(v.line_addr, 0),
            other => panic!("expected eviction of 0, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny(2, WritePolicy::WriteBackAllocate);
        c.access(0, AccessKind::Write);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(0), None);
        assert!(!c.probe(0));
    }

    #[test]
    fn resident_lines_counts() {
        let mut c = tiny(2, WritePolicy::WriteBackAllocate);
        assert_eq!(c.resident_lines(), 0);
        c.access(0, AccessKind::Read);
        c.access(32, AccessKind::Read);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn victim_address_reconstruction() {
        // Larger geometry: verify tag/set math by evicting and re-probing.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
            write_policy: WritePolicy::WriteBackAllocate,
        });
        let addrs = [0x0u64, 0x2000, 0x4000];
        for &a in &addrs {
            c.access(a, AccessKind::Read);
        }
        // All three map to set 0 (num_sets = 8, strides of 0x2000 = 8 lines... )
        // 0x2000/64 = 128 lines, 128 % 8 = 0. Good.
        let resident = c.resident();
        assert_eq!(resident.len(), 2);
        assert!(resident.iter().all(|&(a, _)| a == 0x2000 || a == 0x4000));
    }

    #[test]
    #[should_panic(expected = "multiple of assoc")]
    fn bad_geometry_rejected() {
        Cache::new(CacheConfig {
            size_bytes: 96,
            assoc: 2,
            line_bytes: 32,
            write_policy: WritePolicy::WriteBackAllocate,
        });
    }

    #[test]
    fn paper_configs_construct() {
        assert_eq!(CacheConfig::spec95_trace().num_sets(), 1024);
        assert_eq!(CacheConfig::timing_dcache().num_sets(), 512);
        Cache::new(CacheConfig::spec95_trace());
        Cache::new(CacheConfig::timing_icache());
    }
}
