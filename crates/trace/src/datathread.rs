//! Table 2: datathread-length approximation (§3.2).
//!
//! A datathread is approximated as a maximal run of consecutive memory
//! references (cache misses) homed at one node. Following the paper:
//! the count begins at the first reference to a communicated datum
//! local to some node and ends at the next reference to communicated
//! data local to a *different* node; references to replicated pages
//! extend the current run. Three means are reported — over all misses,
//! over text misses, and over data misses — plus the mean contiguous
//! run of replicated-page accesses.

use crate::stream::{for_each_ref, RefKind};
use ds_asm::Program;
use ds_mem::{AccessKind, Cache, CacheConfig, PageClass, PageTable};
use ds_stats::Mean;

/// Datathread-measurement configuration.
#[derive(Debug, Clone)]
pub struct DatathreadConfig {
    /// I-cache and D-cache geometry (the paper reuses §3.1's 64 KiB
    /// two-way configuration).
    pub cache: CacheConfig,
    /// Cap on executed instructions.
    pub max_insts: u64,
}

impl Default for DatathreadConfig {
    fn default() -> Self {
        DatathreadConfig { cache: CacheConfig::spec95_trace(), max_insts: u64::MAX }
    }
}

/// Datathread measurements for one benchmark (one Table 2 row's
/// right-hand side).
#[derive(Debug, Clone, Default)]
pub struct DatathreadReport {
    /// Mean run length over all misses.
    pub all: f64,
    /// Mean run length over text (instruction) misses only.
    pub text: f64,
    /// Mean run length over data misses only.
    pub data: f64,
    /// Mean contiguous run of replicated-page accesses.
    pub replicated: f64,
    /// Number of completed runs over all misses.
    pub all_runs: u64,
    /// Number of completed text runs.
    pub text_runs: u64,
    /// Number of completed data runs.
    pub data_runs: u64,
    /// Total misses observed.
    pub misses: u64,
    /// Instructions executed.
    pub instructions: u64,
}

/// One run-length accumulator following the paper's counting rule.
#[derive(Debug, Default)]
struct RunCounter {
    current_node: Option<usize>,
    current_len: u64,
    runs: Mean,
}

impl RunCounter {
    /// `home`: `None` for a replicated page (extends the run),
    /// `Some(node)` for communicated data.
    fn observe(&mut self, home: Option<usize>) {
        match home {
            None => {
                // Replicated references extend the current thread.
                if self.current_node.is_some() {
                    self.current_len += 1;
                }
            }
            Some(node) => {
                if self.current_node == Some(node) {
                    self.current_len += 1;
                } else {
                    if self.current_node.is_some() {
                        self.runs.add(self.current_len as f64);
                    }
                    self.current_node = Some(node);
                    self.current_len = 1;
                }
            }
        }
    }

    fn finish(mut self) -> Mean {
        if self.current_node.is_some() {
            self.runs.add(self.current_len as f64);
        }
        self.runs
    }
}

/// Runs the Table 2 measurement: misses from split I/D caches are
/// classified through `page_table` and accumulated into run lengths.
pub fn measure_datathreads(
    program: &Program,
    page_table: &PageTable,
    config: &DatathreadConfig,
) -> DatathreadReport {
    let mut icache = Cache::new(config.cache);
    let mut dcache = Cache::new(config.cache);
    let mut all = RunCounter::default();
    let mut text = RunCounter::default();
    let mut data = RunCounter::default();
    let mut repl_run = 0u64;
    let mut repl_runs = Mean::new();
    let mut misses = 0u64;
    let instructions = for_each_ref(program, config.max_insts, |e| {
        let (cache, kind, is_text) = match e.kind {
            RefKind::InstFetch => (&mut icache, AccessKind::Read, true),
            RefKind::Load => (&mut dcache, AccessKind::Read, false),
            RefKind::Store => (&mut dcache, AccessKind::Write, false),
        };
        if cache.access(e.addr, kind).is_hit() {
            return;
        }
        misses += 1;
        let home = match page_table.classify(e.addr) {
            PageClass::Replicated => None,
            PageClass::Owned(n) => Some(n),
        };
        all.observe(home);
        if is_text {
            text.observe(home);
        } else {
            data.observe(home);
        }
        // Replicated-run accounting.
        if home.is_none() {
            repl_run += 1;
        } else if repl_run > 0 {
            repl_runs.add(repl_run as f64);
            repl_run = 0;
        }
    });
    if repl_run > 0 {
        repl_runs.add(repl_run as f64);
    }
    let all = all.finish();
    let text = text.finish();
    let data = data.finish();
    DatathreadReport {
        all: all.mean(),
        text: text.mean(),
        data: data.mean(),
        replicated: repl_runs.mean(),
        all_runs: all.count(),
        text_runs: text.count(),
        data_runs: data.count(),
        misses,
        instructions,
    }
}

/// Picks the paper's distribution block size: the largest power-of-two
/// page count that keeps each block smaller than `1/nodes` of both the
/// text segment and the largest data segment (§3.2).
pub fn pick_block_pages(program: &Program, page_bytes: u64, nodes: usize) -> u64 {
    let mut text_pages = 1u64;
    let mut largest_data_pages = 1u64;
    for (start, end, seg) in program.regions() {
        let pages = (end - start).div_ceil(page_bytes).max(1);
        if seg == ds_mem::Segment::Text {
            text_pages = pages;
        } else {
            largest_data_pages = largest_data_pages.max(pages);
        }
    }
    let cap = (text_pages.min(largest_data_pages) / nodes as u64).max(1);
    // Round down to a power of two for clean interleaving.
    let mut block = 1;
    while block * 2 <= cap {
        block *= 2;
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_asm::assemble;
    use ds_mem::{PageTableBuilder, Segment};

    fn strided_prog() -> Program {
        assemble(
            r#"
            .data
            arr: .space 262144
            .text
            main: li t0, 4096
                  la t1, arr
            loop: ld t2, 0(t1)
                  addi t1, t1, 64
                  addi t0, t0, -1
                  bnez t0, loop
                  halt
            "#,
        )
        .unwrap()
    }

    fn table_for(prog: &Program, block: u64, replicate_text: bool) -> PageTable {
        let mut b = PageTableBuilder::new(4096, 4);
        for (s, e, seg) in prog.regions() {
            b.add_region(s, e, seg);
        }
        if replicate_text {
            b.replicate_segment(Segment::Text);
        }
        b.distribute_round_robin(block);
        b.build()
    }

    #[test]
    fn sequential_sweep_produces_block_length_runs() {
        let prog = strided_prog();
        let pt = table_for(&prog, 1, true);
        let r = measure_datathreads(&prog, &pt, &DatathreadConfig::default());
        // A 4 KiB page holds 64 sequential misses (64-byte stride,
        // 64 lines... the sweep misses every access: 4096/64 = 64 per
        // page); runs should approximate that.
        assert!(r.data > 30.0 && r.data < 130.0, "data run length {}", r.data);
        assert!(r.misses > 4000);
    }

    #[test]
    fn bigger_blocks_make_longer_threads() {
        let prog = strided_prog();
        let pt1 = table_for(&prog, 1, true);
        let pt4 = table_for(&prog, 4, true);
        let r1 = measure_datathreads(&prog, &pt1, &DatathreadConfig::default());
        let r4 = measure_datathreads(&prog, &pt4, &DatathreadConfig::default());
        assert!(
            r4.data > r1.data * 2.0,
            "block 4 ({}) should far exceed block 1 ({})",
            r4.data,
            r1.data
        );
    }

    #[test]
    fn replicated_text_extends_all_runs() {
        let prog = strided_prog();
        let with = table_for(&prog, 1, true);
        let without = table_for(&prog, 1, false);
        let r_with = measure_datathreads(&prog, &with, &DatathreadConfig::default());
        let r_without = measure_datathreads(&prog, &without, &DatathreadConfig::default());
        // Replicated-page runs exist only when something is replicated.
        assert!(r_with.replicated > 0.0);
        assert_eq!(r_without.replicated, 0.0);
        // Both configurations observe the same miss stream.
        assert_eq!(r_with.misses, r_without.misses);
    }

    #[test]
    fn block_size_picker_respects_segments() {
        let prog = strided_prog();
        let block = pick_block_pages(&prog, 4096, 4);
        assert!(block >= 1);
        assert!(block.is_power_of_two());
        // arr is 64 pages; text is tiny -> cap comes from text.
        let text_pages = 1u64; // the loop fits in one page
        assert!(block <= (text_pages.max(1)));
    }

    #[test]
    fn run_counter_follows_paper_rule() {
        let mut c = RunCounter::default();
        // repl refs before any communicated ref are not counted.
        c.observe(None);
        c.observe(Some(0));
        c.observe(None); // extends
        c.observe(Some(0)); // extends
        c.observe(Some(1)); // breaks
        let m = c.finish();
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum(), 3.0 + 1.0);
    }
}
