//! Result communication (§5.1): an upper-bound traffic model.
//!
//! "Because each processor executes the instructions in a different
//! order, it is possible for a processor to temporarily deviate from
//! the ESP model and execute a private computation, broadcasting only
//! the result — not the operands — to the other processors."
//!
//! The paper describes the technique but does not evaluate it; this
//! module adds the missing quantitative bound. Every maximal run of
//! consecutive communicated misses owned by one node (a datathread) is
//! a candidate private computation: if the run's operands feed a
//! result rather than being needed verbatim elsewhere, its `L` operand
//! broadcasts collapse to one result broadcast. Collapsing *every* run
//! is therefore an upper bound on what result communication can remove
//! from ESP traffic.

use crate::stream::{for_each_ref, RefKind};
use ds_asm::Program;
use ds_mem::{AccessKind, Cache, CacheConfig, PageClass, PageTable};

/// Upper-bound result-communication savings for one benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResultCommReport {
    /// Communicated misses (= ESP operand broadcasts).
    pub operand_broadcasts: u64,
    /// Maximal same-owner runs (= result broadcasts in the limit).
    pub result_broadcasts: u64,
    /// Runs of length 1, which gain nothing.
    pub singleton_runs: u64,
    /// Instructions executed.
    pub instructions: u64,
}

impl ResultCommReport {
    /// Fraction of ESP broadcasts removable in the limit
    /// (`1 - results/operands`).
    pub fn max_savings(&self) -> f64 {
        if self.operand_broadcasts == 0 {
            0.0
        } else {
            1.0 - self.result_broadcasts as f64 / self.operand_broadcasts as f64
        }
    }

    /// Mean private-computation length (operands per result).
    pub fn mean_run(&self) -> f64 {
        if self.result_broadcasts == 0 {
            0.0
        } else {
            self.operand_broadcasts as f64 / self.result_broadcasts as f64
        }
    }
}

/// Measurement configuration.
#[derive(Debug, Clone)]
pub struct ResultCommConfig {
    /// D-cache geometry filtering the reference stream to misses.
    pub cache: CacheConfig,
    /// Cap on executed instructions.
    pub max_insts: u64,
}

impl Default for ResultCommConfig {
    fn default() -> Self {
        ResultCommConfig { cache: CacheConfig::spec95_trace(), max_insts: u64::MAX }
    }
}

/// Runs the upper-bound measurement over `program`'s data-miss stream.
pub fn measure_result_comm(
    program: &Program,
    page_table: &PageTable,
    config: &ResultCommConfig,
) -> ResultCommReport {
    let mut dcache = Cache::new(config.cache);
    let mut report = ResultCommReport::default();
    let mut current_owner: Option<usize> = None;
    let mut current_len = 0u64;
    let close_run = |len: u64, report: &mut ResultCommReport| {
        if len == 0 {
            return;
        }
        report.result_broadcasts += 1;
        if len == 1 {
            report.singleton_runs += 1;
        }
    };
    report.instructions = for_each_ref(program, config.max_insts, |e| {
        let kind = match e.kind {
            RefKind::InstFetch => return, // text is replicated; no broadcasts
            RefKind::Load => AccessKind::Read,
            RefKind::Store => AccessKind::Write,
        };
        if dcache.access(e.addr, kind).is_hit() {
            return;
        }
        let PageClass::Owned(owner) = page_table.classify(e.addr) else {
            return; // replicated: never broadcast
        };
        report.operand_broadcasts += 1;
        if current_owner == Some(owner) {
            current_len += 1;
        } else {
            close_run(current_len, &mut report);
            current_owner = Some(owner);
            current_len = 1;
        }
    });
    close_run(current_len, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_asm::assemble;
    use ds_mem::PageTableBuilder;

    fn prog() -> Program {
        assemble(
            r#"
            .data
            arr: .space 262144
            .text
            main: li t0, 2048
                  la t1, arr
            loop: ld t2, 0(t1)
                  addi t1, t1, 64
                  addi t0, t0, -1
                  bnez t0, loop
                  halt
            "#,
        )
        .unwrap()
    }

    fn table(nodes: usize, block: u64) -> (Program, PageTable) {
        let p = prog();
        let mut b = PageTableBuilder::new(4096, nodes);
        for (s, e, seg) in p.regions() {
            b.add_region(s, e, seg);
        }
        b.replicate_segment(ds_mem::Segment::Text);
        b.distribute_round_robin(block);
        let pt = b.build();
        (p, pt)
    }

    #[test]
    fn sequential_sweep_collapses_well() {
        let (p, pt) = table(4, 1);
        let r = measure_result_comm(&p, &pt, &ResultCommConfig::default());
        assert!(r.operand_broadcasts > 1000);
        // 64 misses per page per run -> huge savings potential.
        assert!(r.max_savings() > 0.9, "savings {:.2}", r.max_savings());
        assert!(r.mean_run() > 10.0);
    }

    #[test]
    fn single_node_is_one_giant_run() {
        let (p, pt) = table(1, 1);
        let r = measure_result_comm(&p, &pt, &ResultCommConfig::default());
        assert_eq!(r.result_broadcasts, 1);
        assert_eq!(r.singleton_runs, 0);
    }

    #[test]
    fn savings_bounded_by_one() {
        let (p, pt) = table(4, 4);
        let r = measure_result_comm(&p, &pt, &ResultCommConfig::default());
        assert!((0.0..=1.0).contains(&r.max_savings()));
        assert!(r.result_broadcasts <= r.operand_broadcasts);
    }

    #[test]
    fn empty_stream_reports_zero() {
        let p = assemble(".text\nmain: halt\n").unwrap();
        let mut b = PageTableBuilder::new(4096, 2);
        for (s, e, seg) in p.regions() {
            b.add_region(s, e, seg);
        }
        b.distribute_round_robin(1);
        let pt = b.build();
        let r = measure_result_comm(&p, &pt, &ResultCommConfig::default());
        assert_eq!(r.operand_broadcasts, 0);
        assert_eq!(r.max_savings(), 0.0);
        assert_eq!(r.mean_run(), 0.0);
    }
}
