//! Table 1: off-chip traffic reduction from ESP.
//!
//! The paper simulates a 64 KiB, two-way set-associative,
//! write-allocate, write-back L1 data cache, measures the aggregate
//! miss traffic, and computes the fraction that remains once
//! write-backs and requests are eliminated (§3.1). Two measures:
//! fraction of **bytes** eliminated and fraction of **transactions**
//! eliminated (a request/response pair counts as two transactions, so
//! the transaction reduction is always at least 50%).

use crate::stream::{for_each_ref, RefKind};
use ds_asm::Program;
use ds_mem::{AccessKind, Cache, CacheConfig, CacheOutcome};

/// Trace-experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// The simulated data cache (the paper's §3.1 geometry by default).
    pub cache: CacheConfig,
    /// Bytes of address/command header per message.
    pub header_bytes: u64,
    /// Cap on executed instructions.
    pub max_insts: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            cache: CacheConfig::spec95_trace(),
            header_bytes: 8,
            max_insts: u64::MAX,
        }
    }
}

/// Traffic accounting for one benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Read/write misses that fetched a line (requests + responses in
    /// the traditional protocol; broadcasts under ESP).
    pub fills: u64,
    /// Dirty-line write-backs (traditional only; ESP drops them).
    pub writebacks: u64,
    /// Line size used.
    pub line_bytes: u64,
    /// Header size used.
    pub header_bytes: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Loads + stores observed.
    pub data_refs: u64,
}

impl TrafficReport {
    /// Total traditional off-chip bytes: request + response per fill,
    /// plus a full message per write-back.
    pub fn traditional_bytes(&self) -> u64 {
        let fill = self.header_bytes + (self.header_bytes + self.line_bytes);
        let wb = self.header_bytes + self.line_bytes;
        self.fills * fill + self.writebacks * wb
    }

    /// Total ESP off-chip bytes: one broadcast per fill, nothing else.
    pub fn esp_bytes(&self) -> u64 {
        self.fills * (self.header_bytes + self.line_bytes)
    }

    /// Traditional transaction count (request/response pairs count as
    /// two).
    pub fn traditional_transactions(&self) -> u64 {
        self.fills * 2 + self.writebacks
    }

    /// ESP transaction count.
    pub fn esp_transactions(&self) -> u64 {
        self.fills
    }

    /// Fraction of bytes ESP eliminates (Table 1 row 1).
    pub fn bytes_eliminated(&self) -> f64 {
        frac_removed(self.esp_bytes(), self.traditional_bytes())
    }

    /// Fraction of transactions ESP eliminates (Table 1 row 2).
    pub fn transactions_eliminated(&self) -> f64 {
        frac_removed(self.esp_transactions(), self.traditional_transactions())
    }
}

fn frac_removed(remaining: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        1.0 - remaining as f64 / total as f64
    }
}

/// Runs the Table 1 measurement for one program.
pub fn measure_traffic(program: &Program, config: &TrafficConfig) -> TrafficReport {
    let mut cache = Cache::new(config.cache);
    let mut report = TrafficReport {
        line_bytes: config.cache.line_bytes,
        header_bytes: config.header_bytes,
        ..Default::default()
    };
    report.instructions = for_each_ref(program, config.max_insts, |e| {
        let kind = match e.kind {
            RefKind::InstFetch => return, // text traffic excluded (§3.1 uses a data cache)
            RefKind::Load => AccessKind::Read,
            RefKind::Store => AccessKind::Write,
        };
        report.data_refs += 1;
        match cache.access(e.addr, kind) {
            CacheOutcome::Hit => {}
            CacheOutcome::Miss { allocated, victim } => {
                if allocated {
                    report.fills += 1;
                }
                if let Some(v) = victim {
                    if v.dirty {
                        report.writebacks += 1;
                    }
                }
            }
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_asm::assemble;

    #[test]
    fn read_only_sweep_has_no_writebacks() {
        let prog = assemble(
            r#"
            .data
            arr: .space 262144
            .text
            main: li t0, 4096
                  la t1, arr
            loop: ld t2, 0(t1)
                  addi t1, t1, 64
                  addi t0, t0, -1
                  bnez t0, loop
                  halt
            "#,
        )
        .unwrap();
        let r = measure_traffic(&prog, &TrafficConfig::default());
        assert_eq!(r.writebacks, 0);
        assert!(r.fills >= 4096, "each 64-byte stride misses a 32B line");
        // Clean misses: eliminated bytes = request / (request + response).
        let expect = 8.0 / 48.0;
        assert!((r.bytes_eliminated() - expect).abs() < 0.01);
        assert!((r.transactions_eliminated() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn write_sweep_adds_writeback_savings() {
        let prog = assemble(
            r#"
            .data
            arr: .space 262144
            .text
            main: li t0, 4096
                  la t1, arr
            loop: sd t0, 0(t1)
                  addi t1, t1, 64
                  addi t0, t0, -1
                  bnez t0, loop
                  halt
            "#,
        )
        .unwrap();
        let r = measure_traffic(&prog, &TrafficConfig::default());
        assert!(r.writebacks > 3000, "dirty lines must be written back");
        assert!(r.bytes_eliminated() > 0.4, "writes double the savings");
        assert!(r.transactions_eliminated() > 0.5);
    }

    #[test]
    fn cache_hits_produce_no_traffic() {
        let prog = assemble(
            r#"
            .data
            x: .word 0
            .text
            main: li t0, 10000
                  la t1, x
            loop: ld t2, 0(t1)
                  sd t2, 0(t1)
                  addi t0, t0, -1
                  bnez t0, loop
                  halt
            "#,
        )
        .unwrap();
        let r = measure_traffic(&prog, &TrafficConfig::default());
        assert_eq!(r.fills, 1, "one compulsory miss");
        assert_eq!(r.writebacks, 0, "line never evicted");
        assert_eq!(r.data_refs, 20000);
    }

    #[test]
    fn transaction_elimination_is_at_least_half() {
        // Structural property from the paper: "because no requests are
        // sent, the transaction reduction will always be at least 50%".
        let r = TrafficReport {
            fills: 100,
            writebacks: 33,
            line_bytes: 32,
            header_bytes: 8,
            instructions: 1,
            data_refs: 1,
        };
        assert!(r.transactions_eliminated() >= 0.5);
    }
}
