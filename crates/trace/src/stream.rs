//! The functional reference stream.

use ds_asm::Program;
use ds_cpu::FuncCore;
use ds_mem::MemImage;

/// What kind of memory reference an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefKind {
    /// Instruction fetch (one per executed instruction).
    InstFetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

/// One memory reference of the architected execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefEvent {
    /// Kind of reference.
    pub kind: RefKind,
    /// Byte address referenced.
    pub addr: u64,
    /// Access size in bytes.
    pub bytes: u64,
    /// Index of the instruction that generated it.
    pub icount: u64,
}

/// Runs `program` functionally for at most `max_insts` instructions,
/// invoking `f` for every memory reference in order: the instruction
/// fetch first, then the data access (if any).
///
/// Returns the number of instructions executed.
///
/// # Panics
///
/// Panics if the program contains undecodable instructions (workload
/// programs are trusted).
pub fn for_each_ref(
    program: &Program,
    max_insts: u64,
    mut f: impl FnMut(RefEvent),
) -> u64 {
    let mut mem = MemImage::new();
    program.load(&mut mem);
    let mut cpu = FuncCore::with_stack(program.entry, program.stack_top);
    let mut executed = 0;
    while executed < max_insts {
        let Some(rec) = cpu.step(&mut mem).expect("workload executes cleanly") else {
            break;
        };
        executed += 1;
        f(RefEvent {
            kind: RefKind::InstFetch,
            addr: rec.pc,
            bytes: ds_isa::INST_BYTES,
            icount: rec.icount,
        });
        if rec.is_load() {
            f(RefEvent { kind: RefKind::Load, addr: rec.mem_addr, bytes: rec.mem_bytes, icount: rec.icount });
        } else if rec.is_store() {
            f(RefEvent { kind: RefKind::Store, addr: rec.mem_addr, bytes: rec.mem_bytes, icount: rec.icount });
        }
    }
    executed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_asm::assemble;

    fn prog() -> Program {
        assemble(
            r#"
            .data
            x: .word 7
            .text
            main: la t0, x
                  ld t1, 0(t0)
                  sd t1, 8(t0)
                  halt
            "#,
        )
        .unwrap()
    }

    #[test]
    fn every_instruction_fetch_is_reported() {
        let p = prog();
        let mut fetches = 0;
        let n = for_each_ref(&p, u64::MAX, |e| {
            if e.kind == RefKind::InstFetch {
                fetches += 1;
            }
        });
        assert_eq!(fetches, n);
        assert_eq!(n, 5, "la(2) + ld + sd + halt");
    }

    #[test]
    fn data_refs_follow_their_fetch() {
        let p = prog();
        let mut events = Vec::new();
        for_each_ref(&p, u64::MAX, |e| events.push(e));
        let load = events.iter().find(|e| e.kind == RefKind::Load).unwrap();
        let store = events.iter().find(|e| e.kind == RefKind::Store).unwrap();
        assert_eq!(load.addr, p.symbol("x").unwrap());
        assert_eq!(store.addr, p.symbol("x").unwrap() + 8);
        assert_eq!(load.bytes, 8);
    }

    #[test]
    fn max_insts_truncates() {
        let p = prog();
        let n = for_each_ref(&p, 2, |_| {});
        assert_eq!(n, 2);
    }
}
