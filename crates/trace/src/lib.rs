//! Trace-driven experiments: the paper's §3 methodology.
//!
//! Before the timing simulations, the paper measures two things with
//! functional (trace) cache simulation:
//!
//! * **Table 1** — how much off-chip traffic ESP eliminates, by running
//!   the benchmarks through a 64 KiB two-way write-allocate write-back
//!   L1 and removing request and write traffic from the miss stream
//!   ([`traffic`]);
//! * **Table 2** — approximate datathread lengths on a four-node
//!   machine, after replicating the most heavily accessed pages and
//!   distributing the rest round-robin ([`datathread`], with page
//!   access profiles from [`profile`]).
//!
//! [`stream`] drives a functional core and surfaces every memory
//! reference (instruction fetches, loads, stores) to the analyses.

pub mod datathread;
pub mod profile;
pub mod result_comm;
pub mod stream;
pub mod traffic;

pub use datathread::{measure_datathreads, DatathreadConfig, DatathreadReport};
pub use profile::{select_hot_pages, select_top_pages, PageProfile};
pub use stream::{for_each_ref, RefEvent, RefKind};
pub use result_comm::{measure_result_comm, ResultCommConfig, ResultCommReport};
pub use traffic::{measure_traffic, TrafficConfig, TrafficReport};
