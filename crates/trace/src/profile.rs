//! Page-access profiling and static-replication selection (§3.2).
//!
//! The paper selects pages to replicate "by running the benchmark,
//! saving the number of accesses to each page, sorting the pages by
//! number of accesses, and choosing the most heavily accessed pages".

use crate::stream::{for_each_ref, RefEvent};
use ds_asm::Program;
use std::collections::BTreeMap;

/// Access counts per virtual page.
#[derive(Debug, Clone, Default)]
pub struct PageProfile {
    /// Page size the profile was taken at.
    pub page_bytes: u64,
    /// vpn -> reference count. Ordered so iteration (and everything
    /// derived from it) is deterministic without re-sorting.
    pub counts: BTreeMap<u64, u64>,
}

impl PageProfile {
    /// Profiles every reference (instruction and data) of `program`.
    pub fn collect(program: &Program, page_bytes: u64, max_insts: u64) -> Self {
        let mut profile = PageProfile { page_bytes, counts: BTreeMap::new() };
        for_each_ref(program, max_insts, |e: RefEvent| {
            *profile.counts.entry(e.addr / page_bytes).or_insert(0) += 1;
        });
        profile
    }

    /// Total references profiled.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Pages sorted by descending access count (ties by vpn for
    /// determinism).
    pub fn sorted_pages(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Chooses up to `max_pages` pages that are *hot relative to the rest
/// of the program*: accessed at least `factor` times the median page's
/// count. Uniformly swept arrays (every page ≈ median) are excluded —
/// replicating them buys nothing, which is why the paper's
/// uniform-access FP codes keep short data datathreads while li (small,
/// reused data) gets most of its set replicated.
pub fn select_hot_pages(profile: &PageProfile, max_pages: usize, factor: f64) -> Vec<u64> {
    let ranked = profile.sorted_pages();
    if ranked.is_empty() {
        return Vec::new();
    }
    // Baseline "background" page: the lower quartile by access count,
    // so a working set that is itself more than half the pages (li's
    // cell pool) still registers as hot against its cold remainder.
    let baseline = ranked[3 * ranked.len() / 4].1 as f64;
    let threshold = (baseline * factor).max(1.0);
    ranked
        .into_iter()
        .take(max_pages)
        .take_while(|&(_, count)| count as f64 >= threshold)
        .map(|(vpn, _)| vpn)
        .collect()
}

/// Chooses up to `max_pages` of the most heavily accessed pages, but
/// never more than `coverage` of the total references — the paper keeps
/// replication partial so communicated traffic still exists.
pub fn select_top_pages(profile: &PageProfile, max_pages: usize, coverage: f64) -> Vec<u64> {
    let total = profile.total() as f64;
    let mut selected = Vec::new();
    let mut covered = 0u64;
    for (vpn, count) in profile.sorted_pages() {
        if selected.len() >= max_pages {
            break;
        }
        if total > 0.0 && covered as f64 / total >= coverage {
            break;
        }
        selected.push(vpn);
        covered += count;
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_asm::assemble;

    fn prog() -> Program {
        // Hammers page of `hot`, touches `cold` once per element.
        assemble(
            r#"
            .data
            hot:  .word 0
            .text
            main: li t0, 1000
                  la t1, hot
                  li t3, 0x500000
            loop: ld t2, 0(t1)
                  ld t4, 0(t3)
                  addi t3, t3, 4096
                  addi t0, t0, -1
                  bnez t0, loop
                  halt
            "#,
        )
        .unwrap()
    }

    #[test]
    fn hot_page_ranks_first_among_data() {
        let p = prog();
        let profile = PageProfile::collect(&p, 4096, u64::MAX);
        let hot_vpn = p.symbol("hot").unwrap() / 4096;
        let text_vpn = p.entry / 4096;
        let ranked = profile.sorted_pages();
        // Text page and hot data page dominate.
        let top2: Vec<u64> = ranked.iter().take(2).map(|&(v, _)| v).collect();
        assert!(top2.contains(&hot_vpn));
        assert!(top2.contains(&text_vpn));
    }

    #[test]
    fn selection_respects_page_budget() {
        let p = prog();
        let profile = PageProfile::collect(&p, 4096, u64::MAX);
        let sel = select_top_pages(&profile, 3, 1.0);
        assert_eq!(sel.len(), 3);
        let sel1 = select_top_pages(&profile, 1, 1.0);
        assert_eq!(sel1.len(), 1);
    }

    #[test]
    fn selection_respects_coverage_cap() {
        let p = prog();
        let profile = PageProfile::collect(&p, 4096, u64::MAX);
        // Nearly all references hit two pages; 50% coverage stops early.
        let sel = select_top_pages(&profile, 100, 0.5);
        assert!(sel.len() <= 2, "coverage cap ignored: {} pages", sel.len());
    }

    #[test]
    fn totals_match_reference_count() {
        let p = prog();
        let profile = PageProfile::collect(&p, 4096, 100);
        // 100 instructions, each 1 fetch; loads add more.
        assert!(profile.total() >= 100);
    }
}
