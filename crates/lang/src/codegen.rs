//! DS-1 code generation: a single-pass, type-checked stack machine.
//!
//! Every expression leaves its 64-bit value (raw bits for both `int`
//! and `float`) on the machine stack; operators pop their operands into
//! scratch registers (`t1`/`t2` or `f1`/`f2`) and push the result. The
//! frame pointer lives in `s7`; locals (including parameters) occupy
//! slots below it. Function results return in `v0` as raw bits.
//!
//! Naive by design: the output is correct, deterministic, and
//! load/store-rich — which makes compiled DSC a memory-intensive
//! workload in its own right.

use crate::ast::*;
use crate::error::LangError;
use crate::Ast;
use ds_asm::{Label, ProgBuilder, Program};
use ds_isa::{reg, Inst, Opcode};
use std::collections::HashMap;

/// Generates a loadable program from a checked AST.
///
/// # Errors
///
/// Reports semantic errors (unknown names, type mismatches, bad arity,
/// missing `main`).
pub fn generate(ast: &Ast) -> Result<Program, LangError> {
    let mut cg = Codegen::new();
    cg.declare_items(ast)?;
    cg.emit_entry()?;
    for item in &ast.items {
        if let Item::Function(f) = item {
            cg.emit_function(f)?;
        }
    }
    cg.b.finish().map_err(|e| LangError::new(0, e.message))
}

#[derive(Debug, Clone, Copy)]
struct GlobalInfo {
    ty: Type,
    addr: u64,
    array_len: Option<usize>,
}

#[derive(Debug, Clone)]
struct FuncInfo {
    ret: Type,
    params: Vec<Type>,
    label: Label,
}

struct Codegen {
    b: ProgBuilder,
    globals: HashMap<String, GlobalInfo>,
    funcs: HashMap<String, FuncInfo>,
    /// Lexical scopes: name -> (type, frame slot).
    scopes: Vec<HashMap<String, (Type, usize)>>,
    /// Slots allocated so far in the current function.
    next_slot: usize,
    /// Current function's return type.
    ret_ty: Type,
}

const FP: u8 = reg::S7;

impl Codegen {
    fn new() -> Self {
        Codegen {
            b: ProgBuilder::new(),
            globals: HashMap::new(),
            funcs: HashMap::new(),
            scopes: Vec::new(),
            next_slot: 0,
            ret_ty: Type::Int,
        }
    }

    // ---- declarations ------------------------------------------------

    fn declare_items(&mut self, ast: &Ast) -> Result<(), LangError> {
        for item in &ast.items {
            match item {
                Item::Global(g) => {
                    let words = g.array.unwrap_or(1);
                    let dref = match (&g.init, g.ty) {
                        (Some(e), ty) => {
                            let bits = const_bits(e, ty, g.line)?;
                            self.b.dwords(&[bits])
                        }
                        (None, _) => self.b.space(words as u64 * 8),
                    };
                    let addr = self.b.addr_of(dref);
                    self.b.symbol(g.name.clone(), addr);
                    let prev = self.globals.insert(
                        g.name.clone(),
                        GlobalInfo { ty: g.ty, addr, array_len: g.array },
                    );
                    if prev.is_some() {
                        return Err(LangError::new(g.line, format!("duplicate global `{}`", g.name)));
                    }
                }
                Item::Function(f) => {
                    let label = self.b.label();
                    let prev = self.funcs.insert(
                        f.name.clone(),
                        FuncInfo {
                            ret: f.ret,
                            params: f.params.iter().map(|(t, _)| *t).collect(),
                            label,
                        },
                    );
                    if prev.is_some() {
                        return Err(LangError::new(f.line, format!("duplicate function `{}`", f.name)));
                    }
                }
            }
        }
        if !self.funcs.contains_key("main") {
            return Err(LangError::new(0, "no `main` function defined"));
        }
        Ok(())
    }

    /// The program entry: call `main`, store its result, halt.
    fn emit_entry(&mut self) -> Result<(), LangError> {
        let result = self.b.dwords(&[0]);
        let result_addr = self.b.addr_of(result);
        self.b.symbol("result", result_addr);
        let main = self.funcs["main"].label;
        self.b.call(main);
        self.b.li(reg::K0, result_addr as i64);
        self.b.inst(Inst::store(Opcode::Sd, reg::V0, reg::K0, 0));
        self.b.halt();
        Ok(())
    }

    // ---- functions -----------------------------------------------------

    fn emit_function(&mut self, f: &Function) -> Result<(), LangError> {
        let info = self.funcs[&f.name].clone();
        self.b.bind(info.label);
        self.ret_ty = f.ret;
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        self.next_slot = 0;
        // Frame size: params + every local declared anywhere in the body.
        let frame_slots = f.params.len() + count_locals(&f.body);
        let frame_bytes = (frame_slots as i32 + 2) * 8; // + ra + old fp
        // Prologue.
        self.b.inst(Inst::rri(Opcode::Addi, reg::SP, reg::SP, -frame_bytes));
        self.b.inst(Inst::store(Opcode::Sd, reg::RA, reg::SP, frame_bytes - 8));
        self.b.inst(Inst::store(Opcode::Sd, FP, reg::SP, frame_bytes - 16));
        self.b.inst(Inst::rri(Opcode::Addi, FP, reg::SP, frame_bytes - 16));
        // Bind parameters to the first slots and spill the arg registers.
        for (i, (ty, name)) in f.params.iter().enumerate() {
            let slot = self.alloc_local(name.clone(), *ty, f.line)?;
            self.b.inst(Inst::store(Opcode::Sd, reg::A0 + i as u8, FP, slot_off(slot)));
        }
        self.emit_block(&f.body)?;
        // Implicit `return 0` fall-through.
        self.b.li(reg::V0, 0);
        self.emit_epilogue(frame_bytes);
        Ok(())
    }

    fn emit_epilogue(&mut self, _frame_bytes: i32) {
        // FP points at the old-FP save slot; ra sits just above it.
        self.b.inst(Inst::load(Opcode::Ld, reg::RA, FP, 8));
        self.b.inst(Inst::rri(Opcode::Addi, reg::SP, FP, 16));
        self.b.inst(Inst::load(Opcode::Ld, FP, FP, 0));
        self.b.ret();
    }

    fn alloc_local(&mut self, name: String, ty: Type, line: usize) -> Result<usize, LangError> {
        let scope = self.scopes.last_mut().expect("scope stack non-empty");
        if scope.contains_key(&name) {
            return Err(LangError::new(line, format!("`{name}` already declared in this scope")));
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        scope.insert(name, (ty, slot));
        Ok(slot)
    }

    fn lookup_local(&self, name: &str) -> Option<(Type, usize)> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    // ---- statements ----------------------------------------------------

    fn emit_block(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.emit_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn emit_stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Local(ty, name, init, line) => {
                let slot = self.alloc_local(name.clone(), *ty, *line)?;
                if let Some(e) = init {
                    let ety = self.emit_expr(e)?;
                    expect_type(*ty, ety, *line)?;
                    self.pop_int(reg::T0);
                    self.b.inst(Inst::store(Opcode::Sd, reg::T0, FP, slot_off(slot)));
                } else {
                    // Zero-initialise (deterministic semantics).
                    self.b.inst(Inst::store(Opcode::Sd, reg::ZERO, FP, slot_off(slot)));
                }
                Ok(())
            }
            Stmt::Assign(name, e, line) => {
                let ety = self.emit_expr(e)?;
                if let Some((ty, slot)) = self.lookup_local(name) {
                    expect_type(ty, ety, *line)?;
                    self.pop_int(reg::T0);
                    self.b.inst(Inst::store(Opcode::Sd, reg::T0, FP, slot_off(slot)));
                    return Ok(());
                }
                if let Some(g) = self.globals.get(name).copied() {
                    if g.array_len.is_some() {
                        return Err(LangError::new(*line, format!("`{name}` is an array")));
                    }
                    expect_type(g.ty, ety, *line)?;
                    self.pop_int(reg::T0);
                    self.b.li(reg::K0, g.addr as i64);
                    self.b.inst(Inst::store(Opcode::Sd, reg::T0, reg::K0, 0));
                    return Ok(());
                }
                Err(LangError::new(*line, format!("assignment to undefined variable `{name}`")))
            }
            Stmt::AssignIndex(name, idx, e, line) => {
                let g = self
                    .globals
                    .get(name)
                    .copied()
                    .ok_or_else(|| LangError::new(*line, format!("undefined array `{name}`")))?;
                if g.array_len.is_none() {
                    return Err(LangError::new(*line, format!("`{name}` is not an array")));
                }
                let ity = self.emit_expr(idx)?;
                expect_type(Type::Int, ity, *line)?;
                let ety = self.emit_expr(e)?;
                expect_type(g.ty, ety, *line)?;
                self.pop_int(reg::T0); // value
                self.pop_int(reg::T1); // index
                self.b.inst(Inst::rri(Opcode::Slli, reg::T1, reg::T1, 3));
                self.b.li(reg::K0, g.addr as i64);
                self.b.inst(Inst::rrr(Opcode::Add, reg::K0, reg::K0, reg::T1));
                self.b.inst(Inst::store(Opcode::Sd, reg::T0, reg::K0, 0));
                Ok(())
            }
            Stmt::Expr(e) => {
                self.emit_expr(e)?;
                // Discard the value.
                self.b.inst(Inst::rri(Opcode::Addi, reg::SP, reg::SP, 8));
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                let cty = self.emit_expr(cond)?;
                expect_type(Type::Int, cty, cond.line())?;
                self.pop_int(reg::T0);
                let else_l = self.b.label();
                let end_l = self.b.label();
                self.b.beqz(reg::T0, else_l);
                self.emit_block(then)?;
                self.b.j(end_l);
                self.b.bind(else_l);
                self.emit_block(els)?;
                self.b.bind(end_l);
                Ok(())
            }
            Stmt::While(cond, body) => {
                let top = self.b.here();
                let exit = self.b.label();
                let cty = self.emit_expr(cond)?;
                expect_type(Type::Int, cty, cond.line())?;
                self.pop_int(reg::T0);
                self.b.beqz(reg::T0, exit);
                self.emit_block(body)?;
                self.b.j(top);
                self.b.bind(exit);
                Ok(())
            }
            Stmt::Return(e, line) => {
                match e {
                    Some(e) => {
                        let ety = self.emit_expr(e)?;
                        expect_type(self.ret_ty, ety, *line)?;
                        self.pop_int(reg::V0);
                    }
                    None => self.b.li(reg::V0, 0).drop_ref(),
                }
                self.emit_epilogue(0);
                Ok(())
            }
        }
    }

    // ---- expressions -----------------------------------------------

    /// Emits code leaving the value on the machine stack; returns its
    /// type.
    fn emit_expr(&mut self, e: &Expr) -> Result<Type, LangError> {
        match e {
            Expr::Int(v) => {
                self.b.li(reg::T0, *v);
                self.push_int(reg::T0);
                Ok(Type::Int)
            }
            Expr::Float(v) => {
                self.b.li(reg::T0, v.to_bits() as i64);
                self.push_int(reg::T0);
                Ok(Type::Float)
            }
            Expr::Var(name, line) => {
                if let Some((ty, slot)) = self.lookup_local(name) {
                    self.b.inst(Inst::load(Opcode::Ld, reg::T0, FP, slot_off(slot)));
                    self.push_int(reg::T0);
                    return Ok(ty);
                }
                if let Some(g) = self.globals.get(name).copied() {
                    if g.array_len.is_some() {
                        return Err(LangError::new(*line, format!("`{name}` is an array")));
                    }
                    self.b.li(reg::K0, g.addr as i64);
                    self.b.inst(Inst::load(Opcode::Ld, reg::T0, reg::K0, 0));
                    self.push_int(reg::T0);
                    return Ok(g.ty);
                }
                Err(LangError::new(*line, format!("undefined variable `{name}`")))
            }
            Expr::Index(name, idx, line) => {
                let g = self
                    .globals
                    .get(name)
                    .copied()
                    .ok_or_else(|| LangError::new(*line, format!("undefined array `{name}`")))?;
                if g.array_len.is_none() {
                    return Err(LangError::new(*line, format!("`{name}` is not an array")));
                }
                let ity = self.emit_expr(idx)?;
                expect_type(Type::Int, ity, *line)?;
                self.pop_int(reg::T0);
                self.b.inst(Inst::rri(Opcode::Slli, reg::T0, reg::T0, 3));
                self.b.li(reg::K0, g.addr as i64);
                self.b.inst(Inst::rrr(Opcode::Add, reg::K0, reg::K0, reg::T0));
                self.b.inst(Inst::load(Opcode::Ld, reg::T0, reg::K0, 0));
                self.push_int(reg::T0);
                Ok(g.ty)
            }
            Expr::Call(name, args, line) => {
                let info = self
                    .funcs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| LangError::new(*line, format!("undefined function `{name}`")))?;
                if args.len() != info.params.len() {
                    return Err(LangError::new(
                        *line,
                        format!("`{name}` takes {} arguments, got {}", info.params.len(), args.len()),
                    ));
                }
                for (arg, want) in args.iter().zip(&info.params) {
                    let got = self.emit_expr(arg)?;
                    expect_type(*want, got, arg.line().max(*line))?;
                }
                // Pop arguments into a3..a0 (right to left).
                for i in (0..args.len()).rev() {
                    self.pop_int(reg::A0 + i as u8);
                }
                self.b.call(info.label);
                self.push_int(reg::V0);
                Ok(info.ret)
            }
            Expr::Cast(ty, inner, _line) => {
                let from = self.emit_expr(inner)?;
                match (from, *ty) {
                    (Type::Int, Type::Int) | (Type::Float, Type::Float) => {}
                    (Type::Int, Type::Float) => {
                        self.pop_int(reg::T0);
                        self.b.inst(Inst::rri(Opcode::Fcvtdw, 1, reg::T0, 0));
                        self.push_float(1);
                    }
                    (Type::Float, Type::Int) => {
                        self.pop_float(1);
                        self.b.inst(Inst::rri(Opcode::Fcvtwd, reg::T0, 1, 0));
                        self.push_int(reg::T0);
                    }
                }
                Ok(*ty)
            }
            Expr::Unary(op, inner, line) => {
                let ty = self.emit_expr(inner)?;
                match (op, ty) {
                    (UnOp::Neg, Type::Int) => {
                        self.pop_int(reg::T0);
                        self.b.inst(Inst::rrr(Opcode::Sub, reg::T0, reg::ZERO, reg::T0));
                        self.push_int(reg::T0);
                    }
                    (UnOp::Neg, Type::Float) => {
                        self.pop_float(1);
                        self.b.inst(Inst::rrr(Opcode::Fneg, 1, 1, 0));
                        self.push_float(1);
                    }
                    (UnOp::Not, Type::Int) => {
                        self.pop_int(reg::T0);
                        // !x = (x == 0)
                        self.b.inst(Inst::rrr(Opcode::Sltu, reg::T0, reg::ZERO, reg::T0));
                        self.b.inst(Inst::rri(Opcode::Xori, reg::T0, reg::T0, 1));
                        self.push_int(reg::T0);
                    }
                    (UnOp::BitNot, Type::Int) => {
                        self.pop_int(reg::T0);
                        self.b.inst(Inst::rrr(Opcode::Nor, reg::T0, reg::T0, reg::ZERO));
                        self.push_int(reg::T0);
                    }
                    (UnOp::Not | UnOp::BitNot, Type::Float) => {
                        return Err(LangError::new(*line, "type error: operator requires int"));
                    }
                }
                Ok(if ty == Type::Float && *op == UnOp::Neg { Type::Float } else { Type::Int })
            }
            Expr::Binary(op, lhs, rhs, line) => self.emit_binary(*op, lhs, rhs, *line),
        }
    }

    fn emit_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, line: usize) -> Result<Type, LangError> {
        // Short-circuit logicals first (control flow, not data flow).
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let take_rhs = self.b.label();
            let end = self.b.label();
            let lty = self.emit_expr(lhs)?;
            expect_type(Type::Int, lty, line)?;
            self.pop_int(reg::T0);
            match op {
                BinOp::LogAnd => {
                    self.b.bnez(reg::T0, take_rhs);
                    self.b.li(reg::T0, 0);
                    self.push_int(reg::T0);
                    self.b.j(end);
                }
                BinOp::LogOr => {
                    self.b.beqz(reg::T0, take_rhs);
                    self.b.li(reg::T0, 1);
                    self.push_int(reg::T0);
                    self.b.j(end);
                }
                _ => unreachable!(),
            }
            self.b.bind(take_rhs);
            let rty = self.emit_expr(rhs)?;
            expect_type(Type::Int, rty, line)?;
            self.pop_int(reg::T0);
            self.b.inst(Inst::rrr(Opcode::Sltu, reg::T0, reg::ZERO, reg::T0));
            self.push_int(reg::T0);
            self.b.bind(end);
            return Ok(Type::Int);
        }

        let lty = self.emit_expr(lhs)?;
        let rty = self.emit_expr(rhs)?;
        if lty != rty {
            return Err(LangError::new(
                line,
                format!("type error: `{}` vs `{}` (use int()/float() casts)", lty.name(), rty.name()),
            ));
        }
        if op.int_only() && lty == Type::Float {
            return Err(LangError::new(line, "type error: operator requires int operands"));
        }
        match lty {
            Type::Int => {
                self.pop_int(reg::T2);
                self.pop_int(reg::T1);
                let t = (reg::T0, reg::T1, reg::T2);
                match op {
                    BinOp::Add => self.rrr(Opcode::Add, t),
                    BinOp::Sub => self.rrr(Opcode::Sub, t),
                    BinOp::Mul => self.rrr(Opcode::Mul, t),
                    BinOp::Div => self.rrr(Opcode::Div, t),
                    BinOp::Rem => self.rrr(Opcode::Rem, t),
                    BinOp::Shl => self.rrr(Opcode::Sll, t),
                    BinOp::Shr => self.rrr(Opcode::Sra, t),
                    BinOp::And => self.rrr(Opcode::And, t),
                    BinOp::Or => self.rrr(Opcode::Or, t),
                    BinOp::Xor => self.rrr(Opcode::Xor, t),
                    BinOp::Lt => self.rrr(Opcode::Slt, t),
                    BinOp::Gt => self.rrr(Opcode::Slt, (reg::T0, reg::T2, reg::T1)),
                    BinOp::Ge => {
                        self.rrr(Opcode::Slt, t);
                        self.b.inst(Inst::rri(Opcode::Xori, reg::T0, reg::T0, 1));
                    }
                    BinOp::Le => {
                        self.rrr(Opcode::Slt, (reg::T0, reg::T2, reg::T1));
                        self.b.inst(Inst::rri(Opcode::Xori, reg::T0, reg::T0, 1));
                    }
                    BinOp::Eq => {
                        self.rrr(Opcode::Xor, t);
                        self.b.inst(Inst::rrr(Opcode::Sltu, reg::T0, reg::ZERO, reg::T0));
                        self.b.inst(Inst::rri(Opcode::Xori, reg::T0, reg::T0, 1));
                    }
                    BinOp::Ne => {
                        self.rrr(Opcode::Xor, t);
                        self.b.inst(Inst::rrr(Opcode::Sltu, reg::T0, reg::ZERO, reg::T0));
                    }
                    BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
                }
                self.push_int(reg::T0);
                Ok(Type::Int)
            }
            Type::Float => {
                self.pop_float(2);
                self.pop_float(1);
                match op {
                    BinOp::Add => self.b.inst(Inst::rrr(Opcode::Fadd, 1, 1, 2)).drop_ref(),
                    BinOp::Sub => self.b.inst(Inst::rrr(Opcode::Fsub, 1, 1, 2)).drop_ref(),
                    BinOp::Mul => self.b.inst(Inst::rrr(Opcode::Fmul, 1, 1, 2)).drop_ref(),
                    BinOp::Div => self.b.inst(Inst::rrr(Opcode::Fdiv, 1, 1, 2)).drop_ref(),
                    BinOp::Lt => {
                        self.b.inst(Inst::rrr(Opcode::Flt, reg::T0, 1, 2));
                        self.push_int(reg::T0);
                        return Ok(Type::Int);
                    }
                    BinOp::Le => {
                        self.b.inst(Inst::rrr(Opcode::Fle, reg::T0, 1, 2));
                        self.push_int(reg::T0);
                        return Ok(Type::Int);
                    }
                    BinOp::Gt => {
                        self.b.inst(Inst::rrr(Opcode::Flt, reg::T0, 2, 1));
                        self.push_int(reg::T0);
                        return Ok(Type::Int);
                    }
                    BinOp::Ge => {
                        self.b.inst(Inst::rrr(Opcode::Fle, reg::T0, 2, 1));
                        self.push_int(reg::T0);
                        return Ok(Type::Int);
                    }
                    BinOp::Eq => {
                        self.b.inst(Inst::rrr(Opcode::Feq, reg::T0, 1, 2));
                        self.push_int(reg::T0);
                        return Ok(Type::Int);
                    }
                    BinOp::Ne => {
                        self.b.inst(Inst::rrr(Opcode::Feq, reg::T0, 1, 2));
                        self.b.inst(Inst::rri(Opcode::Xori, reg::T0, reg::T0, 1));
                        self.push_int(reg::T0);
                        return Ok(Type::Int);
                    }
                    _ => unreachable!("int-only ops rejected above"),
                }
                self.push_float(1);
                Ok(Type::Float)
            }
        }
    }

    fn rrr(&mut self, op: Opcode, (d, a, b): (u8, u8, u8)) {
        self.b.inst(Inst::rrr(op, d, a, b));
    }

    // ---- machine-stack helpers --------------------------------------

    fn push_int(&mut self, r: u8) {
        self.b.inst(Inst::rri(Opcode::Addi, reg::SP, reg::SP, -8));
        self.b.inst(Inst::store(Opcode::Sd, r, reg::SP, 0));
    }

    fn pop_int(&mut self, r: u8) {
        self.b.inst(Inst::load(Opcode::Ld, r, reg::SP, 0));
        self.b.inst(Inst::rri(Opcode::Addi, reg::SP, reg::SP, 8));
    }

    fn push_float(&mut self, f: u8) {
        self.b.inst(Inst::rri(Opcode::Addi, reg::SP, reg::SP, -8));
        self.b.inst(Inst::store(Opcode::Fsd, f, reg::SP, 0));
    }

    fn pop_float(&mut self, f: u8) {
        self.b.inst(Inst::load(Opcode::Fld, f, reg::SP, 0));
        self.b.inst(Inst::rri(Opcode::Addi, reg::SP, reg::SP, 8));
    }
}

/// Frame-pointer-relative byte offset of local slot `i`.
fn slot_off(slot: usize) -> i32 {
    -8 * (slot as i32 + 1)
}

/// Counts local declarations anywhere in a body (frame sizing).
fn count_locals(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Local(..) => 1,
            Stmt::If(_, a, b) => count_locals(a) + count_locals(b),
            Stmt::While(_, b) => count_locals(b),
            _ => 0,
        })
        .sum()
}

/// Evaluates a global initialiser (literals, optionally negated).
fn const_bits(e: &Expr, ty: Type, line: usize) -> Result<u64, LangError> {
    match (e, ty) {
        (Expr::Int(v), Type::Int) => Ok(*v as u64),
        (Expr::Float(v), Type::Float) => Ok(v.to_bits()),
        (Expr::Unary(UnOp::Neg, inner, _), _) => {
            let bits = const_bits(inner, ty, line)?;
            Ok(match ty {
                Type::Int => (bits as i64).wrapping_neg() as u64,
                Type::Float => (-f64::from_bits(bits)).to_bits(),
            })
        }
        _ => Err(LangError::new(line, "global initialisers must be literals of the declared type")),
    }
}

fn expect_type(want: Type, got: Type, line: usize) -> Result<(), LangError> {
    if want == got {
        Ok(())
    } else {
        Err(LangError::new(
            line,
            format!("type error: expected `{}`, got `{}` (use int()/float())", want.name(), got.name()),
        ))
    }
}

/// Tiny extension so builder-returning calls can appear in match arms.
trait DropRef {
    fn drop_ref(&mut self) {}
}
impl DropRef for ProgBuilder {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_dsc;

    #[test]
    fn slot_offsets_descend() {
        assert_eq!(slot_off(0), -8);
        assert_eq!(slot_off(3), -32);
    }

    #[test]
    fn count_locals_recurses() {
        use crate::lexer::lex;
        use crate::parser::parse;
        let ast = parse(&lex("int main() { int a; if (1) { int b; } while (0) { int c; int d; } return 0; }").unwrap()).unwrap();
        let Item::Function(f) = &ast.items[0] else { panic!() };
        assert_eq!(count_locals(&f.body), 4);
    }

    #[test]
    fn global_const_initialisers() {
        assert_eq!(run_dsc("int g = -42; int main() { return g; }"), -42);
        assert_eq!(run_dsc("float g = -2.5; int main() { return int(g * -2.0); }"), 5);
    }

    #[test]
    fn locals_are_zero_initialised() {
        assert_eq!(run_dsc("int main() { int x; return x; }"), 0);
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        let v = run_dsc(
            "int main() { int x; x = 1; if (1) { int x; x = 9; } return x; }",
        );
        assert_eq!(v, 1, "inner x must not clobber outer x");
    }

    #[test]
    fn deep_recursion_uses_the_stack_correctly() {
        assert_eq!(
            run_dsc("int sum(int n) { if (n == 0) { return 0; } return n + sum(n - 1); } int main() { return sum(500); }"),
            500 * 501 / 2
        );
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(crate::compile("int x; int x; int main() { return 0; }").is_err());
        assert!(crate::compile("int f() { return 0; } int f() { return 1; } int main() { return 0; }").is_err());
        assert!(crate::compile("int main() { int a; int a; return 0; }").is_err());
    }

    #[test]
    fn array_type_mismatches_rejected() {
        assert!(crate::compile("int xs[4]; int main() { xs = 3; return 0; }").is_err());
        assert!(crate::compile("int x; int main() { return x[0]; }").is_err());
        assert!(crate::compile("float fs[4]; int main() { fs[0] = 1; return 0; }").is_err());
    }
}
