//! Recursive-descent parser for DSC.

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::{Tok, Token};

/// Parses a token stream into an AST.
///
/// # Errors
///
/// Reports the first syntax error with its line.
pub fn parse(tokens: &[Token]) -> Result<Program, LangError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at_eof() {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), LangError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(LangError::new(self.line(), format!("expected `{p}`, found {}", self.describe())))
        }
    }

    fn describe(&self) -> String {
        match self.peek() {
            Tok::Int(v) => format!("`{v}`"),
            Tok::Float(v) => format!("`{v}`"),
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Punct(p) => format!("`{p}`"),
            Tok::Eof => "end of input".to_string(),
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            _ => Err(LangError::new(self.line(), "expected an identifier")),
        }
    }

    fn try_type(&mut self) -> Option<Type> {
        match self.peek() {
            Tok::Ident(s) if s == "int" => {
                self.bump();
                Some(Type::Int)
            }
            Tok::Ident(s) if s == "float" => {
                self.bump();
                Some(Type::Float)
            }
            _ => None,
        }
    }

    fn expect_type(&mut self) -> Result<Type, LangError> {
        self.try_type()
            .ok_or_else(|| LangError::new(self.line(), format!("expected a type, found {}", self.describe())))
    }

    // ---- items ------------------------------------------------------

    fn item(&mut self) -> Result<Item, LangError> {
        let line = self.line();
        let ty = self.expect_type()?;
        let name = self.ident()?;
        if self.eat_punct("(") {
            // Function.
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    let pty = self.expect_type()?;
                    let pname = self.ident()?;
                    params.push((pty, pname));
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            if params.len() > 4 {
                return Err(LangError::new(line, "functions take at most four parameters"));
            }
            let body = self.block()?;
            return Ok(Item::Function(Function { ret: ty, name, params, body, line }));
        }
        // Global.
        let array = if self.eat_punct("[") {
            let n = match self.bump() {
                Tok::Int(v) if v > 0 => v as usize,
                _ => return Err(LangError::new(line, "array size must be a positive literal")),
            };
            self.expect_punct("]")?;
            Some(n)
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            if array.is_some() {
                return Err(LangError::new(line, "array initialisers are not supported"));
            }
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(Item::Global(Global { ty, name, array, init, line }))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(LangError::new(self.line(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    // ---- statements -------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        // Keywords.
        if let Tok::Ident(kw) = self.peek() {
            match kw.as_str() {
                "if" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let cond = self.expr()?;
                    self.expect_punct(")")?;
                    let then = self.block()?;
                    let els = if matches!(self.peek(), Tok::Ident(k) if k == "else") {
                        self.bump();
                        if matches!(self.peek(), Tok::Ident(k) if k == "if") {
                            vec![self.stmt()?]
                        } else {
                            self.block()?
                        }
                    } else {
                        Vec::new()
                    };
                    return Ok(Stmt::If(cond, then, els));
                }
                "while" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let cond = self.expr()?;
                    self.expect_punct(")")?;
                    let body = self.block()?;
                    return Ok(Stmt::While(cond, body));
                }
                "for" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let init = if self.eat_punct(";") { None } else { Some(self.simple_stmt()?) };
                    if init.is_some() {
                        self.expect_punct(";")?;
                    }
                    let cond = if matches!(self.peek(), Tok::Punct(";")) {
                        Expr::Int(1)
                    } else {
                        self.expr()?
                    };
                    self.expect_punct(";")?;
                    let step = if matches!(self.peek(), Tok::Punct(")")) {
                        None
                    } else {
                        Some(self.simple_stmt()?)
                    };
                    self.expect_punct(")")?;
                    let mut body = self.block()?;
                    if let Some(step) = step {
                        body.push(step);
                    }
                    let mut out = Vec::new();
                    if let Some(init) = init {
                        out.push(init);
                    }
                    out.push(Stmt::While(cond, body));
                    // Desugar into a nested block sequence.
                    return Ok(if out.len() == 1 {
                        out.pop().expect("non-empty")
                    } else {
                        // Wrap in an if(1) to keep a single Stmt.
                        Stmt::If(Expr::Int(1), out, Vec::new())
                    });
                }
                "return" => {
                    self.bump();
                    if self.eat_punct(";") {
                        return Ok(Stmt::Return(None, line));
                    }
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    return Ok(Stmt::Return(Some(e), line));
                }
                _ => {}
            }
        }
        let s = self.simple_stmt()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// A declaration, assignment, or expression statement (no trailing
    /// semicolon — shared with `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        if let Some(ty) = self.try_type_lookahead() {
            let _ = self.try_type(); // commit the lookahead

            let name = self.ident()?;
            let init = if self.eat_punct("=") { Some(self.expr()?) } else { None };
            return Ok(Stmt::Local(ty, name, init, line));
        }
        // Assignment or expression.
        if let Tok::Ident(name) = self.peek().clone() {
            // Lookahead for `name =` / `name[expr] =`.
            let save = self.pos;
            self.bump();
            if self.eat_punct("=") {
                let e = self.expr()?;
                return Ok(Stmt::Assign(name, e, line));
            }
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                if self.eat_punct("=") {
                    let e = self.expr()?;
                    return Ok(Stmt::AssignIndex(name, idx, e, line));
                }
            }
            self.pos = save;
        }
        let e = self.expr()?;
        Ok(Stmt::Expr(e))
    }

    fn try_type_lookahead(&self) -> Option<Type> {
        match self.peek() {
            Tok::Ident(s) if s == "int" || s == "float" => {
                // Disambiguate from the cast syntax `int(...)`.
                if matches!(self.tokens.get(self.pos + 1).map(|t| &t.kind), Some(Tok::Punct("("))) {
                    None
                } else if s == "int" {
                    Some(Type::Int)
                } else {
                    Some(Type::Float)
                }
            }
            _ => None,
        }
    }

    // ---- expressions (precedence climbing) --------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.logical_or()
    }

    fn logical_or(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.logical_and()?;
        while matches!(self.peek(), Tok::Punct("||")) {
            let line = self.line();
            self.bump();
            let rhs = self.logical_and()?;
            lhs = Expr::Binary(BinOp::LogOr, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.bitor()?;
        while matches!(self.peek(), Tok::Punct("&&")) {
            let line = self.line();
            self.bump();
            let rhs = self.bitor()?;
            lhs = Expr::Binary(BinOp::LogAnd, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn binary_level(
        &mut self,
        ops: &[(&str, BinOp)],
        next: fn(&mut Self) -> Result<Expr, LangError>,
    ) -> Result<Expr, LangError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (text, op) in ops {
                if matches!(self.peek(), Tok::Punct(p) if p == text) {
                    let line = self.line();
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr::Binary(*op, Box::new(lhs), Box::new(rhs), line);
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn bitor(&mut self) -> Result<Expr, LangError> {
        self.binary_level(&[("|", BinOp::Or)], Self::bitxor)
    }

    fn bitxor(&mut self) -> Result<Expr, LangError> {
        self.binary_level(&[("^", BinOp::Xor)], Self::bitand)
    }

    fn bitand(&mut self) -> Result<Expr, LangError> {
        self.binary_level(&[("&", BinOp::And)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, LangError> {
        self.binary_level(&[("==", BinOp::Eq), ("!=", BinOp::Ne)], Self::relational)
    }

    fn relational(&mut self) -> Result<Expr, LangError> {
        self.binary_level(
            &[("<=", BinOp::Le), (">=", BinOp::Ge), ("<", BinOp::Lt), (">", BinOp::Gt)],
            Self::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr, LangError> {
        self.binary_level(&[("<<", BinOp::Shl), (">>", BinOp::Shr)], Self::additive)
    }

    fn additive(&mut self) -> Result<Expr, LangError> {
        self.binary_level(&[("+", BinOp::Add), ("-", BinOp::Sub)], Self::multiplicative)
    }

    fn multiplicative(&mut self) -> Result<Expr, LangError> {
        self.binary_level(
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
            Self::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?), line));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?), line));
        }
        if self.eat_punct("~") {
            return Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?), line));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    // Cast or call.
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    if name == "int" || name == "float" {
                        if args.len() != 1 {
                            return Err(LangError::new(line, "casts take exactly one argument"));
                        }
                        let ty = if name == "int" { Type::Int } else { Type::Float };
                        return Ok(Expr::Cast(ty, Box::new(args.pop().expect("one arg")), line));
                    }
                    return Ok(Expr::Call(name, args, line));
                }
                if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr::Index(name, Box::new(idx), line));
                }
                Ok(Expr::Var(name, line))
            }
            other => Err(LangError::new(
                line,
                format!("expected an expression, found `{other:?}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function_with_params() {
        let p = parse_src("int add(int a, int b) { return a + b; }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert!(matches!(f.body[0], Stmt::Return(Some(_), _)));
    }

    #[test]
    fn parses_globals() {
        let p = parse_src("int x = 5; float fs[10]; int main() { return 0; }");
        assert!(matches!(&p.items[0], Item::Global(g) if g.name == "x" && g.init.is_some()));
        assert!(matches!(&p.items[1], Item::Global(g) if g.array == Some(10)));
    }

    #[test]
    fn precedence_shapes_the_tree() {
        let p = parse_src("int main() { return 1 + 2 * 3; }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Return(Some(Expr::Binary(BinOp::Add, _, rhs, _)), _) = &f.body[0] else {
            panic!("expected add at root")
        };
        assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn cast_vs_declaration_ambiguity() {
        // `int(x)` is a cast; `int x` is a declaration.
        let p = parse_src("int main() { int y; y = int(1.5); return y; }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        assert!(matches!(f.body[0], Stmt::Local(Type::Int, _, None, _)));
        assert!(matches!(&f.body[1], Stmt::Assign(_, Expr::Cast(Type::Int, _, _), _)));
    }

    #[test]
    fn for_desugars_to_while() {
        let p = parse_src("int main() { for (int i = 0; i < 3; i = i + 1) { } return 0; }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::If(_, body, _) = &f.body[0] else { panic!("for wrapper") };
        assert!(matches!(body[0], Stmt::Local(..)));
        assert!(matches!(body[1], Stmt::While(..)));
    }

    #[test]
    fn else_if_chains() {
        let p = parse_src(
            "int main() { if (1) { return 1; } else if (2) { return 2; } else { return 3; } }",
        );
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::If(_, _, els) = &f.body[0] else { panic!() };
        assert!(matches!(els[0], Stmt::If(..)));
    }

    #[test]
    fn syntax_errors_have_lines() {
        let toks = lex("int main() {\n return 1 +; \n}").unwrap();
        let e = parse(&toks).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse(&lex("int f(int a, int b, int c, int d, int e) {}").unwrap()).is_err());
    }
}
