//! DSC — a small C-like language compiling to DS-1.
//!
//! The paper's workloads were C programs compiled for SimpleScalar;
//! this crate completes our from-scratch toolchain so workloads and
//! examples can be written above assembly level. DSC is deliberately
//! tiny but real:
//!
//! * types `int` (i64) and `float` (f64), with explicit `int(...)` /
//!   `float(...)` casts (no implicit mixing);
//! * global scalars and fixed-size global arrays;
//! * functions with up to four parameters, locals, recursion;
//! * `if`/`else`, `while`, `for`, `return`, full C expression
//!   precedence (including `%`, shifts, bitwise ops on `int`);
//! * `main()` is the entry point; its return value is stored at the
//!   `result` symbol before `halt`, so compiled programs plug straight
//!   into every simulator and checksum harness in the workspace.
//!
//! Code generation is a classic single-pass stack machine — naive but
//! correct, and its load/store-rich output is itself a useful memory-
//! system workload.
//!
//! # Examples
//!
//! ```
//! let program = ds_lang::compile(r#"
//!     int fib(int n) {
//!         if (n < 2) { return n; }
//!         return fib(n - 1) + fib(n - 2);
//!     }
//!     int main() { return fib(10); }
//! "#).unwrap();
//! assert!(program.symbol("result").is_some());
//! ```

mod ast;
mod codegen;
mod error;
mod lexer;
mod parser;

pub use ast::{BinOp, Expr, Function, Global, Item, Program as Ast, Stmt, Type, UnOp};
pub use error::LangError;

use ds_asm::Program;

/// Compiles DSC source into a loadable DS-1 [`Program`].
///
/// # Errors
///
/// Returns a [`LangError`] with a line number for lexical, syntactic,
/// or semantic problems (unknown names, type mismatches, arity errors).
pub fn compile(source: &str) -> Result<Program, LangError> {
    let tokens = lexer::lex(source)?;
    let ast = parser::parse(&tokens)?;
    codegen::generate(&ast)
}

#[cfg(test)]
pub(crate) mod testutil {
    use ds_asm::Program;
    use ds_cpu::FuncCore;
    use ds_mem::MemImage;

    /// Compiles and runs a DSC program; returns the value `main`
    /// returned (read back from the `result` symbol).
    pub fn run_dsc(source: &str) -> i64 {
        let program = crate::compile(source).expect("compiles");
        run_program(&program)
    }

    /// Runs an already-compiled program.
    pub fn run_program(program: &Program) -> i64 {
        let mut mem = MemImage::new();
        program.load(&mut mem);
        let mut cpu = FuncCore::with_stack(program.entry, program.stack_top);
        cpu.run(&mut mem, 200_000_000).expect("executes");
        assert!(cpu.halted(), "program did not halt");
        mem.read_u64(program.symbol("result").expect("result symbol")) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::run_dsc;

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run_dsc("int main() { return 2 + 3 * 4; }"), 14);
        assert_eq!(run_dsc("int main() { return (2 + 3) * 4; }"), 20);
        assert_eq!(run_dsc("int main() { return 7 / 2 + 7 % 2; }"), 4);
        assert_eq!(run_dsc("int main() { return 1 << 4 | 3; }"), 19);
        assert_eq!(run_dsc("int main() { return -5 + 2; }"), -3);
        assert_eq!(run_dsc("int main() { return !0 + !7; }"), 1);
        assert_eq!(run_dsc("int main() { return ~0; }"), -1);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run_dsc("int main() { return 3 < 5; }"), 1);
        assert_eq!(run_dsc("int main() { return 3 >= 5; }"), 0);
        assert_eq!(run_dsc("int main() { return 1 && 2; }"), 1);
        assert_eq!(run_dsc("int main() { return 0 || 0; }"), 0);
        assert_eq!(run_dsc("int main() { return (1 == 1) + (2 != 2); }"), 1);
    }

    #[test]
    fn short_circuit_evaluation() {
        // The rhs would divide by a guarded zero-check... use an array
        // store as the observable side effect instead.
        let v = run_dsc(
            r#"
            int hits;
            int bump() { hits = hits + 1; return 1; }
            int main() {
                int a; a = 0 && bump();
                int b; b = 1 || bump();
                return hits * 10 + a + b;
            }
            "#,
        );
        assert_eq!(v, 1, "neither bump() may run");
    }

    #[test]
    fn locals_params_and_calls() {
        let v = run_dsc(
            r#"
            int add3(int a, int b, int c) { return a + b + c; }
            int main() {
                int x; x = add3(1, 2, 3);
                int y; y = add3(x, x, x);
                return y;
            }
            "#,
        );
        assert_eq!(v, 18);
    }

    #[test]
    fn recursion() {
        assert_eq!(
            run_dsc(
                "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\n                 int main() { return fib(15); }"
            ),
            610
        );
    }

    #[test]
    fn while_and_for_loops() {
        assert_eq!(
            run_dsc("int main() { int s; int i; i = 1; while (i <= 10) { s = s + i; i = i + 1; } return s; }"),
            55
        );
        assert_eq!(
            run_dsc("int main() { int s; for (int i = 0; i < 5; i = i + 1) { s = s + i * i; } return s; }"),
            30
        );
    }

    #[test]
    fn globals_and_arrays() {
        let v = run_dsc(
            r#"
            int total = 7;
            int xs[10];
            int main() {
                for (int i = 0; i < 10; i = i + 1) { xs[i] = i * 3; }
                for (int i = 0; i < 10; i = i + 1) { total = total + xs[i]; }
                return total;
            }
            "#,
        );
        assert_eq!(v, 7 + 3 * 45);
    }

    #[test]
    fn floats_and_casts() {
        assert_eq!(run_dsc("int main() { float x; x = 2.5; return int(x * 4.0); }"), 10);
        assert_eq!(run_dsc("int main() { return int(float(7) / 2.0 * 2.0); }"), 7);
        assert_eq!(
            run_dsc("float half(float v) { return v / 2.0; } int main() { return int(half(9.0) * 10.0); }"),
            45
        );
        assert_eq!(run_dsc("int main() { return (1.5 < 2.5) + (1.5 == 1.5); }"), 2);
    }

    #[test]
    fn float_arrays() {
        let v = run_dsc(
            r#"
            float fs[8];
            int main() {
                for (int i = 0; i < 8; i = i + 1) { fs[i] = float(i) + 0.5; }
                float s;
                for (int i = 0; i < 8; i = i + 1) { s = s + fs[i]; }
                return int(s);
            }
            "#,
        );
        assert_eq!(v, 32); // 0.5+1.5+...+7.5 = 32.0
    }

    #[test]
    fn nested_expressions_spill_correctly() {
        // Deep nesting with calls inside operands: the stack-machine
        // codegen must preserve partial results across calls.
        let v = run_dsc(
            r#"
            int id(int x) { return x; }
            int main() {
                return id(1) + (id(2) * (id(3) + id(4) * (id(5) + id(6))));
            }
            "#,
        );
        assert_eq!(v, 1 + 2 * (3 + 4 * (5 + 6)));
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = crate::compile("int main() { return undefined_var; }").unwrap_err();
        assert!(e.to_string().contains("undefined_var"), "{e}");
        let e = crate::compile("int main() { return 1.5 + 1; }").unwrap_err();
        assert!(e.to_string().contains("type"), "{e}");
        let e = crate::compile("int main() { return f(); }").unwrap_err();
        assert!(e.to_string().contains("f"), "{e}");
        let e = crate::compile("int main() { @ }").unwrap_err();
        assert!(e.line > 0);
    }

    #[test]
    fn main_is_required() {
        let e = crate::compile("int helper() { return 1; }").unwrap_err();
        assert!(e.to_string().contains("main"), "{e}");
    }
}
