//! Compiler error type.

use std::fmt;

/// A DSC compilation error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// 1-based source line (0 for whole-program errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl LangError {
    /// Creates an error at `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        LangError { line, message: message.into() }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "error: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(LangError::new(3, "bad token").to_string(), "line 3: bad token");
        assert_eq!(LangError::new(0, "no main").to_string(), "error: no main");
    }
}
