//! The DSC lexer.

use crate::error::LangError;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Identifier or keyword.
    Ident(String),
    /// Punctuation / operator (longest-match, e.g. `<=`, `&&`, `<<`).
    Punct(&'static str),
    /// End of input.
    Eof,
}

const PUNCTS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")", "{", "}", "[", "]", ";", ",",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
];

/// Tokenises DSC source.
///
/// # Errors
///
/// Reports unknown characters and malformed numeric literals with
/// their line numbers.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: // to end of line, /* ... */.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(LangError::new(line, "unterminated block comment"));
                }
                i += 2;
                continue;
            }
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'.'
                    || bytes[i] == b'_')
            {
                if bytes[i] == b'.' {
                    is_float = true;
                }
                i += 1;
            }
            let text = source[start..i].replace('_', "");
            let kind = if is_float {
                Tok::Float(
                    text.parse::<f64>()
                        .map_err(|_| LangError::new(line, format!("bad float literal `{text}`")))?,
                )
            } else if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                Tok::Int(
                    i64::from_str_radix(hex, 16)
                        .map_err(|_| LangError::new(line, format!("bad hex literal `{text}`")))?,
                )
            } else {
                Tok::Int(
                    text.parse::<i64>()
                        .map_err(|_| LangError::new(line, format!("bad int literal `{text}`")))?,
                )
            };
            out.push(Token { kind, line });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Token { kind: Tok::Ident(source[start..i].to_string()), line });
            continue;
        }
        // Longest-match punctuation.
        let rest = &source[i..];
        let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) else {
            return Err(LangError::new(line, format!("unexpected character `{c}`")));
        };
        out.push(Token { kind: Tok::Punct(p), line });
        i += p.len();
    }
    out.push(Token { kind: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_idents_and_puncts() {
        assert_eq!(
            kinds("x = 42 + 3.5;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Punct("+"),
                Tok::Float(3.5),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn longest_match_operators() {
        assert_eq!(
            kinds("a <= b << c == d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Ident("c".into()),
                Tok::Punct("=="),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("// line one\n/* two\nthree */ x").unwrap();
        assert_eq!(toks[0].kind, Tok::Ident("x".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn hex_and_underscores() {
        assert_eq!(kinds("0xff 1_000")[..2], [Tok::Int(255), Tok::Int(1000)]);
    }

    #[test]
    fn errors() {
        assert!(lex("@").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("1.2.3").is_err());
        let e = lex("\n\n@").unwrap_err();
        assert_eq!(e.line, 3);
    }
}
