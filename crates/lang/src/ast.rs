//! The DSC abstract syntax tree.

/// Scalar type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE double.
    Float,
}

impl Type {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Type::Int => "int",
            Type::Float => "float",
        }
    }
}

/// Binary operators (C precedence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (int only)
    Rem,
    /// `<<` (int only)
    Shl,
    /// `>>` (int only, arithmetic)
    Shr,
    /// `&` (int only)
    And,
    /// `|` (int only)
    Or,
    /// `^` (int only)
    Xor,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit, int only)
    LogAnd,
    /// `||` (short-circuit, int only)
    LogOr,
}

impl BinOp {
    /// True for comparison operators (result type `int`).
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    /// True for operators defined only on `int`.
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem
                | BinOp::Shl
                | BinOp::Shr
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::LogAnd
                | BinOp::LogOr
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (int only, yields 0/1).
    Not,
    /// Bitwise complement (int only).
    BitNot,
}

/// An expression, annotated with its source line.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Variable reference (local, parameter, or global scalar).
    Var(String, usize),
    /// Global array element: `name[index]`.
    Index(String, Box<Expr>, usize),
    /// Function call.
    Call(String, Vec<Expr>, usize),
    /// Explicit cast: `int(e)` or `float(e)`.
    Cast(Type, Box<Expr>, usize),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, usize),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, usize),
}

impl Expr {
    /// The source line the expression starts on.
    pub fn line(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Float(_) => 0,
            Expr::Var(_, l)
            | Expr::Index(_, _, l)
            | Expr::Call(_, _, l)
            | Expr::Cast(_, _, l)
            | Expr::Unary(_, _, l)
            | Expr::Binary(_, _, _, l) => *l,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration with optional initialiser.
    Local(Type, String, Option<Expr>, usize),
    /// Scalar assignment (local or global).
    Assign(String, Expr, usize),
    /// Array-element assignment.
    AssignIndex(String, Expr, Expr, usize),
    /// Expression evaluated for effect (a call).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`.
    While(Expr, Vec<Stmt>),
    /// `return e?;`.
    Return(Option<Expr>, usize),
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Element type.
    pub ty: Type,
    /// Name.
    pub name: String,
    /// `Some(n)` for an array of `n` elements, `None` for a scalar.
    pub array: Option<usize>,
    /// Scalar initialiser (literals only).
    pub init: Option<Expr>,
    /// Source line.
    pub line: usize,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Return type.
    pub ret: Type,
    /// Name.
    pub name: String,
    /// Parameters `(type, name)`.
    pub params: Vec<(Type, String)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: usize,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Global variable or array.
    Global(Global),
    /// Function definition.
    Function(Function),
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Rem.int_only());
        assert!(BinOp::LogAnd.int_only());
        assert!(!BinOp::Mul.int_only());
        assert_eq!(Type::Int.name(), "int");
        assert_eq!(Type::Float.name(), "float");
    }

    #[test]
    fn expr_lines() {
        let e = Expr::Binary(BinOp::Add, Box::new(Expr::Int(1)), Box::new(Expr::Int(2)), 7);
        assert_eq!(e.line(), 7);
        assert_eq!(Expr::Int(3).line(), 0);
    }
}
