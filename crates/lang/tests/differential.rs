//! Differential testing of the DSC compiler: random integer expression
//! trees are evaluated by a Rust reference interpreter and by
//! compile-then-simulate; the results must agree bit for bit.

use ds_cpu::FuncCore;
use ds_mem::MemImage;
use proptest::prelude::*;

/// A random expression with matched semantics in Rust and DSC.
#[derive(Debug, Clone)]
enum E {
    Lit(i64),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    /// Division by a guaranteed-nonzero literal.
    DivLit(Box<E>, i64),
    RemLit(Box<E>, i64),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    ShlLit(Box<E>, u8),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    Neg(Box<E>),
    Not(Box<E>),
}

const NVARS: usize = 4;
const VALUES: [i64; NVARS] = [3, -17, 1_000_003, 0];

impl E {
    fn eval(&self) -> i64 {
        match self {
            E::Lit(v) => *v,
            E::Var(i) => VALUES[*i],
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::DivLit(a, d) => a.eval().wrapping_div(*d),
            E::RemLit(a, d) => a.eval().wrapping_rem(*d),
            E::And(a, b) => a.eval() & b.eval(),
            E::Or(a, b) => a.eval() | b.eval(),
            E::Xor(a, b) => a.eval() ^ b.eval(),
            E::ShlLit(a, s) => a.eval().wrapping_shl(u32::from(*s)),
            E::Lt(a, b) => i64::from(a.eval() < b.eval()),
            E::Eq(a, b) => i64::from(a.eval() == b.eval()),
            E::Neg(a) => a.eval().wrapping_neg(),
            E::Not(a) => i64::from(a.eval() == 0),
        }
    }

    fn to_dsc(&self) -> String {
        match self {
            E::Lit(v) if *v < 0 => format!("(0 - {})", v.unsigned_abs()),
            E::Lit(v) => v.to_string(),
            E::Var(i) => format!("v{i}"),
            E::Add(a, b) => format!("({} + {})", a.to_dsc(), b.to_dsc()),
            E::Sub(a, b) => format!("({} - {})", a.to_dsc(), b.to_dsc()),
            E::Mul(a, b) => format!("({} * {})", a.to_dsc(), b.to_dsc()),
            E::DivLit(a, d) => format!("({} / {d})", a.to_dsc()),
            E::RemLit(a, d) => format!("({} % {d})", a.to_dsc()),
            E::And(a, b) => format!("({} & {})", a.to_dsc(), b.to_dsc()),
            E::Or(a, b) => format!("({} | {})", a.to_dsc(), b.to_dsc()),
            E::Xor(a, b) => format!("({} ^ {})", a.to_dsc(), b.to_dsc()),
            E::ShlLit(a, s) => format!("({} << {s})", a.to_dsc()),
            E::Lt(a, b) => format!("({} < {})", a.to_dsc(), b.to_dsc()),
            E::Eq(a, b) => format!("({} == {})", a.to_dsc(), b.to_dsc()),
            E::Neg(a) => format!("(-{})", a.to_dsc()),
            E::Not(a) => format!("(!{})", a.to_dsc()),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(E::Lit),
        (0usize..NVARS).prop_map(E::Var),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), 1i64..100).prop_map(|(a, d)| E::DivLit(Box::new(a), d)),
            (inner.clone(), 1i64..100).prop_map(|(a, d)| E::RemLit(Box::new(a), d)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..16).prop_map(|(a, s)| E::ShlLit(Box::new(a), s)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Eq(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.prop_map(|a| E::Not(Box::new(a))),
        ]
    })
}

fn run_compiled(source: &str) -> i64 {
    let program = ds_lang::compile(source).expect("compiles");
    let mut mem = MemImage::new();
    program.load(&mut mem);
    let mut cpu = FuncCore::with_stack(program.entry, program.stack_top);
    cpu.run(&mut mem, 100_000_000).expect("executes");
    assert!(cpu.halted());
    mem.read_u64(program.symbol("result").expect("result")) as i64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_expressions_match_reference(e in expr_strategy()) {
        let mut src = String::from("int main() {\n");
        for (i, v) in VALUES.iter().enumerate() {
            src.push_str(&format!("int v{i}; v{i} = (0 - {}) + {};\n",
                v.unsigned_abs().min(i64::MAX as u64), // build negatives safely
                if *v >= 0 { 2 * *v } else { 0 },
            ));
        }
        src.push_str(&format!("return {};\n}}\n", e.to_dsc()));
        prop_assert_eq!(run_compiled(&src), e.eval(), "src:\n{}", src);
    }

    #[test]
    fn expressions_also_match_through_locals_and_calls(e in expr_strategy()) {
        // Same expression routed through a helper function.
        let mut src = String::from("int id(int x) { return x; }\nint main() {\n");
        for (i, v) in VALUES.iter().enumerate() {
            src.push_str(&format!("int v{i}; v{i} = (0 - {}) + {};\n",
                v.unsigned_abs().min(i64::MAX as u64),
                if *v >= 0 { 2 * *v } else { 0 },
            ));
        }
        src.push_str(&format!("return id({});\n}}\n", e.to_dsc()));
        prop_assert_eq!(run_compiled(&src), e.eval(), "src:\n{}", src);
    }
}
