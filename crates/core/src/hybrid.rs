//! Hybrid parallel / DataScalar execution (§5.2).
//!
//! The paper argues DataScalar is "a memory system optimization, not a
//! substitute for parallel processing": when coarse-grain parallelism
//! exists the machine should run as a parallel processor (the hardware
//! is already there), and fall back to SPSD execution for the serial
//! sections — "the SPSD execution model may be a good way to reduce the
//! execution time spent in serialized code, thus improving
//! scalability".
//!
//! This module quantifies that argument with an Amdahl-style model: a
//! program with parallel fraction `p` on `n` nodes, where the serial
//! fraction runs either on one conventional node (pure parallel
//! machine) or under DataScalar with a measured serial-section speedup
//! `s` (hybrid machine).

/// Speedup of a pure parallel machine on `n` nodes for parallel
/// fraction `p` (classic Amdahl).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `n == 0`.
///
/// # Examples
///
/// ```
/// let s = ds_core::hybrid::parallel_speedup(0.9, 8);
/// assert!((s - 1.0 / (0.1 + 0.9 / 8.0)).abs() < 1e-12);
/// ```
pub fn parallel_speedup(p: f64, n: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "parallel fraction must be in [0,1]");
    assert!(n > 0, "need at least one node");
    1.0 / ((1.0 - p) + p / n as f64)
}

/// Speedup of the hybrid machine: parallel sections partitioned over
/// `n` nodes, serial sections run SPSD with DataScalar serial speedup
/// `s` (measured, e.g., as the Figure 7 DataScalar/traditional IPC
/// ratio).
///
/// # Panics
///
/// Panics if `p ∉ [0,1]`, `n == 0`, or `s <= 0`.
pub fn hybrid_speedup(p: f64, n: usize, s: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "parallel fraction must be in [0,1]");
    assert!(n > 0, "need at least one node");
    assert!(s > 0.0, "serial speedup must be positive");
    1.0 / ((1.0 - p) / s + p / n as f64)
}

/// The node count beyond which adding hardware stops paying under the
/// cost-effectiveness rule of Wood & Hill as cited in §4.4: the system
/// is cost-effective while speedup exceeds costup. With processor cost
/// a fraction `c` of a node (memory dominating), the costup of `n`
/// nodes over one is `1 + (n-1)·c`.
///
/// Returns the largest `n ≤ max_nodes` that is cost-effective for the
/// hybrid machine, or `None` if none is.
pub fn max_cost_effective_nodes(p: f64, s: f64, c: f64, max_nodes: usize) -> Option<usize> {
    assert!((0.0..=1.0).contains(&c), "cost fraction must be in [0,1]");
    (2..=max_nodes)
        .take_while(|&n| {
            let costup = 1.0 + (n as f64 - 1.0) * c;
            hybrid_speedup(p, n, s) > costup
        })
        .last()
}

/// One row of the §5.2 scalability comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridPoint {
    /// Node count.
    pub nodes: usize,
    /// Pure parallel speedup.
    pub parallel: f64,
    /// Hybrid (parallel + SPSD serial sections) speedup.
    pub hybrid: f64,
}

/// Sweeps node counts for a given parallel fraction and serial-section
/// DataScalar speedup.
pub fn sweep(p: f64, s: f64, node_counts: &[usize]) -> Vec<HybridPoint> {
    node_counts
        .iter()
        .map(|&n| HybridPoint {
            nodes: n,
            parallel: parallel_speedup(p, n),
            hybrid: hybrid_speedup(p, n, s),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_limits() {
        assert_eq!(parallel_speedup(0.0, 64), 1.0, "fully serial never speeds up");
        assert!((parallel_speedup(1.0, 64) - 64.0).abs() < 1e-12);
        // Serial fraction caps the asymptote.
        assert!(parallel_speedup(0.9, 1_000_000) < 10.0 + 1e-9);
    }

    #[test]
    fn hybrid_beats_pure_parallel_when_serial_speedup_exceeds_one() {
        for &n in &[2usize, 4, 8, 32] {
            let pure = parallel_speedup(0.8, n);
            let hybrid = hybrid_speedup(0.8, n, 1.5);
            assert!(hybrid > pure, "n={n}: {hybrid} <= {pure}");
        }
    }

    #[test]
    fn hybrid_with_unit_serial_speedup_is_amdahl() {
        for &n in &[1usize, 2, 16] {
            assert!((hybrid_speedup(0.7, n, 1.0) - parallel_speedup(0.7, n)).abs() < 1e-12);
        }
    }

    #[test]
    fn hybrid_asymptote_is_s_over_serial_fraction() {
        // As n -> inf, hybrid speedup -> s / (1-p).
        let s = 1.7;
        let p = 0.9;
        let v = hybrid_speedup(p, 1_000_000, s);
        assert!((v - s / (1.0 - p)).abs() < 0.01);
    }

    #[test]
    fn cost_effectiveness_grows_with_cheap_processors() {
        // Cheaper processing logic (smaller c) keeps more nodes
        // cost-effective — the paper's §4.4 trend.
        let few = max_cost_effective_nodes(0.8, 1.5, 0.5, 64);
        let many = max_cost_effective_nodes(0.8, 1.5, 0.05, 64);
        assert!(many.unwrap_or(0) >= few.unwrap_or(0));
        assert!(many.unwrap_or(0) >= 8, "nearly-free processors scale far");
    }

    #[test]
    fn sweep_is_monotone_in_nodes_for_parallel_codes() {
        let pts = sweep(0.95, 1.3, &[1, 2, 4, 8, 16]);
        for w in pts.windows(2) {
            assert!(w[1].hybrid >= w[0].hybrid);
            assert!(w[1].parallel >= w[0].parallel);
        }
    }

    #[test]
    #[should_panic(expected = "parallel fraction")]
    fn bad_fraction_rejected() {
        parallel_speedup(1.5, 2);
    }
}
