//! The complete DataScalar machine.

use crate::config::DsConfig;
use crate::node::Node;
use crate::stats::RunResult;
use crate::watchdog::{DeadlockReport, ForwardProgress};
use crate::Cycle;
use ds_asm::Program;
use ds_cpu::{ExecError, FuncCore, TraceSource};
use ds_mem::{MemImage, PageTable, PageTableBuilder, Segment};
use ds_net::{Delivery, Fabric, MsgKind};
use std::borrow::BorrowMut;
use std::sync::Arc;

/// The DataScalar machine: `N` nodes on a broadcast bus, all running
/// the same program.
///
/// # Examples
///
/// See the crate-level examples and `examples/quickstart.rs`.
#[derive(Debug)]
pub struct DsSystem {
    config: DsConfig,
    nodes: Vec<Node>,
    bus: Fabric,
    trace: TraceSource,
    page_table: Arc<PageTable>,
    cycles: Cycle,
    delivered: u64,
    /// Cycles advanced by event-horizon jumps rather than naive
    /// iteration (diagnostic; not part of `RunResult`).
    skipped: u64,
    /// `Some` once the forward-progress watchdog has tripped: the run
    /// terminated with this structured evidence instead of hanging.
    deadlock: Option<Box<DeadlockReport>>,
    /// Cross-node commit-stream auditor (observational only).
    #[cfg(feature = "audit")]
    audit: crate::audit::SystemAudit,
    /// System-level events (lead changes) — observational only.
    #[cfg(feature = "obs")]
    probe: ds_obs::Recorder,
    /// Node currently holding the commit lead (argmax committed, ties
    /// to the lowest id) and the cycle it took the lead.
    #[cfg(feature = "obs")]
    lead: (usize, Cycle),
}

impl DsSystem {
    /// Builds a system for `program` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`DsConfig::validate`]).
    pub fn new(config: DsConfig, program: &Program) -> Self {
        config.validate();
        let mut ptb = PageTableBuilder::new(config.page_bytes, config.nodes);
        for (start, end, seg) in program.regions() {
            ptb.add_region(start, end, seg);
        }
        if config.replicate_text {
            ptb.replicate_segment(Segment::Text);
        }
        for &vpn in &config.replicated_vpns {
            ptb.replicate_page_of(vpn * config.page_bytes);
        }
        ptb.distribute_round_robin(config.dist_block_pages);
        let page_table = Arc::new(ptb.build());

        let mut mem = MemImage::new();
        program.load(&mut mem);
        let trace = TraceSource::new(FuncCore::with_stack(program.entry, program.stack_top), mem);

        let mut bus_cfg = config.bus;
        bus_cfg.ports = config.nodes;
        let nodes = (0..config.nodes)
            .map(|i| Node::new(i, Arc::clone(&page_table), &config))
            .collect();
        DsSystem {
            bus: Fabric::with_chaos(config.interconnect, bus_cfg, &config.fault_plan),
            nodes,
            trace,
            page_table,
            cycles: 0,
            delivered: 0,
            skipped: 0,
            deadlock: None,
            #[cfg(feature = "audit")]
            audit: crate::audit::SystemAudit::new(config.nodes),
            #[cfg(feature = "obs")]
            probe: ds_obs::Recorder::default(),
            #[cfg(feature = "obs")]
            lead: (0, 0),
            config,
        }
    }

    /// The page table (replication/ownership map).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Cycles covered by event-horizon jumps instead of naive
    /// iteration — the engine's work saved. Zero under
    /// `config.no_skip`; excluded from [`RunResult`] so the two paths
    /// stay byte-comparable.
    pub fn cycles_skipped(&self) -> u64 {
        self.skipped
    }

    /// Final memory image view (functional state; reflects execution up
    /// to the furthest point generated).
    pub fn mem(&self) -> &MemImage {
        self.trace.mem()
    }

    /// Runs until every node commits the whole program (or
    /// `config.max_insts` instructions), returning aggregate results.
    ///
    /// If no node commits for `config.watchdog_cycles` consecutive
    /// cycles — a correspondence-protocol deadlock, which the fault-free
    /// design rules out but ds-chaos injection provokes on purpose —
    /// the run terminates with a structured [`DeadlockReport`] on
    /// [`RunResult::deadlock`] instead of hanging or panicking.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors (undecodable
    /// instructions).
    pub fn run(&mut self) -> Result<RunResult, ExecError> {
        if self.config.parallel_step && self.config.nodes > 1 {
            self.run_parallel()
        } else {
            self.run_serial()
        }
    }

    /// The serial engine: one thread steps every node, then runs the
    /// shared cycle tail (which skips ahead to the next event horizon
    /// unless `config.no_skip` pins the naive reference loop).
    fn run_serial(&mut self) -> Result<RunResult, ExecError> {
        // The nodes and the trace move out of `self` for the duration
        // of the loop so the cycle tail can borrow them alongside the
        // rest of the system.
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut trace = std::mem::replace(
            &mut self.trace,
            TraceSource::new(FuncCore::new(0), MemImage::new()),
        );
        let mut wd = ForwardProgress::new(self.config.watchdog_cycles);
        // Reused every cycle; the hot loop allocates nothing.
        let mut deliveries = Vec::new();
        let outcome: Result<(), ExecError> = loop {
            let now = self.cycles;
            // 1. Every node simulates this cycle (the paper's simulator
            //    "switches contexts after executing each cycle").
            let mut step_err = None;
            for node in &mut nodes {
                if let Err(e) = node.step(&mut trace, now) {
                    step_err = Some(e);
                    break;
                }
            }
            if let Some(e) = step_err {
                break Err(e);
            }
            if self.cycle_tail(&mut nodes, &mut trace, now, &mut wd, &mut deliveries) {
                break Ok(());
            }
        };
        self.nodes = nodes;
        self.trace = trace;
        outcome?;
        Ok(self.finish_run())
    }

    /// The parallel engine: node stepping fans out to persistent worker
    /// threads each cycle; every cross-node effect (trace extension,
    /// accounting, bus arbitration, delivery, the horizon advance) runs
    /// on this thread in node order. Results are identical to the
    /// serial engine for any worker count: stepping only mutates
    /// per-node state against a read-only trace window, and the merge
    /// order is fixed.
    fn run_parallel(&mut self) -> Result<RunResult, ExecError> {
        use crate::parallel::{
            into_clean, lock_clean, read_clean, worker_count, write_clean, CycleBarrier,
            GuardCell, ShutdownOnDrop,
        };
        use std::sync::{Mutex, RwLock};
        let cells: Vec<Mutex<Node>> =
            std::mem::take(&mut self.nodes).into_iter().map(Mutex::new).collect();
        let trace_lock = RwLock::new(std::mem::replace(
            &mut self.trace,
            TraceSource::new(FuncCore::new(0), MemImage::new()),
        ));
        let n = cells.len();
        let workers = n.min(worker_count());
        let barrier = CycleBarrier::new();
        let step_err: Mutex<Option<ExecError>> = Mutex::new(None);
        let mut wd = ForwardProgress::new(self.config.watchdog_cycles);
        let mut deliveries = Vec::new();
        let outcome: Result<(), ExecError> = std::thread::scope(|scope| {
            // Declared before the guards below: on unwind the node
            // locks release first, then the barrier wakes the workers
            // so the scope can join them.
            let stopper = ShutdownOnDrop(&barrier);
            for w in 0..workers {
                let (barrier, cells, trace_lock, step_err) =
                    (&barrier, &cells, &trace_lock, &step_err);
                scope.spawn(move || {
                    let mut round = 0u64;
                    loop {
                        round += 1;
                        if !barrier.worker_wait(round) {
                            return;
                        }
                        let now = barrier.now();
                        let tr = read_clean(trace_lock);
                        for i in (w..n).step_by(workers) {
                            // ds-analyze: allow(pa1) striped ownership: worker w locks exactly the cells with index i = w (mod workers); no two workers share an element, and the mutex still guards each
                            let mut node = lock_clean(&cells[i]);
                            if let Err(e) = node.step_shared(&tr, now) {
                                let mut slot = lock_clean(step_err);
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                            }
                        }
                        drop(tr);
                        barrier.worker_done();
                    }
                });
            }
            let mut guards: Vec<GuardCell<'_>> = Vec::with_capacity(n);
            let outcome = loop {
                let now = self.cycles;
                // Pre-extend the shared trace past every index fetch
                // can peek this cycle, so workers read it lock-shared.
                let mut bound = None::<u64>;
                for cell in cells.iter() {
                    if let Some(b) = lock_clean(cell).prefetch_bound(now) {
                        bound = Some(bound.map_or(b, |cur| cur.max(b)));
                    }
                }
                if let Some(b) = bound {
                    // `b` is exclusive: materialise through `b - 1`.
                    if let Err(e) = write_clean(&trace_lock).extend_to(b - 1) {
                        break Err(e);
                    }
                }
                barrier.open_round(now);
                barrier.await_workers(workers);
                if let Some(e) = lock_clean(&step_err).take() {
                    break Err(e);
                }
                for cell in cells.iter() {
                    guards.push(GuardCell(lock_clean(cell)));
                }
                let mut tr = write_clean(&trace_lock);
                // Fold this cycle's furthest fetch peek into the trace
                // high-water mark, exactly as the serial engine's
                // demand-driven reads would have.
                let peek = guards.iter().map(|g| g.0.peek_end()).max().unwrap_or(0);
                tr.note_peeks(peek);
                let done = self.cycle_tail(&mut guards, &mut tr, now, &mut wd, &mut deliveries);
                drop(tr);
                guards.clear();
                if done {
                    break Ok(());
                }
            };
            drop(guards);
            drop(stopper);
            outcome
        });
        self.nodes = cells.into_iter().map(into_clean).collect();
        self.trace = trace_lock.into_inner().unwrap_or_else(|p| p.into_inner());
        outcome?;
        Ok(self.finish_run())
    }

    /// Everything after node stepping in one simulated cycle: audit
    /// absorption, lead tracking, cycle accounting, broadcast launch,
    /// interconnect stepping, delivery, trace trimming, the watchdog,
    /// the termination check, and (unless `config.no_skip`) the jump to
    /// the next event horizon. Generic over the node holder so the
    /// serial loop (`Vec<Node>`) and the parallel merge phase (mutex
    /// guards) share it verbatim. Returns true when the run is over.
    fn cycle_tail<N: BorrowMut<Node>>(
        &mut self,
        nodes: &mut [N],
        trace: &mut TraceSource,
        now: Cycle,
        wd: &mut ForwardProgress,
        deliveries: &mut Vec<Delivery>,
    ) -> bool {
        #[cfg(feature = "audit")]
        for (i, node) in nodes.iter_mut().enumerate() {
            let node: &mut Node = node.borrow_mut();
            while let Some(ev) = node.ms.audit.pending.pop_front() {
                self.audit.absorb(i, ev);
            }
        }
        #[cfg(feature = "obs")]
        self.track_lead(nodes, now);
        // Top-down cycle accounting: charge this cycle to exactly one
        // bucket per node. Runs before `cycles += 1`, so every node's
        // account total equals `cycles` exactly.
        #[cfg(feature = "obs")]
        {
            let bus_busy = !self.bus.is_idle();
            for node in nodes.iter_mut() {
                let node: &mut Node = node.borrow_mut();
                node.charge_cycle(now, bus_busy);
            }
        }
        // 2. Ready broadcasts enter the bus.
        for node in nodes.iter_mut() {
            let node: &mut Node = node.borrow_mut();
            while let Some(msg) = node.next_outgoing(now) {
                self.bus.enqueue(msg);
            }
        }
        // 3. The bus advances; completed messages are delivered.
        self.bus.step_into(now, deliveries);
        for delivery in deliveries.iter() {
            if delivery.msg.kind == MsgKind::Broadcast {
                self.delivered += 1;
                if let Some(n) = self.config.fault_drop_every {
                    if self.delivered.is_multiple_of(n) {
                        continue; // injected fault: lose the broadcast
                    }
                }
            }
            let dest: &mut Node = nodes[delivery.dest].borrow_mut();
            dest.deliver(&delivery.msg, now);
        }
        // 3b. BSHR hardening: expired waits escalate to retransmit
        //     requests (or degraded direct requests). Polled after this
        //     cycle's deliveries so an arrival at `now` always beats a
        //     timeout at `now`. Gated — the fault-free path never scans.
        if self.config.bshr_timeout_cycles.is_some() {
            for node in nodes.iter_mut() {
                let node: &mut Node = node.borrow_mut();
                node.poll_faults(now);
            }
        }
        self.cycles += 1;
        // 4. Trim the shared trace behind the slowest node.
        if now.is_multiple_of(1024) {
            let min = nodes
                .iter()
                .map(|n| {
                    let n: &Node = n.borrow();
                    n.fetch_cursor()
                })
                .min()
                .unwrap_or(0);
            trace.trim(min);
        }
        // Termination and the deadlock watchdog, in one pass: the same
        // committed() read feeds the progress total and the done check.
        let max_insts = self.config.max_insts.unwrap_or(u64::MAX);
        let mut total: u64 = 0;
        let mut all_done = true;
        for n in nodes.iter() {
            let n: &Node = n.borrow();
            let c = n.committed();
            total += c;
            all_done &= n.is_done() || c >= max_insts;
        }
        if wd.watchdog_check(total, self.cycles) {
            // A stalled machine means the broadcast/BSHR pairing broke
            // and (with hardening off or exhausted) no recovery exists:
            // terminate with evidence instead of spinning or panicking.
            self.deadlock = Some(Box::new(self.build_deadlock_report(nodes, now, total)));
            return true;
        }
        let progressed = wd.watchdog_last_progress() == self.cycles;
        if all_done {
            return true;
        }
        // The horizon scan is gated on quiescence: a cycle that retired
        // instructions never opens a skippable range (the committing
        // core's next event is the very next cycle), so scanning after
        // it would be pure overhead on busy phases. A stall episode
        // that starts on a commit cycle is picked up one cycle later —
        // at most one naive iteration per episode is "lost".
        if !self.config.no_skip && !progressed {
            self.advance_to_horizon(nodes, trace, now, wd);
        }
        false
    }

    /// The event-horizon jump. Called after the cycle at `now` fully
    /// completed (`self.cycles == now + 1`): computes the earliest
    /// future cycle any component's state can change — core event
    /// heaps, fetch stalls, queued broadcasts, the interconnect — and,
    /// when that horizon is beyond the next cycle, charges the skipped
    /// quiescent cycles to their stall buckets and advances the clock
    /// in one step. The horizon is clamped to the watchdog deadline so
    /// a deadlocked machine still reaches its panic iteration naively.
    /// Behavior-invariant by construction: every skipped cycle is one
    /// the naive loop would have executed without changing any state
    /// except these same stall counters.
    fn advance_to_horizon<N: BorrowMut<Node>>(
        &mut self,
        nodes: &mut [N],
        trace: &mut TraceSource,
        now: Cycle,
        wd: &ForwardProgress,
    ) {
        let mut horizon = self.bus.next_event(now);
        for node in nodes.iter() {
            let node: &Node = node.borrow();
            horizon = horizon.min(node.next_event(now));
        }
        horizon = horizon.min(wd.watchdog_deadline());
        if horizon <= now + 1 {
            return;
        }
        #[cfg(feature = "obs")]
        {
            let skipped = horizon - (now + 1);
            let bus_busy = !self.bus.is_idle();
            for node in nodes.iter_mut() {
                let node: &mut Node = node.borrow_mut();
                node.advance_to(now, horizon);
                node.charge_skipped(now + 1, skipped, bus_busy);
            }
        }
        #[cfg(not(feature = "obs"))]
        for node in nodes.iter_mut() {
            let node: &mut Node = node.borrow_mut();
            node.advance_to(now, horizon);
        }
        // The naive loop trims at the end of every 1024-multiple cycle.
        // Fetch cursors are frozen across the skipped range, so at most
        // one trim matters: run it iff a 1024 boundary falls inside
        // `[now + 1, horizon - 1]`.
        if (now + 1).next_multiple_of(1024) < horizon {
            let min = nodes
                .iter()
                .map(|n| {
                    let n: &Node = n.borrow();
                    n.fetch_cursor()
                })
                .min()
                .unwrap_or(0);
            trace.trim(min);
        }
        self.skipped += horizon - (now + 1);
        self.cycles = horizon;
    }

    /// Assembles the structured evidence the run terminates with when
    /// the forward-progress watchdog trips: per-node RUU/BSHR
    /// snapshots, every message still on (or fault-deferred inside) the
    /// interconnect, and the tail of the observability event rings.
    /// Cold path — runs at most once per run.
    fn build_deadlock_report<N: BorrowMut<Node>>(
        &self,
        nodes: &[N],
        now: Cycle,
        total: u64,
    ) -> DeadlockReport {
        let mut report = DeadlockReport {
            cycle: self.cycles,
            committed: total,
            nodes: nodes
                .iter()
                .map(|n| {
                    let n: &Node = n.borrow();
                    n.deadlock_state(now)
                })
                .collect(),
            in_flight: Vec::new(),
            recent_events: Vec::new(),
        };
        self.bus.pending_into(&mut report.in_flight);
        #[cfg(feature = "obs")]
        {
            let mut evs: Vec<ds_obs::Event> = Vec::new();
            for n in nodes.iter() {
                let n: &Node = n.borrow();
                evs.extend(n.events().iter().cloned());
            }
            // Stable by cycle: ties keep node order, so the tail is
            // deterministic across engines.
            evs.sort_by_key(|e| e.cycle);
            let tail = crate::watchdog::REPORT_EVENT_TAIL;
            if evs.len() > tail {
                evs.drain(..evs.len() - tail);
            }
            report.recent_events = evs;
        }
        report
    }

    /// Post-loop bookkeeping shared by both engines.
    fn finish_run(&mut self) -> RunResult {
        #[cfg(feature = "obs")]
        {
            self.close_lead_segment();
            // Close each node's final (partial) timeline interval at
            // the run's end cycle, so the interval deltas partition the
            // whole run.
            let end = self.cycles;
            for node in &mut self.nodes {
                node.close_timeline(end);
            }
        }
        let result = self.result();
        // A deadlocked interconnect cannot drain (the wedged episode's
        // traffic never resolves); the report already captured it.
        if self.deadlock.is_none() {
            self.drain_interconnect();
        }
        #[cfg(feature = "audit")]
        self.assert_audit_invariants();
        result
    }

    /// Delivers every in-flight broadcast after the cores finish, so
    /// the ESP send/consume ledgers balance (a node can retire its last
    /// instruction while a reparative broadcast it triggered is still
    /// queued). Runs outside the timed region — the reported cycle
    /// count is the completion time.
    fn drain_interconnect(&mut self) {
        let mut t = self.cycles;
        let deadline = t + 100_000_000;
        let mut deliveries = Vec::new();
        loop {
            for node in &mut self.nodes {
                while let Some(msg) = node.next_outgoing(t) {
                    self.bus.enqueue(msg);
                }
            }
            self.bus.step_into(t, &mut deliveries);
            for delivery in &deliveries {
                self.nodes[delivery.dest].deliver(&delivery.msg, t);
            }
            t += 1;
            let quiescent = self.bus.is_idle()
                && self.nodes.iter().all(|n| n.outgoing_is_empty());
            if quiescent {
                break;
            }
            assert!(t < deadline, "interconnect failed to drain");
        }
    }

    /// The results accumulated so far.
    pub fn result(&self) -> RunResult {
        RunResult {
            cycles: self.cycles,
            committed: self.nodes.iter().map(|n| n.committed()).min().unwrap_or(0),
            nodes: self.nodes.iter().map(|n| n.stats()).collect(),
            bus: *self.bus.stats(),
            trace_window_high_water: self.trace.max_window_len(),
            metrics: self.metrics(),
            deadlock: self.deadlock.clone(),
        }
    }

    /// The fabric-level fault-injection counters: `None` when the run's
    /// `FaultPlan` was empty (no injector was built at all).
    pub fn fault_stats(&self) -> Option<&ds_net::FaultStats> {
        self.bus.fault_stats()
    }

    /// Derived event-stream metrics: `None` unless built with `obs`.
    #[cfg(not(feature = "obs"))]
    fn metrics(&self) -> Option<ds_obs::MetricsReport> {
        None
    }

    /// Checks the cache-correspondence invariant: with all nodes at the
    /// same committed count, every canonical cache must hold exactly
    /// the same lines with the same dirty bits.
    pub fn correspondence_holds(&self) -> bool {
        let counts: Vec<u64> = self.nodes.iter().map(|n| n.committed()).collect();
        if counts.windows(2).any(|w| w[0] != w[1]) {
            // Only comparable at equal commit points.
            return true;
        }
        let reference = self.nodes[0].canonical_cache_lines();
        self.nodes
            .iter()
            .all(|n| n.canonical_cache_lines() == reference)
    }
}

/// Event-stream observability (docs/observability.md): cycle-stamped
/// protocol events per node plus system-level lead tracking.
/// Observational only — an `obs` build produces the same cycles and
/// stats (asserted by `tests/golden_stats.rs` under `--features obs`).
#[cfg(feature = "obs")]
impl DsSystem {
    /// Per-cycle lead tracking: the node with the most committed
    /// instructions holds the lead (ties to the lowest id, so lead
    /// changes are deterministic). A change of leader ends one
    /// datathread run; the closed segment's length feeds the
    /// datathread-run histogram.
    fn track_lead<N: std::borrow::Borrow<Node>>(&mut self, nodes: &[N], now: Cycle) {
        use ds_obs::Probe as _;
        let mut leader = 0usize;
        let mut best = 0u64;
        for (i, n) in nodes.iter().enumerate() {
            let n: &Node = n.borrow();
            let c = n.committed();
            if c > best {
                best = c;
                leader = i;
            }
        }
        let (prev, since) = self.lead;
        if leader != prev {
            self.probe.record(
                now,
                ds_obs::EventKind::LeadChange {
                    node: prev as u32,
                    held_cycles: now.saturating_sub(since),
                },
            );
            self.lead = (leader, now);
        }
    }

    /// Closes the final lead segment when the run ends, so every cycle
    /// of the run is covered by exactly one datathread run.
    fn close_lead_segment(&mut self) {
        use ds_obs::Probe as _;
        let (prev, since) = self.lead;
        self.probe.record(
            self.cycles,
            ds_obs::EventKind::LeadChange {
                node: prev as u32,
                held_cycles: self.cycles.saturating_sub(since),
            },
        );
        self.lead = (prev, self.cycles);
    }

    /// Folds every ring — per-node memory sides and cores, the
    /// interconnect, and the system's own lead events — into one
    /// [`ds_obs::MetricsReport`].
    fn metrics(&self) -> Option<ds_obs::MetricsReport> {
        let mut m = ds_obs::MetricsReport::default();
        for (i, n) in self.nodes.iter().enumerate() {
            m.absorb(n.events());
            m.absorb(n.core_events());
            let acct = *n.cycle_account();
            // The tentpole invariant: every simulated cycle was charged
            // to exactly one bucket.
            #[cfg(any(debug_assertions, feature = "audit"))]
            assert_eq!(
                acct.total(),
                self.cycles,
                "node {i} stall buckets must sum to total cycles"
            );
            let _ = i;
            m.node_accounts.push(acct);
        }
        m.hot_pcs = ds_obs::top_hot_pcs(self.nodes.iter().map(|n| n.pc_profile()), 16);
        for n in &self.nodes {
            m.critpath.nodes.push(n.crit_window().path_report());
        }
        m.timeline = self.timeline_report();
        if let Some(ring) = self.bus.events() {
            m.absorb(ring);
        }
        m.absorb(self.probe.ring());
        Some(m)
    }

    /// Renders the per-node cycle accounts (and per-PC memory-wait
    /// profiles) in the flamegraph folded-stacks text format: one
    /// `frame;frame value` line per leaf. Feed to `flamegraph.pl` or
    /// any folded-stacks viewer. Per node, the leaf values sum exactly
    /// to the run's total cycles.
    pub fn folded_stacks(&self) -> String {
        use ds_obs::StallBucket;
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let acct = node.cycle_account();
            let profile = node.pc_profile();
            for b in StallBucket::ALL {
                let cycles = acct.get(b);
                if cycles == 0 {
                    continue;
                }
                match b {
                    // PC-attributed buckets: the per-PC leaves (plus any
                    // overflow remainder) sum exactly to the bucket, so
                    // the bucket frame itself is emitted only via its
                    // children to avoid double counting.
                    StallBucket::BshrWaitRemote | StallBucket::LocalMemWait => {
                        let remote = b == StallBucket::BshrWaitRemote;
                        let mut attributed = 0u64;
                        for e in profile.entries() {
                            let n = if remote { e.remote_wait } else { e.local_wait };
                            if n > 0 {
                                let _ = writeln!(
                                    out,
                                    "node{i};{};0x{:x} {n}",
                                    b.label(),
                                    e.pc
                                );
                                attributed += n;
                            }
                        }
                        let rest = cycles - attributed;
                        if rest > 0 {
                            let _ =
                                writeln!(out, "node{i};{};(overflow) {rest}", b.label());
                        }
                    }
                    _ => {
                        let _ = writeln!(out, "node{i};{} {cycles}", b.label());
                    }
                }
            }
        }
        out
    }

    /// Snapshots every node's interval timeline (and segments phases)
    /// into one [`ds_obs::TimelineReport`]. Also carried on
    /// `RunResult::metrics`; exposed separately so exporters can reach
    /// it without absorbing the event rings.
    pub fn timeline_report(&self) -> ds_obs::TimelineReport {
        let mut t = ds_obs::TimelineReport::default();
        for n in &self.nodes {
            t.nodes.push(n.timeline().report());
        }
        t
    }

    /// Renders the merged system timeline's phases in the flamegraph
    /// folded-stacks text format, rooted at the phase index
    /// (`phase0;committing 523` lines, one per phase/bucket). Kept
    /// separate from [`DsSystem::folded_stacks`]: these weights sum to
    /// the *retained* node-cycles (intervals a wrapped ring overwrote
    /// are gone), summed across nodes per phase.
    pub fn phase_folded(&self) -> String {
        use std::fmt::Write as _;
        let merged = self.timeline_report().merged();
        let mut out = String::new();
        for (i, p) in merged.phases.iter().enumerate() {
            for b in ds_obs::StallBucket::ALL {
                let cycles = p.buckets[b as usize];
                if cycles > 0 {
                    let _ = writeln!(out, "phase{i};{} {cycles}", b.label());
                }
            }
        }
        out
    }

    /// Renders the per-node critical-path attribution in the
    /// flamegraph folded-stacks text format, rooted at `crit` (kept
    /// separate from [`DsSystem::folded_stacks`], whose per-node leaves
    /// sum to total cycles; these sum to each node's *attributed* path
    /// span): `crit;node{i};{class};{kind} cycles` per edge family,
    /// plus `crit;node{i};pc;0x{pc:x} cycles` residency leaves.
    pub fn critpath_folded(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let rep = node.crit_window().path_report();
            for kind in ds_obs::EdgeKind::ALL {
                let cycles = rep.kind(kind);
                if cycles > 0 {
                    let _ = writeln!(
                        out,
                        "crit;node{i};{};{} {cycles}",
                        kind.class().label(),
                        kind.label()
                    );
                }
            }
            for p in &rep.crit_pcs {
                let _ = writeln!(out, "crit;node{i};pc;0x{:x} {}", p.pc, p.cycles);
            }
        }
        out
    }

    /// Renders the run's event rings as a Chrome trace-event / Perfetto
    /// JSON document: one process per node (broadcast / BSHR / DCUB /
    /// commit tracks), one for the system (lead changes), one for the
    /// interconnect (grants).
    pub fn perfetto_trace(&self) -> String {
        use ds_obs::perfetto::TraceSource;
        let n = self.nodes.len() as u32;
        let names: Vec<String> = (0..n).map(|i| format!("node{i}")).collect();
        let mut sources: Vec<TraceSource<'_>> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            sources.push(TraceSource { pid: i as u32, name: &names[i], ring: node.events() });
            sources.push(TraceSource { pid: i as u32, name: &names[i], ring: node.core_events() });
        }
        sources.push(TraceSource { pid: n, name: "system", ring: self.probe.ring() });
        if let Some(ring) = self.bus.events() {
            sources.push(TraceSource { pid: n + 1, name: "interconnect", ring });
        }
        // Stall-bucket occupancy counter tracks, sampled from the
        // cycle accounts (they live outside the rings).
        let mut extras: Vec<String> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            ds_obs::perfetto::stall_counter_events(
                i as u32,
                node.samples(),
                self.cycles,
                node.cycle_account(),
                &mut extras,
            );
        }
        ds_obs::perfetto::trace_json_with(&sources, &extras)
    }
}

/// Commit-time correspondence auditing (docs/protocol.md §3–§5): the
/// dynamic counterpart of the `ds-lint` static rules. Observational
/// only — an audit build produces the same cycles and stats.
#[cfg(feature = "audit")]
impl DsSystem {
    /// Feeds every node's freshly recorded commit events into the
    /// shared reference stream, panicking at the first divergence.
    fn absorb_audit(&mut self) {
        for i in 0..self.nodes.len() {
            while let Some(ev) = self.nodes[i].ms.audit.pending.pop_front() {
                self.audit.absorb(i, ev);
            }
        }
    }

    /// End-of-run ledger checks. Only meaningful for complete,
    /// fault-free runs: with injected faults the machine deadlocks
    /// before reaching here, and an instruction-budget stop leaves
    /// episodes legitimately in flight.
    fn assert_audit_invariants(&mut self) {
        self.absorb_audit();
        // The message ledger below assumes the pristine ESP protocol:
        // injected faults, retransmit re-broadcasts and degraded-mode
        // traffic all perturb the per-node arrival counts by design
        // (architectural state is still asserted equal by the chaos
        // test grid).
        if self.config.fault_drop_every.is_some()
            || !self.config.fault_plan.is_empty()
            || self.config.bshr_timeout_cycles.is_some()
            || self.deadlock.is_some()
        {
            return;
        }
        if !self.nodes.iter().all(|n| n.is_done()) {
            return;
        }
        assert!(
            self.audit.aligned(),
            "audit: nodes finished with different mem-commit counts"
        );
        assert!(
            self.correspondence_holds(),
            "audit: canonical caches differ at end of run"
        );
        let sent: Vec<u64> = self.nodes.iter().map(|n| n.stats().broadcasts_sent).collect();
        let total: u64 = sent.iter().sum();
        for (i, node) in self.nodes.iter().enumerate() {
            assert_eq!(
                node.stats().bshr.arrivals,
                total - sent[i],
                "audit: node {i} did not see every peer broadcast exactly once"
            );
            assert!(
                node.bshr_is_quiescent(),
                "audit: node {i} BSHR retained waits/buffers/squashes after the run"
            );
            assert_eq!(
                node.dcub_occupancy(),
                0,
                "audit: node {i} leaked DCUB entries past their residency episodes"
            );
        }
        self.audit.add_checks(2 + 3 * self.nodes.len() as u64);
    }

    /// Number of audit assertions that have passed so far (per-commit
    /// residency checks + cross-node stream comparisons + end-of-run
    /// ledger checks). Exposed so tests can prove the auditor actually
    /// ran.
    pub fn audit_checks(&self) -> u64 {
        self.audit.checks() + self.nodes.iter().map(|n| n.ms.audit.checks()).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_asm::assemble;

    /// A strided read-sum over an array larger than the D-cache, so
    /// communicated misses (and broadcasts) definitely occur.
    fn strided_prog() -> Program {
        assemble(
            r#"
            .data
            arr: .space 65536
            .text
            main:   li   t0, 512
                    la   t1, arr
                    li   t2, 0
            loop:   ld   t3, 0(t1)
                    add  t2, t2, t3
                    addi t1, t1, 128
                    addi t0, t0, -1
                    bnez t0, loop
                    halt
            "#,
        )
        .unwrap()
    }

    /// A pointer chase through a linked list spread over many pages —
    /// the datathreading workload of §3.2 / Figure 3.
    fn pointer_chase_prog() -> Program {
        // Build a list of 256 nodes, each 512 bytes apart, linked
        // front-to-back, then chase it.
        assemble(
            r#"
            .data
            nodes: .space 131072
            .text
            main:   li   t0, 255
                    la   t1, nodes
            build:  addi t2, t1, 512
                    sd   t2, 0(t1)
                    mv   t1, t2
                    addi t0, t0, -1
                    bnez t0, build
                    sd   zero, 0(t1)
                    # chase
                    la   t1, nodes
            chase:  ld   t1, 0(t1)
                    bnez t1, chase
                    halt
            "#,
        )
        .unwrap()
    }

    fn run_ds(nodes: usize, prog: &Program) -> (DsSystem, crate::RunResult) {
        let config = DsConfig::with_nodes(nodes);
        let mut sys = DsSystem::new(config, prog);
        let r = sys.run().unwrap();
        (sys, r)
    }

    #[test]
    fn two_node_system_completes_and_corresponds() {
        let prog = strided_prog();
        let (sys, r) = run_ds(2, &prog);
        assert!(r.committed > 2000);
        assert!(sys.correspondence_holds(), "canonical caches diverged");
        // Both nodes committed the identical stream.
        let commits: Vec<u64> = sys.nodes().iter().map(|n| n.committed()).collect();
        assert_eq!(commits[0], commits[1]);
    }

    #[test]
    fn broadcasts_flow_and_requests_never_do() {
        let prog = strided_prog();
        let (_, r) = run_ds(2, &prog);
        assert!(r.bus.broadcasts > 0, "communicated misses must broadcast");
        assert_eq!(r.bus.requests, 0, "ESP never sends requests");
        assert_eq!(r.bus.responses, 0);
        assert_eq!(r.bus.writes, 0, "ESP never sends writes");
    }

    #[test]
    fn esp_send_consume_balance() {
        // Every broadcast is consumed (wait, buffered-then-found, or
        // squash) at every other node; nothing leaks.
        let prog = strided_prog();
        let (sys, r) = run_ds(2, &prog);
        for (i, n) in r.nodes.iter().enumerate() {
            let others_sent: u64 = r
                .nodes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, m)| m.broadcasts_sent)
                .sum();
            assert_eq!(
                n.bshr.arrivals, others_sent,
                "node {i} must receive every peer broadcast"
            );
        }
        drop(sys);
    }

    #[test]
    fn four_node_system_works() {
        let prog = strided_prog();
        let (sys, r) = run_ds(4, &prog);
        assert!(sys.correspondence_holds());
        assert!(r.bus.broadcasts > 0);
        assert_eq!(r.nodes.len(), 4);
    }

    #[test]
    fn single_node_degenerates_to_uniprocessor() {
        let prog = strided_prog();
        let (_, r) = run_ds(1, &prog);
        assert_eq!(r.bus.broadcasts, 0, "sole owner broadcasts to nobody... ");
        // (bus has 1 port; broadcasts never enqueue targets) — but the
        // run must still complete with every page local.
        assert!(r.committed > 2000);
        assert_eq!(r.nodes[0].remote_accesses, 0);
    }

    #[test]
    fn pointer_chase_exercises_datathreads() {
        let prog = pointer_chase_prog();
        let (sys, r) = run_ds(2, &prog);
        assert!(sys.correspondence_holds());
        let found: u64 = r.nodes.iter().map(|n| n.bshr.found_buffered).sum();
        let waits: u64 = r.nodes.iter().map(|n| n.bshr.waits_allocated).sum();
        assert!(found + waits > 0, "remote chase must use the BSHR");
    }

    #[test]
    fn functional_results_are_timing_independent() {
        // The sum computed by the program must match a pure functional
        // run regardless of node count.
        let src = r#"
            .data
            arr: .space 16384
            out: .word 0
            .text
            main:   li   t0, 256
                    la   t1, arr
                    li   t4, 3
            fill:   sd   t4, 0(t1)
                    addi t4, t4, 7
                    addi t1, t1, 64
                    addi t0, t0, -1
                    bnez t0, fill
                    li   t0, 256
                    la   t1, arr
                    li   t2, 0
            sum:    ld   t3, 0(t1)
                    add  t2, t2, t3
                    addi t1, t1, 64
                    addi t0, t0, -1
                    bnez t0, sum
                    la   t5, out
                    sd   t2, 0(t5)
                    halt
        "#;
        let prog = assemble(src).unwrap();
        let expected: u64 = (0..256).map(|i| 3 + 7 * i).sum();
        for nodes in [1, 2, 4] {
            let (sys, _) = run_ds(nodes, &prog);
            let out = sys.mem().read_u64(prog.symbol("out").unwrap());
            assert_eq!(out, expected, "wrong sum with {nodes} nodes");
        }
    }

    #[test]
    fn replicated_pages_never_broadcast() {
        let prog = strided_prog();
        let mut config = DsConfig::with_nodes(2);
        // Replicate every data page the program declares.
        let (start, end, _) = prog.regions()[1];
        config.replicated_vpns =
            (start / config.page_bytes..=(end - 1) / config.page_bytes).collect();
        let mut sys = DsSystem::new(config, &prog);
        let r = sys.run().unwrap();
        assert_eq!(r.bus.broadcasts, 0, "fully replicated data needs no broadcasts");
        assert!(r.nodes.iter().all(|n| n.remote_accesses == 0));
    }

    #[test]
    fn max_insts_caps_the_run() {
        let prog = strided_prog();
        let mut config = DsConfig::with_nodes(2);
        config.max_insts = Some(300);
        let mut sys = DsSystem::new(config, &prog);
        let r = sys.run().unwrap();
        assert!(r.committed >= 300);
        assert!(r.committed < 1500);
    }

    #[test]
    fn ring_interconnect_runs_and_corresponds() {
        let prog = strided_prog();
        for nodes in [2usize, 4] {
            let mut config = DsConfig::with_nodes(nodes);
            config.interconnect = ds_net::FabricKind::Ring;
            let mut sys = DsSystem::new(config, &prog);
            let r = sys.run().unwrap();
            assert!(r.committed > 2000, "{nodes}-node ring run too short");
            assert!(sys.correspondence_holds(), "ring broke correspondence");
            assert!(r.bus.broadcasts > 0);
            assert_eq!(r.bus.requests, 0);
        }
    }

    #[test]
    fn ring_and_bus_agree_functionally() {
        let prog = strided_prog();
        let run_with = |kind: ds_net::FabricKind| {
            let mut config = DsConfig::with_nodes(2);
            config.interconnect = kind;
            let mut sys = DsSystem::new(config, &prog);
            let r = sys.run().unwrap();
            (r.committed, r.bus.broadcasts)
        };
        let bus = run_with(ds_net::FabricKind::Bus);
        let ring = run_with(ds_net::FabricKind::Ring);
        assert_eq!(bus.0, ring.0, "same committed stream");
        assert_eq!(bus.1, ring.1, "same broadcast count (topology changes timing only)");
    }

    #[test]
    fn watchdog_catches_a_lost_broadcast() {
        // Fault injection: dropping a broadcast must wedge the waiting
        // node, and the watchdog must terminate the run with a
        // structured report rather than spinning forever — validating
        // the deadlock tripwire end to end.
        let prog = strided_prog();
        let mut config = DsConfig::with_nodes(2);
        config.fault_drop_every = Some(10);
        config.watchdog_cycles = 50_000;
        let mut sys = DsSystem::new(config, &prog);
        let r = sys.run().unwrap();
        let report = r.deadlock.expect("a dropped broadcast must trip the watchdog");
        assert_eq!(report.cycle, r.cycles);
        assert_eq!(report.nodes.len(), 2);
        // The wedged node is visibly waiting on something remote.
        assert!(
            report.nodes.iter().any(|n| !n.bshr_waits.is_empty()),
            "some node must hold an unanswered BSHR wait: {report}"
        );
        let text = report.to_string();
        assert!(text.contains("deadlock at cycle"));
    }

    #[test]
    fn chaos_drop_with_timeouts_recovers_and_matches_baseline() {
        // The hardening loop end to end: a plan that drops broadcasts
        // plus a BSHR timeout must retransmit its way to completion,
        // with architectural state identical to the fault-free run.
        let prog = strided_prog();
        let baseline = {
            let mut sys = DsSystem::new(DsConfig::with_nodes(2), &prog);
            let r = sys.run().unwrap();
            (r.committed, sys.nodes()[0].canonical_cache_lines())
        };
        let mut config = DsConfig::with_nodes(2);
        config.fault_plan.rules.push(ds_net::FaultRule::broadcasts(
            ds_net::FaultKind::Drop,
            7,
            u64::MAX,
        ));
        config.bshr_timeout_cycles = Some(2000);
        config.bshr_retry_budget = 3;
        config.watchdog_cycles = 200_000;
        let mut sys = DsSystem::new(config, &prog);
        let r = sys.run().unwrap();
        assert!(r.deadlock.is_none(), "hardening must recover: {}", r.deadlock.unwrap());
        assert_eq!(r.committed, baseline.0, "same committed stream");
        for node in sys.nodes() {
            assert_eq!(
                node.canonical_cache_lines(),
                baseline.1,
                "architectural state must match the fault-free run"
            );
        }
        let retransmits: u64 = r.nodes.iter().map(|n| n.retransmit_requests).sum();
        assert!(retransmits > 0, "drops must surface as retransmit requests");
        let stats = sys.fault_stats().expect("non-empty plan builds an injector");
        assert!(stats.dropped > 0, "the injector must actually drop broadcasts");
    }

    #[test]
    fn store_heavy_program_sends_no_write_traffic() {
        // The compress observation (§4.3): stores never go off-chip.
        let prog = assemble(
            r#"
            .data
            arr: .space 65536
            .text
            main:   li   t0, 1024
                    la   t1, arr
            loop:   sd   t0, 0(t1)
                    addi t1, t1, 64
                    addi t0, t0, -1
                    bnez t0, loop
                    halt
            "#,
        )
        .unwrap();
        let (_, r) = run_ds(2, &prog);
        assert_eq!(r.bus.writes, 0);
        let dropped: u64 = r.nodes.iter().map(|n| n.writes_dropped).sum();
        assert!(dropped > 0, "non-owners drop stores");
    }
}
