//! Small sorted map keyed by line address.
//!
//! The BSHR and DCUB are architecturally *small* structures — the
//! evaluated BSHR holds 128 entries (§4.2) and the DCUB is bounded by
//! the instruction window — yet they sat on `HashMap<u64, _>`, paying a
//! SipHash per probe on the simulator's hottest per-access paths. This
//! map keeps entries in a `Vec` sorted by line address and binary
//! searches: at these occupancies the probe touches one or two cache
//! lines and never hashes. Inserts shift the tail, which is cheap at
//! double-digit lengths and irrelevant off the probe path.

/// A sorted-vector map from line address to `V`.
#[derive(Debug, Clone)]
pub struct LineMap<V> {
    entries: Vec<(u64, V)>,
}

impl<V> Default for LineMap<V> {
    fn default() -> Self {
        LineMap { entries: Vec::new() }
    }
}

impl<V> LineMap<V> {
    pub fn new() -> Self {
        Self::default()
    }

    fn find(&self, line: u64) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&line, |&(l, _)| l)
    }

    pub fn get(&self, line: u64) -> Option<&V> {
        self.find(line).ok().map(|i| &self.entries[i].1)
    }

    pub fn get_mut(&mut self, line: u64) -> Option<&mut V> {
        match self.find(line) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    pub fn contains_key(&self, line: u64) -> bool {
        self.find(line).is_ok()
    }

    /// Inserts `value`, returning the previous value if one existed.
    pub fn insert(&mut self, line: u64, value: V) -> Option<V> {
        match self.find(line) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (line, value));
                None
            }
        }
    }

    pub fn remove(&mut self, line: u64) -> Option<V> {
        match self.find(line) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The value for `line`, inserting a default first if absent.
    pub fn get_mut_or_default(&mut self, line: u64) -> &mut V
    where
        V: Default,
    {
        let i = match self.find(line) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (line, V::default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in ascending line-address order. Iteration over a
    /// `LineMap` is deterministic by construction — this is the
    /// property the d1 lint rule exists to protect.
    pub fn entries(&self) -> &[(u64, V)] {
        &self.entries
    }

    /// Mutable access to the entries, still in ascending line-address
    /// order. Keys must not be modified (the sort order is the map).
    pub fn entries_mut(&mut self) -> &mut [(u64, V)] {
        &mut self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = LineMap::new();
        assert_eq!(m.insert(0x80, 'b'), None);
        assert_eq!(m.insert(0x40, 'a'), None);
        assert_eq!(m.insert(0xc0, 'c'), None);
        assert_eq!(m.get(0x40), Some(&'a'));
        assert_eq!(m.get(0x80), Some(&'b'));
        assert_eq!(m.get(0x41), None);
        assert_eq!(m.insert(0x80, 'B'), Some('b'));
        assert_eq!(m.remove(0x80), Some('B'));
        assert_eq!(m.remove(0x80), None);
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(0xc0));
        assert!(!m.contains_key(0x80));
    }

    #[test]
    fn get_mut_or_default_inserts_once() {
        let mut m: LineMap<Vec<u32>> = LineMap::new();
        m.get_mut_or_default(0x100).push(1);
        m.get_mut_or_default(0x100).push(2);
        assert_eq!(m.get(0x100), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
        *m.get_mut(0x100).unwrap() = vec![9];
        assert_eq!(m.remove(0x100), Some(vec![9]));
    }
}
