//! Broadcast Status Holding Registers.
//!
//! The BSHR (§4.2, Figure 5) is the structure through which a node
//! receives broadcasts. It holds, per line address:
//!
//! * an outstanding **wait** — local loads that missed on a remote,
//!   communicated line and are blocked until the owner's broadcast
//!   arrives;
//! * **buffered arrivals** — broadcasts that landed before any local
//!   load asked for them (the owner ran ahead; when the local load
//!   finally issues it "effectively sees an on-chip hit");
//! * **pending squashes** — posted by the correspondence protocol when
//!   a commit-time false hit means the owner's reparative broadcast
//!   must be consumed and dropped.
//!
//! # ds-chaos hardening
//!
//! The paper's protocol assumes a lossless interconnect: "broadcasts/
//! waits would not pair up and the machine deadlocks" otherwise (§1).
//! When BSHR timeouts are enabled (`DsConfig::bshr_timeout_cycles`),
//! each outstanding wait carries a deadline; an expired wait escalates
//! to an explicit retransmit request ([`Bshr::take_expired`], answered
//! by the owner with a reparative re-broadcast), and a line that blows
//! through its retry budget degrades to the traditional
//! request–response protocol for the rest of the run — injected loss
//! costs latency, never correctness. All of it is inert (no deadlines
//! armed, no scans) when the timeout is `None`, which is the default.

use crate::linemap::LineMap;
use crate::Cycle;
use ds_cpu::RuuTag;
use std::collections::VecDeque;

/// What [`Bshr::on_arrival`] did with a broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arrival {
    /// Consumed by a pending squash (reparative broadcast for a line
    /// this node falsely hit on).
    Squashed,
    /// Satisfied an outstanding wait; the listed loads may complete at
    /// the given cycle. These completions become the critical-path
    /// analyzer's `remote-fill` (communication) edges: the node pairs
    /// each one with the broadcast's send cycle so the edge spans the
    /// owner's queue, the fabric grant, and the flight end-to-end.
    Completed(Vec<(RuuTag, Cycle)>),
    /// No local load wanted it yet; buffered. A later load that finds
    /// the data here sees an on-chip hit — a `local-fill` (compute)
    /// edge on the critical path, which is datathreading doing its job.
    Buffered,
}

/// BSHR statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BshrStats {
    /// Remote loads that found their data already buffered (the
    /// paper's "data found in BSHR" — evidence of datathreading).
    pub found_buffered: u64,
    /// Waits allocated (remote loads that had to block).
    pub waits_allocated: u64,
    /// Arrivals consumed by squashes.
    pub squashed_arrivals: u64,
    /// Squashes posted (by the correspondence protocol at commit).
    pub squashes_posted: u64,
    /// Broadcasts received, total.
    pub arrivals: u64,
    /// Arrivals accepted while at capacity (modelling flow-control
    /// retries; counted, not dropped).
    pub overflows: u64,
    /// High-water mark of occupied entries.
    pub max_occupancy: usize,
    /// Wait deadlines that expired (each one escalates to a retransmit
    /// request or, once degraded, a fresh direct request).
    pub timeouts: u64,
    /// Lines that exhausted the retry budget and degraded to the
    /// request–response protocol.
    pub lines_degraded: u64,
}

/// One expired wait, as surfaced by [`Bshr::take_expired`]. The wait
/// itself stays allocated — only its deadline was consumed and re-armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpiredWait {
    /// Line whose wait timed out.
    pub line: u64,
    /// Timeouts this wait has now suffered (1 = first).
    pub retries: u32,
    /// True when the line is (now) degraded to request–response.
    pub degraded: bool,
    /// True when *this* expiry crossed the retry budget.
    pub newly_degraded: bool,
}

/// Per-wait hardening state (armed only when timeouts are enabled).
#[derive(Debug, Clone, Copy)]
struct WaitMeta {
    deadline: Cycle,
    retries: u32,
}

/// One node's broadcast-receiving structure.
#[derive(Debug, Clone)]
pub struct Bshr {
    entries: usize,
    access_cycles: u64,
    /// line -> loads waiting for that line.
    waits: LineMap<Vec<RuuTag>>,
    /// line -> arrival cycles of unconsumed broadcasts.
    buffered: LineMap<VecDeque<Cycle>>,
    /// line -> number of arrivals to squash on sight.
    pending_squashes: LineMap<u32>,
    buffered_count: usize,
    stats: BshrStats,
    /// Wait timeout in cycles; `None` disables the hardening entirely.
    timeout: Option<u64>,
    /// Timeouts a line may suffer before degrading.
    retry_budget: u32,
    /// line -> deadline/retry state, populated only while `timeout` is
    /// `Some` and a wait is outstanding.
    meta: LineMap<WaitMeta>,
    /// Lines degraded to request–response for the rest of the run.
    degraded: LineMap<()>,
}

impl Bshr {
    /// An empty BSHR with `entries` capacity and the given access
    /// latency.
    pub fn new(entries: usize, access_cycles: u64) -> Self {
        Bshr {
            entries,
            access_cycles,
            waits: LineMap::new(),
            buffered: LineMap::new(),
            pending_squashes: LineMap::new(),
            buffered_count: 0,
            stats: BshrStats::default(),
            timeout: None,
            retry_budget: 0,
            meta: LineMap::new(),
            degraded: LineMap::new(),
        }
    }

    /// Enables (or disables) wait timeouts. With `Some(t)`, every fresh
    /// wait is armed with a deadline `t` cycles out and may retry up to
    /// `budget` times before its line degrades to request–response.
    pub fn configure_timeout(&mut self, timeout: Option<u64>, budget: u32) {
        self.timeout = timeout;
        self.retry_budget = budget;
    }

    /// Access latency in cycles.
    pub fn access_cycles(&self) -> u64 {
        self.access_cycles
    }

    /// Statistics so far.
    pub fn stats(&self) -> &BshrStats {
        &self.stats
    }

    /// Entries currently occupied (waits + buffered arrivals).
    pub fn occupancy(&self) -> usize {
        self.waits.len() + self.buffered_count
    }

    /// True when no state survives: no waiting loads, no buffered
    /// broadcasts, no pending squashes. At the end of a complete run
    /// every broadcast has been consumed exactly once per non-owner, so
    /// a quiescent BSHR is part of the correspondence invariant the
    /// `audit` feature asserts.
    pub fn is_quiescent(&self) -> bool {
        self.waits.is_empty() && self.buffered_count == 0 && self.pending_squashes.is_empty()
    }

    /// True while any arrival is still due to be squashed on sight — a
    /// false-hit repair is in flight (used by cycle accounting to
    /// charge remote waits to commit-repair instead of plain BSHR
    /// latency).
    pub fn has_pending_squashes(&self) -> bool {
        !self.pending_squashes.is_empty()
    }

    fn note_occupancy(&mut self) {
        let occ = self.occupancy();
        if occ > self.stats.max_occupancy {
            self.stats.max_occupancy = occ;
        }
        if occ > self.entries {
            self.stats.overflows += 1;
        }
    }

    /// A remote load missed at issue. If the broadcast already arrived,
    /// consumes it and returns the cycle the data is available;
    /// otherwise allocates (or joins) a wait and returns `None`.
    pub fn request(&mut self, line: u64, tag: RuuTag, now: Cycle) -> Option<Cycle> {
        if let Some(q) = self.buffered.get_mut(line) {
            q.pop_front();
            if q.is_empty() {
                self.buffered.remove(line);
            }
            self.buffered_count -= 1;
            self.stats.found_buffered += 1;
            return Some(now + self.access_cycles);
        }
        let w = self.waits.get_mut_or_default(line);
        let fresh = w.is_empty();
        if fresh {
            self.stats.waits_allocated += 1;
        }
        w.push(tag);
        if fresh {
            if let Some(t) = self.timeout {
                self.meta.insert(line, WaitMeta { deadline: now + t, retries: 0 });
            }
        }
        self.note_occupancy();
        None
    }

    /// Adds another blocked load to an existing wait.
    ///
    /// # Panics
    ///
    /// Panics if no wait is outstanding for `line` (callers join via
    /// the DCUB, which tracks pending lines).
    pub fn join_wait(&mut self, line: u64, tag: RuuTag) {
        self.waits
            .get_mut(line)
            // ds-analyze: allow(tp1) documented Panics contract: callers route through the DCUB, which only joins lines it has seen start_wait for
            .expect("join_wait requires an outstanding wait")
            .push(tag);
    }

    /// True if a wait is outstanding for `line`.
    pub fn has_wait(&self, line: u64) -> bool {
        self.waits.contains_key(line)
    }

    /// The correspondence protocol detected a commit-time false hit:
    /// the owner's (reparative) broadcast for `line` must be consumed
    /// and dropped.
    pub fn post_squash(&mut self, line: u64) {
        self.stats.squashes_posted += 1;
        if let Some(q) = self.buffered.get_mut(line) {
            q.pop_front();
            if q.is_empty() {
                self.buffered.remove(line);
            }
            self.buffered_count -= 1;
            self.stats.squashed_arrivals += 1;
        } else {
            *self.pending_squashes.get_mut_or_default(line) += 1;
        }
    }

    /// A broadcast for `line` arrived at `now`.
    pub fn on_arrival(&mut self, line: u64, now: Cycle) -> Arrival {
        self.stats.arrivals += 1;
        if let Some(n) = self.pending_squashes.get_mut(line) {
            *n -= 1;
            if *n == 0 {
                self.pending_squashes.remove(line);
            }
            self.stats.squashed_arrivals += 1;
            return Arrival::Squashed;
        }
        if let Some(waiters) = self.waits.remove(line) {
            self.meta.remove(line);
            let ready = now + self.access_cycles;
            return Arrival::Completed(waiters.into_iter().map(|t| (t, ready)).collect());
        }
        self.buffered.get_mut_or_default(line).push_back(now);
        self.buffered_count += 1;
        self.note_occupancy();
        Arrival::Buffered
    }

    /// A direct (request–response) fill for `line` arrived at `now` —
    /// the degraded path's answer. Releases and returns the waiters, or
    /// `None` when no wait is outstanding (a duplicate or stale
    /// response must not invent completions).
    pub fn fill_direct(&mut self, line: u64, now: Cycle) -> Option<Vec<(RuuTag, Cycle)>> {
        let waiters = self.waits.remove(line)?;
        self.meta.remove(line);
        let ready = now + self.access_cycles;
        Some(waiters.into_iter().map(|t| (t, ready)).collect())
    }

    /// The first wait (lowest line address — deterministic) whose
    /// deadline expired by `now`, if any. Consuming the expiry re-arms
    /// the deadline a full timeout out and bumps the retry count;
    /// crossing the retry budget marks the line degraded. Callers loop
    /// until `None` each cycle — the loop terminates because every
    /// re-armed deadline is in the future. Inert (`None` immediately)
    /// when timeouts are disabled.
    pub fn take_expired(&mut self, now: Cycle) -> Option<ExpiredWait> {
        let t = self.timeout?;
        let budget = self.retry_budget;
        let mut hit: Option<(u64, u32)> = None;
        for (line, m) in self.meta.entries_mut() {
            if m.deadline <= now {
                m.deadline = now + t;
                m.retries += 1;
                hit = Some((*line, m.retries));
                break;
            }
        }
        let (line, retries) = hit?;
        self.stats.timeouts += 1;
        let mut newly_degraded = false;
        if retries > budget && !self.degraded.contains_key(line) {
            self.degraded.insert(line, ());
            self.stats.lines_degraded += 1;
            newly_degraded = true;
        }
        Some(ExpiredWait {
            line,
            retries,
            degraded: self.degraded.contains_key(line),
            newly_degraded,
        })
    }

    /// Earliest armed wait deadline, if any — folded into the node's
    /// event horizon so cycle skipping never jumps past a timeout.
    pub fn next_timeout(&self) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        for (_, m) in self.meta.entries() {
            next = Some(match next {
                Some(n) if n <= m.deadline => n,
                _ => m.deadline,
            });
        }
        next
    }

    /// True when `line` has degraded to the request–response protocol.
    pub fn is_degraded(&self, line: u64) -> bool {
        self.degraded.contains_key(line)
    }

    /// True while any wait has already timed out at least once or sits
    /// on a degraded line — the machine is paying retry latency, not
    /// plain broadcast latency (cycle accounting charges `retry-wait`).
    pub fn has_retrying_waits(&self) -> bool {
        for (line, m) in self.meta.entries() {
            if m.retries > 0 || self.degraded.contains_key(*line) {
                return true;
            }
        }
        false
    }

    /// Lines with outstanding waits (deadlock reports; cold path).
    pub fn wait_lines(&self) -> Vec<u64> {
        self.waits.entries().iter().map(|&(l, _)| l).collect()
    }

    /// Lines with buffered, unconsumed arrivals (deadlock reports).
    pub fn buffered_lines(&self) -> Vec<u64> {
        self.buffered.entries().iter().map(|&(l, _)| l).collect()
    }

    /// Lines with pending squashes (deadlock reports).
    pub fn squash_lines(&self) -> Vec<u64> {
        self.pending_squashes.entries().iter().map(|&(l, _)| l).collect()
    }

    /// Lines degraded to request–response (deadlock reports).
    pub fn degraded_lines(&self) -> Vec<u64> {
        self.degraded.entries().iter().map(|&(l, _)| l).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_then_arrival_completes() {
        let mut b = Bshr::new(8, 2);
        assert_eq!(b.request(0x100, 7, 10), None);
        b.join_wait(0x100, 9);
        match b.on_arrival(0x100, 50) {
            Arrival::Completed(v) => assert_eq!(v, vec![(7, 52), (9, 52)]),
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.stats().waits_allocated, 1);
    }

    #[test]
    fn arrival_before_request_is_buffered() {
        let mut b = Bshr::new(8, 2);
        assert_eq!(b.on_arrival(0x200, 30), Arrival::Buffered);
        assert_eq!(b.occupancy(), 1);
        assert_eq!(b.request(0x200, 1, 100), Some(102));
        assert_eq!(b.stats().found_buffered, 1);
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn squash_consumes_buffered_arrival() {
        let mut b = Bshr::new(8, 2);
        b.on_arrival(0x300, 5);
        b.post_squash(0x300);
        assert_eq!(b.stats().squashed_arrivals, 1);
        assert_eq!(b.occupancy(), 0);
        // The next request must NOT see stale data.
        assert_eq!(b.request(0x300, 1, 10), None);
    }

    #[test]
    fn squash_before_arrival_is_pending() {
        let mut b = Bshr::new(8, 2);
        b.post_squash(0x400);
        assert_eq!(b.on_arrival(0x400, 9), Arrival::Squashed);
        assert_eq!(b.stats().squashed_arrivals, 1);
        // Next arrival behaves normally.
        assert_eq!(b.on_arrival(0x400, 10), Arrival::Buffered);
    }

    #[test]
    fn per_line_fifo_of_buffered_arrivals() {
        let mut b = Bshr::new(8, 0);
        b.on_arrival(0x500, 1);
        b.on_arrival(0x500, 2);
        assert_eq!(b.request(0x500, 1, 10), Some(10));
        assert_eq!(b.request(0x500, 2, 11), Some(11));
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn overflow_is_counted_not_dropped() {
        let mut b = Bshr::new(1, 2);
        b.on_arrival(0x0, 1);
        b.on_arrival(0x40, 2);
        assert_eq!(b.stats().overflows, 1);
        assert_eq!(b.occupancy(), 2);
        assert!(b.request(0x40, 1, 5).is_some(), "data still retrievable");
    }

    #[test]
    fn max_occupancy_tracks_high_water() {
        let mut b = Bshr::new(8, 2);
        b.on_arrival(0x0, 1);
        b.on_arrival(0x40, 1);
        b.request(0x0, 1, 2);
        assert_eq!(b.stats().max_occupancy, 2);
    }

    #[test]
    #[should_panic(expected = "outstanding wait")]
    fn join_without_wait_panics() {
        let mut b = Bshr::new(8, 2);
        b.join_wait(0x1, 1);
    }

    #[test]
    fn timeouts_disabled_by_default() {
        let mut b = Bshr::new(8, 2);
        b.request(0x100, 1, 0);
        assert_eq!(b.take_expired(u64::MAX), None);
        assert_eq!(b.next_timeout(), None);
        assert!(!b.has_retrying_waits());
    }

    #[test]
    fn expired_wait_rearms_and_counts() {
        let mut b = Bshr::new(8, 2);
        b.configure_timeout(Some(100), 3);
        b.request(0x100, 1, 10);
        assert_eq!(b.next_timeout(), Some(110));
        assert_eq!(b.take_expired(50), None, "not yet due");
        let e = b.take_expired(110).expect("deadline hit");
        assert_eq!((e.line, e.retries, e.degraded, e.newly_degraded), (0x100, 1, false, false));
        assert_eq!(b.take_expired(110), None, "re-armed into the future");
        assert_eq!(b.next_timeout(), Some(210));
        assert_eq!(b.stats().timeouts, 1);
        assert!(b.has_retrying_waits());
    }

    #[test]
    fn exhausted_budget_degrades_the_line_once() {
        let mut b = Bshr::new(8, 2);
        b.configure_timeout(Some(10), 2);
        b.request(0x200, 1, 0);
        let mut now = 10;
        for expect_retries in 1..=2u32 {
            let e = b.take_expired(now).unwrap();
            assert_eq!((e.retries, e.degraded), (expect_retries, false));
            now += 10;
        }
        let e = b.take_expired(now).unwrap();
        assert!(e.degraded && e.newly_degraded, "3rd timeout crosses budget 2");
        assert!(b.is_degraded(0x200));
        assert_eq!(b.stats().lines_degraded, 1);
        // Further expiries keep retrying but never re-degrade.
        let e = b.take_expired(now + 10).unwrap();
        assert!(e.degraded && !e.newly_degraded);
        assert_eq!(b.stats().lines_degraded, 1);
    }

    #[test]
    fn arrival_disarms_the_deadline() {
        let mut b = Bshr::new(8, 2);
        b.configure_timeout(Some(100), 3);
        b.request(0x300, 1, 0);
        b.on_arrival(0x300, 50);
        assert_eq!(b.next_timeout(), None);
        assert_eq!(b.take_expired(u64::MAX), None);
    }

    #[test]
    fn fill_direct_releases_waiters_and_ignores_strays() {
        let mut b = Bshr::new(8, 2);
        b.configure_timeout(Some(100), 0);
        b.request(0x400, 7, 0);
        b.join_wait(0x400, 9);
        let got = b.fill_direct(0x400, 30).expect("wait outstanding");
        assert_eq!(got, vec![(7, 32), (9, 32)]);
        assert_eq!(b.next_timeout(), None);
        assert_eq!(b.fill_direct(0x400, 40), None, "duplicate response ignored");
    }

    #[test]
    fn expiry_order_is_lowest_line_first() {
        let mut b = Bshr::new(8, 2);
        b.configure_timeout(Some(10), 9);
        b.request(0x800, 1, 0);
        b.request(0x100, 2, 0);
        assert_eq!(b.take_expired(10).unwrap().line, 0x100);
        assert_eq!(b.take_expired(10).unwrap().line, 0x800);
        assert_eq!(b.take_expired(10), None);
    }
}
