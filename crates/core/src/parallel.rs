//! Worker coordination for the parallel stepping engine.
//!
//! `DsSystem::run_parallel` keeps a pool of scoped worker threads alive
//! for the whole run and hands them one stepping round per simulated
//! cycle through the [`CycleBarrier`]. Everything here is coordination
//! glue, deliberately kept out of the `system.rs` hot module: the lock
//! helpers recover from poisoning (a panicking worker must not mask the
//! original panic with a second one), and the barrier is a plain
//! spin/yield loop — rounds are microseconds apart, so parking would
//! cost more than it saves.

use crate::node::Node;
use std::borrow::{Borrow, BorrowMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A reusable spin barrier: the coordinator opens one stepping round
/// per simulated cycle and waits for every worker to finish it; workers
/// wait for the next round (or the shutdown signal).
pub(crate) struct CycleBarrier {
    /// Rounds opened so far; bumped once more at shutdown so waiting
    /// workers wake up and observe `stop`.
    round: AtomicU64,
    /// The cycle the current round simulates.
    now: AtomicU64,
    /// Workers that have finished the current round.
    done: AtomicUsize,
    /// Set once; tells workers to exit instead of stepping.
    stop: AtomicBool,
}

impl CycleBarrier {
    pub(crate) fn new() -> Self {
        CycleBarrier {
            round: AtomicU64::new(0),
            now: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// Opens stepping round `round + 1` for cycle `now`.
    pub(crate) fn open_round(&self, now: u64) {
        self.done.store(0, Ordering::Relaxed);
        self.now.store(now, Ordering::Relaxed);
        // ds-analyze: allow(pa2) round Release publishes the done/now stores above to worker_wait's round Acquire
        self.round.fetch_add(1, Ordering::Release);
    }

    /// The cycle of the currently open round.
    pub(crate) fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    /// Blocks until round `target` opens. Returns false when the run is
    /// over and the worker should exit.
    pub(crate) fn worker_wait(&self, target: u64) -> bool {
        let mut spins = 0u32;
        // ds-analyze: allow(pa2) round Acquire pairs with open_round's Release: the round's now/done reset is visible once the load observes target
        while self.round.load(Ordering::Acquire) < target {
            if self.stop.load(Ordering::Relaxed) {
                return false;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // ds-analyze: allow(pa2) stop Acquire pairs with shutdown's Release increment: a true here happens-after the coordinator's decision to end the run
        !self.stop.load(Ordering::Acquire)
    }

    /// Marks this worker's share of the current round complete.
    pub(crate) fn worker_done(&self) {
        // ds-analyze: allow(pa2) done Release publishes this worker's node mutations to await_workers' done Acquire before the merge phase reads them
        self.done.fetch_add(1, Ordering::Release);
    }

    /// Blocks the coordinator until all `n` workers finished the round.
    pub(crate) fn await_workers(&self, n: usize) {
        let mut spins = 0u32;
        // ds-analyze: allow(pa2) done Acquire pairs with worker_done's Release: all striped node state is visible to the coordinator once the count reaches n
        while self.done.load(Ordering::Acquire) < n {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Releases every worker for exit. Safe to call more than once.
    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        // ds-analyze: allow(pa2) round Release publishes the stop flag through worker_wait's round Acquire so parked workers observe it and exit
        self.round.fetch_add(1, Ordering::Release);
    }
}

/// Shuts the barrier down when dropped, so worker threads exit and the
/// thread scope can join them on both the normal and the unwind path
/// (a watchdog panic in the merge phase must not hang the scope).
pub(crate) struct ShutdownOnDrop<'a>(pub(crate) &'a CycleBarrier);

impl Drop for ShutdownOnDrop<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock: the
/// engine's own panics (watchdog, audit) must propagate unmasked, and
/// node state behind a poisoned lock is still needed to report them.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Read-locks an `RwLock`, recovering from poisoning.
pub(crate) fn read_clean<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

/// Write-locks an `RwLock`, recovering from poisoning.
pub(crate) fn write_clean<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

/// Unwraps a mutex into its value, recovering from poisoning.
pub(crate) fn into_clean<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(|p| p.into_inner())
}

/// Worker threads to spawn: one per available core (the coordinator
/// mostly waits during a round, so it does not reserve one).
pub(crate) fn worker_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A held node lock that the shared cycle tail can treat as a plain
/// `Node` holder (newtype because `MutexGuard` itself has no
/// `Borrow<Node>` impl).
pub(crate) struct GuardCell<'a>(pub(crate) MutexGuard<'a, Node>);

impl Borrow<Node> for GuardCell<'_> {
    fn borrow(&self) -> &Node {
        &self.0
    }
}

impl BorrowMut<Node> for GuardCell<'_> {
    fn borrow_mut(&mut self) -> &mut Node {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_round_trip_and_shutdown() {
        let b = CycleBarrier::new();
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let mut rounds = 0u64;
                let mut round = 0u64;
                loop {
                    round += 1;
                    if !b.worker_wait(round) {
                        return rounds;
                    }
                    rounds += 1;
                    b.worker_done();
                }
            });
            for now in 0..5u64 {
                b.open_round(now);
                assert_eq!(b.now(), now);
                b.await_workers(1);
            }
            b.shutdown();
            assert_eq!(worker.join().unwrap(), 5);
        });
    }

    #[test]
    fn lock_helpers_recover_from_poison() {
        let m = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_clean(&m), 7);
        assert_eq!(into_clean(m), 7);
        let l = RwLock::new(3u32);
        assert_eq!(*read_clean(&l), 3);
        *write_clean(&l) = 4;
        assert_eq!(*read_clean(&l), 4);
    }
}
