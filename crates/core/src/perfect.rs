//! The perfect-data-cache upper bound.
//!
//! The paper's Figure 7/8 baseline "an identical processor with a
//! perfect data cache (single-cycle access to any operand)". The core,
//! fetch path and I-cache behaviour are identical to the DataScalar
//! nodes'; only data accesses are idealised.

use crate::config::DsConfig;
use crate::stats::{NodeStats, RunResult};
use crate::Cycle;
use ds_asm::Program;
use ds_cpu::{
    ExecError, ExecRecord, FuncCore, LoadResponse, MemSystem, OooCore, RuuTag, TraceSource,
};
use ds_mem::{AccessKind, Cache, CacheOutcome, MainMemory, MemImage};

#[derive(Debug)]
struct PerfectMem {
    icache: Cache,
    mem: MainMemory,
    line_bytes: u64,
    stats: NodeStats,
}

impl MemSystem for PerfectMem {
    fn load_issued(&mut self, _rec: &ExecRecord, now: Cycle, _tag: RuuTag) -> (LoadResponse, bool) {
        self.stats.loads_issued += 1;
        self.stats.issue_hits += 1;
        (LoadResponse::Ready(now + 1), true)
    }

    fn mem_committed(&mut self, rec: &ExecRecord, _issue_hit: Option<bool>, _now: Cycle) {
        if rec.is_store() {
            self.stats.stores_committed += 1;
        }
    }

    fn fetch_line(&mut self, pc: u64, now: Cycle) -> Cycle {
        // The I-side is NOT idealised: same local I-cache + memory as a
        // DataScalar node, so the comparison isolates the data side.
        let line = self.icache.line_addr(pc);
        match self.icache.access(pc, AccessKind::Read) {
            CacheOutcome::Hit => now,
            CacheOutcome::Miss { .. } => self.mem.access(line, self.line_bytes, now),
        }
    }
}

/// A single core with a perfect (single-cycle) data cache.
#[derive(Debug)]
pub struct PerfectSystem {
    core: OooCore,
    ms: PerfectMem,
    trace: TraceSource,
    cycles: Cycle,
    max_insts: u64,
    watchdog_cycles: u64,
    /// `Some` once the forward-progress watchdog has tripped. A perfect
    /// cache cannot wedge on data, so this is pure parity with the
    /// other system models (a broken core model would still surface as
    /// a report rather than a hang).
    deadlock: Option<Box<crate::watchdog::DeadlockReport>>,
    /// Cycle accounting (observational; instrumented builds only).
    #[cfg(feature = "obs")]
    probe: crate::node::NodeProbe,
}

impl PerfectSystem {
    /// Builds the perfect-cache comparator for `program`; core, I-cache
    /// and local-memory parameters are taken from `config`.
    pub fn new(config: &DsConfig, program: &Program) -> Self {
        let mut mem = MemImage::new();
        program.load(&mut mem);
        #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
        let mut core = OooCore::new(config.core, config.icache.line_bytes);
        #[cfg(feature = "obs")]
        core.set_crit_window_capacity(config.crit_window_capacity);
        PerfectSystem {
            core,
            ms: PerfectMem {
                icache: Cache::new(config.icache),
                mem: MainMemory::new(config.memory),
                line_bytes: config.icache.line_bytes,
                stats: NodeStats::default(),
            },
            trace: TraceSource::new(FuncCore::with_stack(program.entry, program.stack_top), mem),
            cycles: 0,
            max_insts: config.max_insts.unwrap_or(u64::MAX),
            watchdog_cycles: config.watchdog_cycles,
            deadlock: None,
            #[cfg(feature = "obs")]
            probe: Default::default(),
        }
    }

    /// Runs to completion (or the instruction cap).
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors.
    pub fn run(&mut self) -> Result<RunResult, ExecError> {
        let mut wd = crate::watchdog::ForwardProgress::new(self.watchdog_cycles);
        while !self.core.is_done() && self.core.committed() < self.max_insts {
            self.core.step(&mut self.ms, &mut self.trace, self.cycles)?;
            #[cfg(feature = "obs")]
            self.charge_cycle(self.cycles);
            self.cycles += 1;
            if self.cycles.is_multiple_of(1024) {
                self.trace.trim(self.core.fetch_cursor());
            }
            if wd.watchdog_check(self.core.committed(), self.cycles) {
                self.deadlock = Some(Box::new(crate::watchdog::DeadlockReport {
                    cycle: self.cycles,
                    committed: self.core.committed(),
                    nodes: vec![crate::watchdog::NodeDeadlockState {
                        node: 0,
                        committed: self.core.committed(),
                        oldest: self.core.oldest_entry(),
                        ..Default::default()
                    }],
                    in_flight: Vec::new(),
                    recent_events: Vec::new(),
                }));
                break;
            }
        }
        let mut stats = self.ms.stats;
        stats.core = *self.core.stats();
        Ok(RunResult {
            cycles: self.cycles,
            committed: self.core.committed(),
            nodes: vec![stats],
            bus: Default::default(),
            trace_window_high_water: self.trace.max_window_len(),
            metrics: self.metrics(),
            deadlock: self.deadlock.clone(),
        })
    }

    /// Charges `now` to one stall bucket. Loads are always serviced in
    /// one cycle here, so a remote wait can never arise; the arm is
    /// kept for totality.
    #[cfg(feature = "obs")]
    fn charge_cycle(&mut self, now: Cycle) {
        use ds_cpu::CoreStall;
        use ds_obs::{PcStallKind, Probe as _, StallBucket};
        let bucket = match self.core.stall_class(now) {
            CoreStall::Committing => StallBucket::Committing,
            CoreStall::RemoteMemWait { pc } => {
                self.probe.charge_pc(pc, PcStallKind::RemoteWait);
                StallBucket::BshrWaitRemote
            }
            CoreStall::LocalMemWait { pc } => {
                self.probe.charge_pc(pc, PcStallKind::LocalWait);
                StallBucket::LocalMemWait
            }
            CoreStall::RuuFull => StallBucket::RuuFull,
            CoreStall::LsqFull => StallBucket::LsqFull,
            CoreStall::SquashReplay => StallBucket::SquashReplay,
            CoreStall::FetchStall => StallBucket::FetchStall,
            CoreStall::Idle => StallBucket::Idle,
        };
        self.probe.charge(bucket);
    }

    #[cfg(not(feature = "obs"))]
    fn metrics(&self) -> Option<ds_obs::MetricsReport> {
        None
    }

    #[cfg(feature = "obs")]
    fn metrics(&self) -> Option<ds_obs::MetricsReport> {
        let mut m = ds_obs::MetricsReport::default();
        m.absorb(self.core.events());
        let acct = *self.probe.account();
        #[cfg(any(debug_assertions, feature = "audit"))]
        assert_eq!(acct.total(), self.cycles, "stall buckets must sum to total cycles");
        m.node_accounts.push(acct);
        m.hot_pcs = ds_obs::top_hot_pcs([self.probe.pc_profile()], 16);
        m.critpath.nodes.push(self.core.crit_window().path_report());
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_asm::assemble;

    #[test]
    fn perfect_cache_runs_and_counts() {
        let prog = assemble(
            r#"
            .data
            a: .word 1, 2, 3, 4, 5, 6, 7, 8
            .text
            main:   li   t0, 8
                    la   t1, a
                    li   t2, 0
            loop:   ld   t3, 0(t1)
                    add  t2, t2, t3
                    addi t1, t1, 8
                    addi t0, t0, -1
                    bnez t0, loop
                    halt
            "#,
        )
        .unwrap();
        let config = DsConfig::default();
        let mut sys = PerfectSystem::new(&config, &prog);
        let r = sys.run().unwrap();
        assert!(r.committed > 0);
        assert!(r.ipc() > 1.0, "perfect cache should exceed 1 IPC, got {}", r.ipc());
        assert_eq!(r.nodes[0].loads_issued, 8);
    }

    #[test]
    fn respects_instruction_cap() {
        let prog = assemble(
            ".text\nmain: li t0, 100000\nloop: addi t0, t0, -1\n bnez t0, loop\n halt\n",
        )
        .unwrap();
        let config = DsConfig { max_insts: Some(500), ..Default::default() };
        let mut sys = PerfectSystem::new(&config, &prog);
        let r = sys.run().unwrap();
        assert!(r.committed >= 500);
        assert!(r.committed < 1000);
    }
}
