//! Ready-time priority queue for outgoing interconnect messages.
//!
//! The memory sides used to keep a `Vec<(Cycle, Message)>` and, every
//! cycle, `retain` the not-yet-ready messages into a fresh vector,
//! stable-sort the due ones by `(ready, seq)` and hand them to the bus
//! — two allocations and an O(n log n) sort per node per cycle. This
//! queue replaces that with a binary heap ordered by
//! `(ready, seq, push index)`: popping due entries yields *exactly* the
//! old order (the push index reproduces the stable sort's
//! insertion-order tie-break) with no per-cycle allocation.

use crate::Cycle;
use ds_net::Message;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
struct Entry {
    ready: Cycle,
    idx: u64,
    msg: Message,
}

impl Entry {
    fn key(&self) -> (Cycle, u64, u64) {
        (self.ready, self.msg.seq, self.idx)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop smallest first.
        other.key().cmp(&self.key())
    }
}

/// Messages waiting for their data-ready cycle, popped in
/// `(ready, seq, insertion)` order.
#[derive(Debug, Clone, Default)]
pub(crate) struct PendingQueue {
    heap: BinaryHeap<Entry>,
    next_idx: u64,
}

impl PendingQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Queues `msg` to become visible at `ready`.
    pub(crate) fn push(&mut self, ready: Cycle, msg: Message) {
        let idx = self.next_idx;
        self.next_idx += 1;
        self.heap.push(Entry { ready, idx, msg });
    }

    /// Earliest data-ready cycle over all queued messages (due or not),
    /// or `None` when the queue is empty. This is the queue's event
    /// horizon: nothing can leave it before that cycle.
    pub(crate) fn next_ready(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.ready)
    }

    /// Key `(ready, seq)` of the head entry if it is due by `now`.
    pub(crate) fn peek_due(&self, now: Cycle) -> Option<(Cycle, u64)> {
        let head = self.heap.peek()?;
        (head.ready <= now).then_some((head.ready, head.msg.seq))
    }

    /// Removes and returns the next message due by `now`, if any.
    pub(crate) fn pop_due(&mut self, now: Cycle) -> Option<Message> {
        if self.heap.peek()?.ready > now {
            return None;
        }
        // ds-lint: allow(p1) peek above proved the heap non-empty on this same call
        Some(self.heap.pop().expect("peeked").msg)
    }

    /// True when nothing is waiting (due or not).
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_net::MsgKind;

    fn msg(seq: u64) -> Message {
        Message {
            src: 0,
            dest: None,
            kind: MsgKind::Broadcast,
            line_addr: 0,
            payload_bytes: 32,
            seq,
            enqueued_at: 0,
        }
    }

    #[test]
    fn pops_in_ready_then_seq_then_insertion_order() {
        let mut q = PendingQueue::new();
        q.push(5, msg(2));
        q.push(3, msg(9));
        q.push(5, msg(1));
        q.push(5, msg(1)); // same (ready, seq): insertion order breaks the tie
        assert!(q.pop_due(2).is_none(), "nothing due yet");
        assert_eq!(q.pop_due(10).map(|m| m.seq), Some(9));
        let a = q.pop_due(10).unwrap();
        let b = q.pop_due(10).unwrap();
        assert_eq!((a.seq, b.seq), (1, 1));
        assert_eq!(q.pop_due(10).map(|m| m.seq), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn next_ready_is_the_earliest_ready_cycle() {
        let mut q = PendingQueue::new();
        assert_eq!(q.next_ready(), None);
        q.push(7, msg(0));
        q.push(3, msg(1));
        assert_eq!(q.next_ready(), Some(3));
        q.pop_due(3);
        assert_eq!(q.next_ready(), Some(7));
    }

    #[test]
    fn not_due_messages_stay() {
        let mut q = PendingQueue::new();
        q.push(100, msg(0));
        assert!(q.pop_due(99).is_none());
        assert!(!q.is_empty());
        assert!(q.pop_due(100).is_some());
        assert!(q.is_empty());
    }
}
