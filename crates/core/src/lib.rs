//! The DataScalar execution model (Burger, Kaxiras & Goodman, ISCA
//! 1997), plus the comparison systems the paper evaluates against.
//!
//! # The model
//!
//! A DataScalar machine runs one program **redundantly** on `N`
//! processor/memory (IRAM) nodes — Single-Program, Single-Data (SPSD).
//! Physical memory is partitioned: *communicated* pages live at exactly
//! one owner, *replicated* pages at every node. Under **ESP**:
//!
//! * a load whose address is local completes from local memory; if the
//!   page is communicated, the owner **broadcasts** the line to all
//!   peers — nobody ever *requests* anything;
//! * a load whose address is remote waits in a **BSHR** (Broadcast
//!   Status Holding Register) until the owner's broadcast arrives;
//! * stores complete at the owner only; writes never cross the
//!   interconnect.
//!
//! Because each node's out-of-order core runs ahead on operands it
//! owns, chains of dependent local accesses (*datathreads*) incur one
//! serialized off-chip crossing instead of two per operand.
//!
//! # Cache correspondence
//!
//! Dynamic replication (caching broadcast data) requires every node to
//! keep *identical* L1 contents in commit order, or sends and waits
//! would not pair up. Following §4.1 of the paper, each node updates
//! its cache tags only at **commit** through a commit update buffer
//! ([`cub::Dcub`]); the issue-time hit/miss is recorded and compared at
//! commit. A **false hit** (hit at issue, miss in commit order) is
//! repaired by a *reparative broadcast* from the owner and a *BSHR
//! squash* at non-owners; **false misses** coalesce in the DCUB so each
//! line-residency episode generates exactly one miss.
//!
//! # What's here
//!
//! * [`DsSystem`] — the DataScalar machine ([`DsConfig`] ×
//!   [`ds_asm::Program`] → [`RunResult`]);
//! * [`TraditionalSystem`] — the paper's comparator: one CPU with
//!   `1/N` of memory on-chip and the rest behind the same bus with a
//!   request/response protocol;
//! * [`PerfectSystem`] — the perfect-data-cache upper bound;
//! * [`mmm`] — the synchronous-ESP Massive Memory Machine the model
//!   descends from (Figure 1);
//! * [`datathread`] — the serialized off-chip-crossing model of
//!   Figure 3.

#[cfg(feature = "audit")]
pub mod audit;
pub mod bshr;
pub mod config;
pub mod cub;
pub mod datathread;
pub mod hybrid;
pub mod linemap;
pub mod mmm;
mod node;
mod parallel;
mod pending;
pub mod perfect;
mod stats;
mod system;
pub mod traditional;
pub mod watchdog;

pub use config::DsConfig;
pub use node::Node;
pub use perfect::PerfectSystem;
pub use stats::{NodeStats, RunResult};
pub use system::DsSystem;
pub use traditional::{TraditionalConfig, TraditionalSystem};
pub use watchdog::{DeadlockReport, ForwardProgress, NodeDeadlockState};

/// A simulation cycle count.
pub type Cycle = u64;
