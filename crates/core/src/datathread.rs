//! Datathreads and serialized off-chip crossings (Figure 3).
//!
//! A *datathread* is a maximal run of consecutive dependent operands
//! resident at one node. A DataScalar node that owns a whole run can
//! fetch all of it without leaving the chip and pipeline the broadcasts
//! — one serialized off-chip delay per run, with a further delay at
//! each *thread migration* (consecutive operands at different nodes).
//! A traditional system pays two serialized crossings (request +
//! response) for every operand not resident on the processor chip.

use ds_mem::NodeId;

/// Serialized off-chip delays a DataScalar machine incurs for a chain
/// of **dependent** operands placed at `owners[i]`.
///
/// Each maximal same-owner run contributes one serialized broadcast
/// delay (the run's broadcasts pipeline behind it); each owner change
/// is a datathread migration.
///
/// # Examples
///
/// ```
/// // Figure 3: x1..x3 on node 0, x4 on node 1 -> 2 serialized delays.
/// assert_eq!(ds_core::datathread::datascalar_crossings(&[0, 0, 0, 1]), 2);
/// ```
pub fn datascalar_crossings(owners: &[NodeId]) -> u64 {
    if owners.is_empty() {
        return 0;
    }
    1 + owners.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

/// Serialized off-chip delays a traditional system incurs for the same
/// chain, where `local[i]` says whether operand `i` happens to reside
/// in the on-chip fraction of memory.
///
/// Every remote operand costs a request and a response, serialized by
/// the dependence chain.
///
/// # Examples
///
/// ```
/// // Figure 3: all four operands off-chip -> 8 serialized delays.
/// assert_eq!(ds_core::datathread::traditional_crossings(&[false; 4]), 8);
/// ```
pub fn traditional_crossings(local: &[bool]) -> u64 {
    2 * local.iter().filter(|&&l| !l).count() as u64
}

/// Mean datathread length of a dependent chain (mean same-owner run
/// length).
pub fn mean_thread_length(owners: &[NodeId]) -> f64 {
    if owners.is_empty() {
        return 0.0;
    }
    let runs = datascalar_crossings(owners);
    owners.len() as f64 / runs as f64
}

/// Compares the two systems on a chain of dependent operands placed at
/// `owners`, under the paper's Figure 3 assumption that the traditional
/// system's on-chip fraction is node `home`'s share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainComparison {
    /// DataScalar serialized off-chip delays.
    pub datascalar: u64,
    /// Traditional serialized off-chip delays.
    pub traditional: u64,
}

/// Evaluates [`ChainComparison`] for a chain placed at `owners`, with
/// the traditional processor chip holding node `home`'s share.
pub fn compare_chain(owners: &[NodeId], home: NodeId) -> ChainComparison {
    let local: Vec<bool> = owners.iter().map(|&o| o == home).collect();
    ChainComparison {
        datascalar: datascalar_crossings(owners),
        traditional: traditional_crossings(&local),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_exact_numbers() {
        // x1, x2, x3 on one chip; x4 on another. Traditional system's
        // on-chip quarter holds none of them.
        let owners = [0usize, 0, 0, 1];
        let c = compare_chain(&owners, 3);
        assert_eq!(c.datascalar, 2, "pipelined run + one migration");
        assert_eq!(c.traditional, 8, "request+response per operand");
    }

    #[test]
    fn all_local_chain() {
        assert_eq!(datascalar_crossings(&[2, 2, 2]), 1);
        assert_eq!(traditional_crossings(&[true, true, true]), 0);
    }

    #[test]
    fn alternating_chain_is_worst_case() {
        let owners = [0usize, 1, 0, 1];
        assert_eq!(datascalar_crossings(&owners), 4);
        assert_eq!(mean_thread_length(&owners), 1.0);
    }

    #[test]
    fn empty_chain() {
        assert_eq!(datascalar_crossings(&[]), 0);
        assert_eq!(traditional_crossings(&[]), 0);
        assert_eq!(mean_thread_length(&[]), 0.0);
    }

    #[test]
    fn mean_thread_length_of_runs() {
        let owners = [0usize, 0, 0, 0, 1, 1, 2, 2];
        assert_eq!(datascalar_crossings(&owners), 3);
        assert!((mean_thread_length(&owners) - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn traditional_counts_only_remote() {
        assert_eq!(traditional_crossings(&[true, false, true, false]), 4);
    }
}
