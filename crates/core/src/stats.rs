//! Run-level statistics shared by all three system models.

use crate::bshr::BshrStats;
use ds_cpu::OooStats;
use ds_net::BusStats;
use ds_obs::MetricsReport;

/// Per-node statistics of a DataScalar run (a subset applies to the
/// traditional and perfect systems).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Loads that reached the memory side (not forwarded in the LSQ).
    pub loads_issued: u64,
    /// Issue-time primary-cache hits among those.
    pub issue_hits: u64,
    /// Issue-time misses serviced from local memory.
    pub local_misses: u64,
    /// Issue-time misses to remote communicated lines (§4.3's "remote
    /// accesses").
    pub remote_accesses: u64,
    /// ESP broadcasts sent (early + late).
    pub broadcasts_sent: u64,
    /// Broadcasts issued late, at commit, due to false hits (Table 3).
    pub late_broadcasts: u64,
    /// Commit-time false hits detected (hit at issue, miss in commit
    /// order).
    pub false_hits: u64,
    /// Commit-time false misses detected (miss at issue, hit in commit
    /// order; normalised in the DCUB).
    pub false_misses: u64,
    /// Stores committed.
    pub stores_committed: u64,
    /// Store write-throughs completed in local memory.
    pub writethroughs_local: u64,
    /// Dirty victims written back to local memory.
    pub writebacks_local: u64,
    /// Stores and write-backs dropped because another node owns the
    /// line (ESP write elimination).
    pub writes_dropped: u64,
    /// BSHR counters.
    pub bshr: BshrStats,
    /// Core counters.
    pub core: OooStats,
    /// High-water mark of DCUB occupancy.
    pub dcub_max: usize,
    /// Retransmit requests this node sent after BSHR timeouts
    /// (ds-chaos hardening; zero in fault-free runs).
    pub retransmit_requests: u64,
    /// Reparative re-broadcasts this node sent as owner in answer to
    /// retransmit requests.
    pub retransmit_rebroadcasts: u64,
    /// Direct owner requests sent for degraded lines.
    pub degraded_requests: u64,
    /// Direct responses this node served as owner for degraded lines.
    pub degraded_responses: u64,
}

impl NodeStats {
    /// Fraction of broadcasts that were late (reparative) — Table 3
    /// column 1.
    pub fn late_broadcast_frac(&self) -> f64 {
        frac(self.late_broadcasts, self.broadcasts_sent)
    }

    /// Fraction of broadcast arrivals consumed by squashes — Table 3
    /// column 2.
    pub fn squash_frac(&self) -> f64 {
        frac(self.bshr.squashed_arrivals, self.bshr.arrivals)
    }

    /// Fraction of remote accesses that found their data already
    /// waiting in the BSHR — Table 3 column 3 (datathreading evidence).
    pub fn found_in_bshr_frac(&self) -> f64 {
        frac(self.bshr.found_buffered, self.remote_accesses)
    }
}

fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The result of one timing-simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunResult {
    /// Core-clock cycles simulated.
    pub cycles: u64,
    /// Instructions committed (per node; all nodes commit the same
    /// stream).
    pub committed: u64,
    /// Per-node statistics.
    pub nodes: Vec<NodeStats>,
    /// Global interconnect statistics.
    pub bus: BusStats,
    /// High-water mark of the shared trace window (worst-case node
    /// skew plus in-flight instructions) — bounds simulator memory.
    pub trace_window_high_water: usize,
    /// Derived event-stream metrics (broadcast latency, BSHR/DCUB
    /// occupancy, datathread run lengths, per-node cycle accounts and
    /// hot-PC tables). `Some` under the `obs` feature — DataScalar runs
    /// carry the full event stream, traditional/perfect runs commit
    /// events plus cycle accounting — and `None` otherwise.
    /// Deliberately excluded from the golden fingerprints —
    /// observation must not perturb the pinned counters.
    pub metrics: Option<MetricsReport>,
    /// `Some` when the forward-progress watchdog aborted the run: the
    /// structured evidence of where every node was wedged. Boxed — the
    /// report is large and almost every run carries `None`.
    pub deadlock: Option<Box<crate::watchdog::DeadlockReport>>,
}

impl RunResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Arithmetic mean over nodes of a per-node metric (the paper's
    /// Table 3 reports "the arithmetic mean at all nodes").
    pub fn node_mean(&self, f: impl Fn(&NodeStats) -> f64) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(f).sum::<f64>() / self.nodes.len() as f64
    }

    /// The per-node stall buckets merged into one machine-wide ledger
    /// (its total is `cycles * nodes`). `None` without cycle-accounting
    /// metrics (the `obs` feature off).
    pub fn stall_totals(&self) -> Option<ds_obs::CycleAccount> {
        let m = self.metrics.as_ref()?;
        if m.node_accounts.is_empty() {
            return None;
        }
        let mut total = ds_obs::CycleAccount::default();
        for a in &m.node_accounts {
            total.merge(a);
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_zero_denominators() {
        let s = NodeStats::default();
        assert_eq!(s.late_broadcast_frac(), 0.0);
        assert_eq!(s.squash_frac(), 0.0);
        assert_eq!(s.found_in_bshr_frac(), 0.0);
    }

    #[test]
    fn ipc_computation() {
        let r = RunResult { cycles: 100, committed: 250, ..Default::default() };
        assert_eq!(r.ipc(), 2.5);
        let empty = RunResult::default();
        assert_eq!(empty.ipc(), 0.0);
    }

    #[test]
    fn node_mean_averages() {
        let a = NodeStats { broadcasts_sent: 10, late_broadcasts: 5, ..Default::default() };
        let b = NodeStats { broadcasts_sent: 10, late_broadcasts: 0, ..Default::default() };
        let r = RunResult { cycles: 1, committed: 1, nodes: vec![a, b], ..Default::default() };
        assert!((r.node_mean(|n| n.late_broadcast_frac()) - 0.25).abs() < 1e-12);
    }
}
